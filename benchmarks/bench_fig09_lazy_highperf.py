"""Figure 9 — lazy sampling on the high-performance architecture.

Lazy sampling (P = infinity) never resamples because of elapsed instances;
resampling only happens for correctness (new task type, thread-count
change).  The paper reports an average error below 2% for all thread counts
— comparable to periodic sampling — at a much higher speedup, with dedup
(15.0%) and freqmine (9.6%) as the worst cases.
"""

from __future__ import annotations

from common import (
    HIGH_PERFORMANCE,
    all_benchmark_names,
    bench_scale,
    thread_counts,
    write_result,
)
from repro.analysis.accuracy import summarize
from repro.analysis.reporting import render_accuracy_table
from repro.core.config import lazy_config, periodic_config


def _run(cache):
    return cache.accuracy_grid(
        all_benchmark_names(), HIGH_PERFORMANCE, thread_counts("highperf"), lazy_config()
    )


def test_fig09_lazy_sampling_high_performance(benchmark, cache):
    """Regenerate Figure 9 (lazy sampling, high-perf architecture)."""
    results = benchmark.pedantic(_run, args=(cache,), rounds=1, iterations=1)
    text = render_accuracy_table(
        results,
        title=f"Figure 9: lazy sampling (W=2, H=4, P=inf), high-performance architecture, "
              f"scale={bench_scale()}",
    )
    write_result("fig09_lazy_highperf", text)
    print(text)
    overall = summarize(results)
    assert overall.average_error_percent < 5.0
    assert overall.median_error_percent < 2.0
    # The maximum is dominated by the irregular outliers the paper also
    # reports (checkSparseLU / freqmine); deterministic at this scale.
    assert overall.max_error_percent < 45.0

    # Lazy sampling must be at least as fast as periodic sampling on average
    # (it simulates a subset of the instances periodic sampling simulates).
    smallest_threads = min(thread_counts("highperf"))
    periodic = cache.accuracy_grid(
        all_benchmark_names(), HIGH_PERFORMANCE, [smallest_threads], periodic_config()
    )
    lazy_same_threads = [r for r in results if r.num_threads == smallest_threads]
    assert summarize(lazy_same_threads).average_speedup >= 0.95 * summarize(periodic).average_speedup
