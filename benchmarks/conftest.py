"""Session-scoped fixtures shared by all figure/table harnesses."""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from common import ExperimentHarness  # noqa: E402


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--workloads",
        action="store",
        default=None,
        help=(
            "Comma-separated workload subset for benchmarks that support it "
            "(currently bench_perf_hotpath), e.g. --workloads=blackscholes. "
            "Equivalent to REPRO_BENCH_WORKLOADS; the flag wins if both are "
            "set."
        ),
    )


@pytest.fixture(scope="session")
def workloads_subset(request: pytest.FixtureRequest):
    """Optional workload-name subset from ``--workloads``/env, or ``None``."""
    raw = request.config.getoption("--workloads") or os.environ.get(
        "REPRO_BENCH_WORKLOADS", ""
    )
    names = [name.strip() for name in raw.split(",") if name.strip()]
    return names or None


@pytest.fixture(scope="session")
def cache() -> ExperimentHarness:
    """One experiment harness for the whole benchmark session.

    Detailed baseline simulations are the expensive part of every figure;
    the orchestrator's shared result store lets Figures 7/9 (and 8/10) use
    identical baselines, just as the paper evaluates both policies against
    the same detailed runs.  Set ``REPRO_BENCH_JOBS=N`` to run every grid on
    an N-process pool and ``REPRO_BENCH_CACHE_DIR`` to persist results
    across sessions.
    """
    return ExperimentHarness()
