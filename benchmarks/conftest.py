"""Session-scoped fixtures shared by all figure/table harnesses."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from common import ExperimentCache  # noqa: E402


@pytest.fixture(scope="session")
def cache() -> ExperimentCache:
    """One experiment cache for the whole benchmark session.

    Detailed baseline simulations are the expensive part of every figure;
    caching them lets Figures 7/9 (and 8/10) share identical baselines, just
    as the paper evaluates both policies against the same detailed runs.
    """
    return ExperimentCache()
