"""Figure 5 — IPC variation across task instances in detailed simulation.

The counterpart of Figure 1: the same analysis on the detailed simulation of
the high-performance architecture with 8 threads.  The paper's point is that
the simulator reproduces the +/-5% classification of native execution for 18
of the 19 benchmarks; this harness regenerates the per-benchmark box-plot
statistics and reports the classification agreement with the Figure 1 run.
"""

from __future__ import annotations

from common import HIGH_PERFORMANCE, all_benchmark_names, bench_scale, bench_seed, write_result
from repro.analysis.native import NativeExecutionModel, native_execution
from repro.analysis.reporting import render_variation_report
from repro.analysis.variation import classification_agreement, ipc_variation, variation_grid

NUM_THREADS = 8


def _run(cache):
    # The simulated side goes through the orchestrator: its detailed runs are
    # the same baselines the accuracy figures use, so they come out of the
    # shared session store.  The native substitute perturbs detailed-mode
    # cycles with an in-memory noise model, so it runs outside the spec layer.
    simulated = variation_grid(
        all_benchmark_names(),
        num_threads=NUM_THREADS,
        architecture=HIGH_PERFORMANCE,
        scale=bench_scale(),
        seed=bench_seed(),
        backend=cache.backend,
        store=cache.store,
    )
    native = {}
    for name in all_benchmark_names():
        native_result = native_execution(
            cache.trace(name),
            num_threads=NUM_THREADS,
            architecture=HIGH_PERFORMANCE,
            noise=NativeExecutionModel(seed=bench_seed()),
        )
        native[name] = ipc_variation(native_result)
    return simulated, native


def test_fig05_simulated_ipc_variation(benchmark, cache):
    """Regenerate Figure 5 and the native-vs-simulation agreement check."""
    simulated, native = benchmark.pedantic(_run, args=(cache,), rounds=1, iterations=1)
    agreement = classification_agreement(native, simulated)
    agreeing = round(agreement * len(simulated))
    text = render_variation_report(
        simulated,
        title=(
            "Figure 5: IPC variation per task type, detailed simulation, "
            f"high-performance architecture, {NUM_THREADS} threads, scale={bench_scale()}"
        ),
    )
    text += (
        f"\nclassification agreement with native execution (Fig. 1): "
        f"{agreeing} of {len(simulated)} benchmarks"
        "\n(paper: 18 of 19)"
    )
    write_result("fig05_simulated_variation", text)
    print(text)
    within = sum(1 for report in simulated.values() if report.within_5_percent)
    assert within >= 11
    # Agreement between native substitute and simulation should be high
    # (the paper reports agreement on 18 of 19 benchmarks).
    assert agreeing >= len(simulated) - 5
