"""Figure 10 — lazy sampling on the low-power architecture.

The final generalisation check of the paper: lazy sampling with the
parameters selected on the high-performance architecture, applied to the
low-power configuration with 1-8 threads.  Error remains small for most
benchmarks, with dedup showing the largest increase relative to periodic
sampling (input-dependent compression work).
"""

from __future__ import annotations

from common import (
    LOW_POWER,
    all_benchmark_names,
    bench_scale,
    thread_counts,
    write_result,
)
from repro.analysis.accuracy import summarize
from repro.analysis.reporting import render_accuracy_table
from repro.core.config import lazy_config


def _run(cache):
    return cache.accuracy_grid(
        all_benchmark_names(), LOW_POWER, thread_counts("lowpower"), lazy_config()
    )


def test_fig10_lazy_sampling_low_power(benchmark, cache):
    """Regenerate Figure 10 (lazy sampling, low-power architecture)."""
    results = benchmark.pedantic(_run, args=(cache,), rounds=1, iterations=1)
    text = render_accuracy_table(
        results,
        title=f"Figure 10: lazy sampling (W=2, H=4, P=inf), low-power architecture, "
              f"scale={bench_scale()}",
    )
    write_result("fig10_lazy_lowpower", text)
    print(text)
    overall = summarize(results)
    # Average and median error stay small; the maximum is dominated by the
    # paper's known low-power outlier (freqmine/dedup, input-dependent work),
    # whose error at 1 thread is large but deterministic at this scale.
    assert overall.average_error_percent < 5.0
    assert overall.median_error_percent < 2.0
    assert overall.max_error_percent < 60.0
    assert overall.average_speedup > 5.0
