"""Shared infrastructure for the per-figure benchmark harnesses.

Every figure/table of the paper's evaluation has one benchmark module in this
directory.  They all build on the helpers here:

* experiment parameters come from environment variables so the whole suite
  can be scaled up or down without editing code
  (``REPRO_BENCH_SCALE``, ``REPRO_BENCH_SEED``, ``REPRO_BENCH_THREADS_*``,
  ``REPRO_BENCH_JOBS``, ``REPRO_BENCH_BACKEND``, ``REPRO_BENCH_HOSTS``,
  ``REPRO_BENCH_BATCH``, ``REPRO_BENCH_CACHE_DIR``),
* every experiment goes through the :mod:`repro.exp` orchestrator via the
  session-scoped :class:`ExperimentHarness`: detailed baselines are
  deduplicated and shared between figures (Figure 7 and Figure 9 use the same
  baselines, for instance), ``REPRO_BENCH_JOBS=N`` runs each grid on an
  N-process pool, and ``REPRO_BENCH_CACHE_DIR`` makes results persistent
  across pytest sessions, and
* every harness writes its regenerated table to ``benchmarks/results/`` so
  the numbers quoted in EXPERIMENTS.md can be reproduced by re-running
  ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.accuracy import AccuracyResult, evaluate_specs, grid_specs
from repro.arch.config import (
    ArchitectureConfig,
    high_performance_config,
    low_power_config,
)
from repro.core.config import TaskPointConfig
from repro.exp import (
    ExecutionBackend,
    ExperimentResult,
    ExperimentSpec,
    MemoryResultStore,
    ResultStore,
    get_trace,
    make_named_backend,
    run_experiments,
)
from repro.trace.trace import ApplicationTrace

#: Default workload scale for the benchmark harnesses (fraction of the
#: paper's task-instance counts).  Override with REPRO_BENCH_SCALE.
DEFAULT_SCALE = 0.08

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale() -> float:
    """Workload scale used by the harnesses."""
    return float(os.environ.get("REPRO_BENCH_SCALE", DEFAULT_SCALE))


def bench_seed() -> int:
    """Trace-generation seed used by the harnesses."""
    return int(os.environ.get("REPRO_BENCH_SEED", "1"))


def bench_jobs() -> int:
    """Worker processes per grid (1 = serial).  Override with REPRO_BENCH_JOBS."""
    return int(os.environ.get("REPRO_BENCH_JOBS", "1"))


def bench_backend_name() -> str:
    """Execution backend name (auto/serial/pool/async/multihost).

    ``REPRO_BENCH_BACKEND=async`` runs every grid on the distributed
    asyncio-worker backend; the default ``auto`` keeps the historical
    semantics (a process pool when ``REPRO_BENCH_JOBS`` > 1, else serial —
    unless ``REPRO_BENCH_HOSTS`` is set, which selects ``multihost``).
    """
    return os.environ.get("REPRO_BENCH_BACKEND", "auto")


def bench_hosts() -> Optional[str]:
    """Multi-host worker budgets (``REPRO_BENCH_HOSTS=host1:4,host2:8``).

    When set, the whole benchmark session runs through the multi-host
    transport (host names starting with ``local`` launch subprocess
    workers, anything else SSH); unset keeps single-host execution.
    """
    return os.environ.get("REPRO_BENCH_HOSTS") or None


def bench_batch() -> Optional[str]:
    """Specs per dispatch frame (``REPRO_BENCH_BATCH=N|adaptive[:N]``).

    Applies to the async/multihost backends (protocol-level ``run_batch``
    dispatch) and maps onto ``chunksize`` for the process pool; unset keeps
    one spec per dispatch.
    """
    return os.environ.get("REPRO_BENCH_BATCH") or None


def thread_counts(kind: str) -> List[int]:
    """Thread counts for ``kind`` in {"highperf", "lowpower", "sweep"}.

    Defaults follow the paper: 8-64 threads for the high-performance
    architecture, 1-8 for the low-power one, 32/64 for the sensitivity
    sweeps.  Override with REPRO_BENCH_THREADS_HIGHPERF etc. (comma lists).
    """
    defaults = {
        "highperf": "8,16,32,64",
        "lowpower": "1,2,4,8",
        "sweep": "32,64",
    }
    env_key = f"REPRO_BENCH_THREADS_{kind.upper()}"
    raw = os.environ.get(env_key, defaults[kind])
    return [int(part) for part in raw.split(",") if part]


def all_benchmark_names() -> List[str]:
    """Benchmarks included in the harnesses (all 19 unless overridden)."""
    raw = os.environ.get("REPRO_BENCH_WORKLOADS")
    if raw:
        return [part for part in raw.split(",") if part]
    from repro.workloads.registry import list_workloads

    return list_workloads()


def write_result(name: str, text: str) -> Path:
    """Write a regenerated table/figure to ``benchmarks/results/<name>.txt``."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    return path


class ExperimentHarness:
    """Session-wide front-end to the experiment orchestrator.

    The harness owns one execution backend (serial, a process pool when
    ``REPRO_BENCH_JOBS`` > 1, or the distributed async-worker backend when
    ``REPRO_BENCH_BACKEND=async``) and one result store shared by every
    figure of the session — an in-memory store by default, or the persistent on-disk
    store when ``REPRO_BENCH_CACHE_DIR`` is set.  All experiment execution
    goes through :func:`repro.exp.run_experiments`; the harness itself holds
    no caches and runs no loops.
    """

    def __init__(
        self,
        backend: Optional[ExecutionBackend] = None,
        store=None,
    ) -> None:
        if store is not None:
            self.store = store
        else:
            cache_dir = os.environ.get("REPRO_BENCH_CACHE_DIR")
            self.store = ResultStore(cache_dir) if cache_dir else MemoryResultStore()
        if backend is not None:
            self.backend = backend
        else:
            self.backend = make_named_backend(
                bench_backend_name(), workers=bench_jobs(), store=self.store,
                hosts=bench_hosts(), batch=bench_batch(),
            )

    # ------------------------------------------------------------------
    def spec(
        self,
        benchmark: str,
        architecture: Optional[ArchitectureConfig] = None,
        num_threads: int = 8,
        config: Optional[TaskPointConfig] = None,
    ) -> ExperimentSpec:
        """Spec for one experiment at the session's scale and seed."""
        return ExperimentSpec(
            benchmark=benchmark,
            num_threads=num_threads,
            scale=bench_scale(),
            trace_seed=bench_seed(),
            architecture=architecture,
            config=config,
        )

    def run(self, specs: Sequence[ExperimentSpec]) -> List[ExperimentResult]:
        """Run arbitrary specs through the session backend and store."""
        return run_experiments(specs, backend=self.backend, store=self.store)

    # ------------------------------------------------------------------
    def trace(self, benchmark: str) -> ApplicationTrace:
        """The session trace of ``benchmark`` (memoised per process)."""
        return get_trace(benchmark, bench_scale(), bench_seed())

    def detailed(
        self,
        benchmark: str,
        architecture: ArchitectureConfig,
        num_threads: int,
    ) -> ExperimentResult:
        """Detailed baseline result of one experiment point."""
        return self.run([self.spec(benchmark, architecture, num_threads)])[0]

    def accuracy_grid(
        self,
        benchmarks: Sequence[str],
        architecture: ArchitectureConfig,
        threads: Sequence[int],
        config: TaskPointConfig,
    ) -> List[AccuracyResult]:
        """Accuracy results for every (benchmark, thread-count) pair."""
        specs = grid_specs(
            benchmarks,
            threads,
            architecture=architecture,
            config=config,
            scale=bench_scale(),
            seed=bench_seed(),
        )
        return evaluate_specs(specs, backend=self.backend, store=self.store)


#: Architectures used throughout the harnesses.
HIGH_PERFORMANCE = high_performance_config()
LOW_POWER = low_power_config()
