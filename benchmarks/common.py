"""Shared infrastructure for the per-figure benchmark harnesses.

Every figure/table of the paper's evaluation has one benchmark module in this
directory.  They all build on the helpers here:

* experiment parameters come from environment variables so the whole suite
  can be scaled up or down without editing code
  (``REPRO_BENCH_SCALE``, ``REPRO_BENCH_SEED``, ``REPRO_BENCH_THREADS_*``),
* traces and full-detailed baseline simulations are cached per session and
  shared between figures (Figure 7 and Figure 9 use the same baselines, for
  instance), and
* every harness writes its regenerated table to ``benchmarks/results/`` so
  the numbers quoted in EXPERIMENTS.md can be reproduced by re-running
  ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.accuracy import AccuracyResult
from repro.arch.config import (
    ArchitectureConfig,
    high_performance_config,
    low_power_config,
)
from repro.core.api import sampled_simulation
from repro.core.config import TaskPointConfig
from repro.sim.results import SimulationResult
from repro.sim.simulator import TaskSimSimulator
from repro.trace.trace import ApplicationTrace
from repro.workloads.registry import get_workload, list_workloads

#: Default workload scale for the benchmark harnesses (fraction of the
#: paper's task-instance counts).  Override with REPRO_BENCH_SCALE.
DEFAULT_SCALE = 0.08

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale() -> float:
    """Workload scale used by the harnesses."""
    return float(os.environ.get("REPRO_BENCH_SCALE", DEFAULT_SCALE))


def bench_seed() -> int:
    """Trace-generation seed used by the harnesses."""
    return int(os.environ.get("REPRO_BENCH_SEED", "1"))


def thread_counts(kind: str) -> List[int]:
    """Thread counts for ``kind`` in {"highperf", "lowpower", "sweep"}.

    Defaults follow the paper: 8-64 threads for the high-performance
    architecture, 1-8 for the low-power one, 32/64 for the sensitivity
    sweeps.  Override with REPRO_BENCH_THREADS_HIGHPERF etc. (comma lists).
    """
    defaults = {
        "highperf": "8,16,32,64",
        "lowpower": "1,2,4,8",
        "sweep": "32,64",
    }
    env_key = f"REPRO_BENCH_THREADS_{kind.upper()}"
    raw = os.environ.get(env_key, defaults[kind])
    return [int(part) for part in raw.split(",") if part]


def all_benchmark_names() -> List[str]:
    """Benchmarks included in the harnesses (all 19 unless overridden)."""
    raw = os.environ.get("REPRO_BENCH_WORKLOADS")
    if raw:
        return [part for part in raw.split(",") if part]
    return list_workloads()


def write_result(name: str, text: str) -> Path:
    """Write a regenerated table/figure to ``benchmarks/results/<name>.txt``."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    return path


class ExperimentCache:
    """Caches traces and detailed baseline simulations across harnesses."""

    def __init__(self) -> None:
        self._traces: Dict[Tuple[str, float, int], ApplicationTrace] = {}
        self._detailed: Dict[Tuple[str, str, int, float, int], SimulationResult] = {}

    # ------------------------------------------------------------------
    def trace(self, benchmark: str, scale: Optional[float] = None,
              seed: Optional[int] = None) -> ApplicationTrace:
        """Return (generating once) the trace of ``benchmark``."""
        scale = bench_scale() if scale is None else scale
        seed = bench_seed() if seed is None else seed
        key = (benchmark, scale, seed)
        if key not in self._traces:
            self._traces[key] = get_workload(benchmark).generate(scale=scale, seed=seed)
        return self._traces[key]

    def detailed(self, benchmark: str, architecture: ArchitectureConfig,
                 num_threads: int) -> SimulationResult:
        """Return (simulating once) the full detailed baseline result."""
        key = (benchmark, architecture.name, num_threads, bench_scale(), bench_seed())
        if key not in self._detailed:
            simulator = TaskSimSimulator(architecture=architecture)
            self._detailed[key] = simulator.run(
                self.trace(benchmark), num_threads=num_threads
            )
        return self._detailed[key]

    # ------------------------------------------------------------------
    def accuracy(
        self,
        benchmark: str,
        architecture: ArchitectureConfig,
        num_threads: int,
        config: TaskPointConfig,
    ) -> AccuracyResult:
        """Sampled-versus-detailed comparison reusing the cached baseline."""
        detailed = self.detailed(benchmark, architecture, num_threads)
        sampled = sampled_simulation(
            self.trace(benchmark),
            num_threads=num_threads,
            architecture=architecture,
            config=config,
        )
        taskpoint = sampled.metadata["taskpoint"]
        return AccuracyResult(
            benchmark=benchmark,
            architecture=architecture.name,
            num_threads=num_threads,
            error_percent=sampled.error_versus(detailed) * 100.0,
            speedup=sampled.speedup_versus(detailed),
            wall_speedup=sampled.wall_speedup_versus(detailed),
            detailed_cycles=detailed.total_cycles,
            sampled_cycles=sampled.total_cycles,
            detailed_fraction=sampled.cost.detailed_fraction,
            resamples=taskpoint.resamples,
        )

    def accuracy_grid(
        self,
        benchmarks: Sequence[str],
        architecture: ArchitectureConfig,
        threads: Sequence[int],
        config: TaskPointConfig,
    ) -> List[AccuracyResult]:
        """Accuracy results for every (benchmark, thread-count) pair."""
        results = []
        for name in benchmarks:
            for count in threads:
                results.append(self.accuracy(name, architecture, count, config))
        return results


#: Architectures used throughout the harnesses.
HIGH_PERFORMANCE = high_performance_config()
LOW_POWER = low_power_config()
