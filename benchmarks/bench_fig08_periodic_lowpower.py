"""Figure 8 — periodic sampling on the low-power architecture.

The robustness test of the paper: the sampling parameters (W=2, H=4, P=250)
were chosen on the high-performance architecture and are reused unchanged on
the radically different low-power configuration, simulated with 1, 2, 4 and
8 threads.  Error stays small (largest outliers: freqmine and
sparse-matrix-vector-multiplication) and speedup degrades less with the
thread count than on the high-performance machine.
"""

from __future__ import annotations

from common import (
    LOW_POWER,
    all_benchmark_names,
    bench_scale,
    thread_counts,
    write_result,
)
from repro.analysis.accuracy import summarize
from repro.analysis.reporting import render_accuracy_table
from repro.core.config import periodic_config


def _run(cache):
    return cache.accuracy_grid(
        all_benchmark_names(), LOW_POWER, thread_counts("lowpower"), periodic_config()
    )


def test_fig08_periodic_sampling_low_power(benchmark, cache):
    """Regenerate Figure 8 (periodic sampling, P=250, low-power architecture)."""
    results = benchmark.pedantic(_run, args=(cache,), rounds=1, iterations=1)
    text = render_accuracy_table(
        results,
        title=(
            "Figure 8: periodic sampling (W=2, H=4, P=250), low-power architecture, "
            f"scale={bench_scale()}"
        ),
    )
    write_result("fig08_periodic_lowpower", text)
    print(text)
    overall = summarize(results)
    # Average and median error stay small; the maximum is dominated by the
    # paper's known low-power outlier (freqmine, input-dependent mining work),
    # whose error at 1 thread is large but deterministic at this scale.
    assert overall.average_error_percent < 5.0
    assert overall.median_error_percent < 2.0
    assert overall.max_error_percent < 60.0
    assert overall.average_speedup > 5.0
