"""Table I — the benchmark inventory.

Regenerates the paper's Table I: task types, task instances and the cost of
fully detailed simulation for every benchmark.  The paper reports wall-clock
hours on the authors' machines; this reproduction reports the deterministic
simulation-cost model (units proportional to detailed-simulated
instructions) plus the measured wall-clock seconds of the 1-thread and
64-thread detailed runs at the benchmark scale.
"""

from __future__ import annotations

from common import HIGH_PERFORMANCE, all_benchmark_names, bench_scale, write_result
from repro.analysis.reporting import format_table
from repro.workloads.registry import get_workload


def _build_table(cache):
    rows = []
    for name in all_benchmark_names():
        workload = get_workload(name)
        info = workload.info()
        trace = cache.trace(name)
        stats = trace.statistics()
        single = cache.detailed(name, HIGH_PERFORMANCE, 1)
        rows.append(
            [
                name,
                info.paper_task_types,
                info.paper_task_instances,
                stats.num_task_types,
                stats.num_task_instances,
                stats.total_instructions,
                f"{single.cost.total_units:.3g}",
                f"{single.wall_seconds:.2f}" if single.wall_seconds else "-",
                info.properties,
            ]
        )
    headers = [
        "benchmark", "types (paper)", "instances (paper)", "types (generated)",
        "instances (generated)", "instructions", "detailed cost [units]",
        "detailed wall [s, 1 thread]", "properties",
    ]
    return format_table(headers, rows)


def test_table1_benchmark_inventory(benchmark, cache):
    """Regenerate Table I (structure at paper scale, cost at bench scale)."""
    table = benchmark.pedantic(_build_table, args=(cache,), rounds=1, iterations=1)
    text = f"Table I reproduction (scale={bench_scale()})\n{table}"
    path = write_result("table1_benchmarks", text)
    print(text)
    assert path.exists()
    # Structural ground truth: 19 benchmarks, task-type counts match Table I.
    assert table.count("\n") >= 20
