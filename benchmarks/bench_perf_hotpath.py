"""Hot-path performance microbenchmark (simulator throughput trajectory).

Unlike the figure harnesses, this benchmark measures the *simulator itself*:
wall-clock throughput (task instances per second) of

* **detailed simulation** on the batched columnar executor versus the
  per-record ``DetailedCoreModel`` baseline (the pre-refactor hot path, kept
  in-tree behind ``use_batched=False``), and
* **TaskPoint sampled simulation** (lazy policy) on the batched path.

Both variants are bit-identical in results (asserted here on the makespan),
so the ratio is a pure implementation speedup.  The measurements are written
as machine-readable JSON to ``benchmarks/results/perf_hotpath.json`` on
every run; set ``REPRO_BENCH_RECORD=1`` to also append a datapoint to the
repository-root ``BENCH_hotpath.json`` trajectory file (the committed record
of simulator performance across PRs).

Each configuration also records the grouped-dispatch coverage of the run:
which fraction of detailed instances went through the deferred group path's
vector kernel versus the scalar grouped executor (the measured adaptive
backend picks per run; both are bit-identical).

Environment knobs: ``REPRO_BENCH_SMOKE=1`` shrinks the workload and skips
the speedup threshold (CI containers are too noisy for timing assertions);
``REPRO_BENCH_SCALE``/``REPRO_BENCH_SEED`` are honoured as everywhere else.
``--workloads=a,b`` (or ``REPRO_BENCH_WORKLOADS``) restricts the measured
configurations to a workload subset for quick iteration; subset runs never
assert the speedup floor nor append to the trajectory file, whose entries
must stay comparable across PRs.
"""

from __future__ import annotations

import gc
import json
import os
import platform
import statistics
import time
from datetime import datetime, timezone
from pathlib import Path

from common import (
    HIGH_PERFORMANCE,
    LOW_POWER,
    RESULTS_DIR,
    bench_scale,
    bench_seed,
    write_result,
)
from repro.core.config import lazy_config
from repro.core.controller import TaskPointController
from repro.sim.engine import SimulationEngine
from repro.workloads.registry import get_workload

#: Measured configurations ``(workload, architecture, num_threads)``: two
#: mid-size, structurally different workloads (Cholesky's dependency-rich
#: wavefront; blackscholes' wide fork-join) on both Table II architectures
#: at 8 simulated threads, plus 32/64-thread configurations where dispatch
#: groups widen past the vector kernel's amortisation point — the committed
#: record of the kernel's engagement region (``vector_coverage`` > 0 on the
#: high-performance configs; the low-power hierarchy's shorter latencies
#: stagger completions, so its groups stay narrow and the 64-thread config
#: records the p1s1 scalar walk at scale instead).  Cholesky appears only
#: at 8 threads: its wavefront parallelism saturates below 32 workers at
#: the bench scale, so wider configs would measure scheduler idle time
#: rather than walk throughput.
HOTPATH_CONFIGS = [
    ("cholesky", "high-performance", 8),
    ("cholesky", "low-power", 8),
    ("blackscholes", "high-performance", 8),
    ("blackscholes", "low-power", 8),
    ("blackscholes", "high-performance", 32),
    ("blackscholes", "low-power", 64),
    ("blackscholes", "high-performance", 64),
]

#: Hard regression floor for the geometric-mean detailed-mode speedup of the
#: batched executor over the per-record baseline, asserted outside smoke
#: mode (and only for full-config runs).  The grouped-dispatch engine
#: measures 4.2-4.9x depending on host load (see BENCH_hotpath.json); the
#: asserted floor is set well below that so host contention does not flake
#: the suite while a genuine hot-path regression still fails it.
MIN_DETAILED_SPEEDUP = 2.5

TRAJECTORY_PATH = Path(__file__).parent.parent / "BENCH_hotpath.json"

_ARCHITECTURES = {
    "high-performance": HIGH_PERFORMANCE,
    "low-power": LOW_POWER,
}


def _smoke() -> bool:
    return os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")


def _wall(make_engine):
    engine = make_engine()
    # Collect before starting the clock: otherwise the previous variant's
    # garbage (the per-record baseline churns far more objects than the
    # batched engine) is collected inside this run's timed region, and the
    # interleaved pairs stop being independent measurements.
    gc.collect()
    start = time.perf_counter()
    result = engine.run()
    return time.perf_counter() - start, result, engine


def _measure_config(
    workload: str, arch_name: str, scale: float, seed: int, num_threads: int,
    repeats: int,
) -> dict:
    trace = get_workload(workload).generate(scale=scale, seed=seed)
    len(trace.records)  # materialise record views so the baseline pays no one-off cost
    architecture = _ARCHITECTURES[arch_name]

    def legacy():
        return SimulationEngine(
            trace, architecture, num_threads=num_threads, use_batched=False
        )

    def batched():
        return SimulationEngine(trace, architecture, num_threads=num_threads)

    # Interleaved pairs: host-load drift hits both variants of a pair alike,
    # so the per-pair ratio is far more stable than two separate medians.
    _wall(legacy)
    _wall(batched)
    legacy_walls, batched_walls, ratios = [], [], []
    legacy_result = batched_result = batched_engine = None
    for _ in range(repeats):
        legacy_wall, legacy_result, _ = _wall(legacy)
        batched_wall, batched_result, batched_engine = _wall(batched)
        legacy_walls.append(legacy_wall)
        batched_walls.append(batched_wall)
        ratios.append(legacy_wall / batched_wall)
    assert batched_result.total_cycles == legacy_result.total_cycles, (
        f"batched and per-record detailed simulation diverged on {workload}/"
        f"{arch_name}: {batched_result.total_cycles!r} != {legacy_result.total_cycles!r}"
    )

    # Grouped-dispatch coverage of the (deterministic) batched run: the
    # fraction of detailed instances the adaptive backend sent through the
    # vector kernel rather than the scalar grouped executor.
    coverage = batched_engine.vector_stats
    detailed_total = coverage["vector_instances"] + coverage["scalar_instances"]

    instances = len(trace)
    legacy_wall = statistics.median(legacy_walls)
    batched_wall = statistics.median(batched_walls)
    return {
        "workload": workload,
        "architecture": arch_name,
        "num_threads": num_threads,
        "instances": instances,
        "detailed_legacy_wall_s": legacy_wall,
        "detailed_legacy_instances_per_s": instances / legacy_wall,
        "detailed_batched_wall_s": batched_wall,
        "detailed_batched_instances_per_s": instances / batched_wall,
        "detailed_speedup": statistics.median(ratios),
        "vector_instances": coverage["vector_instances"],
        "scalar_instances": coverage["scalar_instances"],
        "vector_coverage": (
            coverage["vector_instances"] / detailed_total if detailed_total else 0.0
        ),
        "dispatch_groups": coverage["groups"],
        "max_group": coverage["max_group"],
    }


def _measure(
    scale: float, seed: int, num_threads: int, repeats: int, hotpath_configs
) -> dict:
    configs = [
        _measure_config(
            workload, arch_name, scale, seed, config_threads, repeats
        )
        for workload, arch_name, config_threads in hotpath_configs
    ]
    speedups = [config["detailed_speedup"] for config in configs]
    geomean = statistics.geometric_mean(speedups)

    # Sampled-mode throughput (TaskPoint lazy policy) on the first config,
    # at the default thread count.
    workload, arch_name, _ = hotpath_configs[0]
    trace = get_workload(workload).generate(scale=scale, seed=seed)

    def sampled():
        return SimulationEngine(
            trace,
            _ARCHITECTURES[arch_name],
            num_threads=num_threads,
            controller=TaskPointController(config=lazy_config()),
        )

    _wall(sampled)
    sampled_wall = statistics.median([_wall(sampled)[0] for _ in range(repeats)])

    return {
        "scale": scale,
        "seed": seed,
        "num_threads": num_threads,
        "repeats": repeats,
        "configs": configs,
        "detailed_speedup_geomean": geomean,
        "detailed_speedup_min": min(speedups),
        "sampled_workload": workload,
        "sampled_architecture": arch_name,
        "sampled_wall_s": sampled_wall,
        "sampled_instances_per_s": len(trace) / sampled_wall,
    }


def _record_trajectory(measurement: dict) -> None:
    """Append a datapoint to the committed BENCH_hotpath.json trajectory."""
    if TRAJECTORY_PATH.exists():
        trajectory = json.loads(TRAJECTORY_PATH.read_text(encoding="utf-8"))
    else:
        trajectory = {"schema": 1, "benchmark": "hotpath", "entries": []}
    entry = dict(measurement)
    entry["date"] = datetime.now(timezone.utc).strftime("%Y-%m-%d")
    entry["python"] = platform.python_version()
    entry["machine"] = platform.machine()
    trajectory["entries"].append(entry)
    TRAJECTORY_PATH.write_text(
        json.dumps(trajectory, indent=1, sort_keys=True) + "\n", encoding="utf-8"
    )


def test_hotpath_throughput(benchmark, workloads_subset):
    """Measure detailed + sampled simulator throughput; write the JSON."""
    smoke = _smoke()
    scale = bench_scale() if not smoke else min(bench_scale(), 0.02)
    num_threads = 8
    repeats = 1 if smoke else 5
    hotpath_configs = HOTPATH_CONFIGS
    if workloads_subset is not None:
        unknown = set(workloads_subset) - {w for w, _, _ in HOTPATH_CONFIGS}
        assert not unknown, (
            f"--workloads names {sorted(unknown)} not in the hot-path config "
            f"set {sorted({w for w, _, _ in HOTPATH_CONFIGS})}"
        )
        hotpath_configs = [
            config for config in HOTPATH_CONFIGS if config[0] in workloads_subset
        ]
    subset = hotpath_configs != HOTPATH_CONFIGS
    measurement = benchmark.pedantic(
        _measure,
        args=(scale, bench_seed(), num_threads, repeats, hotpath_configs),
        rounds=1,
        iterations=1,
    )
    measurement["smoke"] = smoke
    measurement["workload_subset"] = subset

    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "perf_hotpath.json").write_text(
        json.dumps(measurement, indent=1, sort_keys=True) + "\n", encoding="utf-8"
    )
    lines = [
        f"Hot-path microbenchmark (scale={scale}, "
        f"paired medians of {measurement['repeats']})"
    ]
    for config in measurement["configs"]:
        lines.append(
            f"{config['workload']}/{config['architecture']}"
            f"/t{config['num_threads']}: per-record "
            f"{config['detailed_legacy_wall_s']:.3f} s "
            f"({config['detailed_legacy_instances_per_s']:.0f} inst/s) | batched "
            f"{config['detailed_batched_wall_s']:.3f} s "
            f"({config['detailed_batched_instances_per_s']:.0f} inst/s) | "
            f"speedup {config['detailed_speedup']:.2f}x | vector coverage "
            f"{config['vector_coverage']:.0%} "
            f"({config['dispatch_groups']} groups, max {config['max_group']})"
        )
    lines.append(
        f"detailed speedup geomean: {measurement['detailed_speedup_geomean']:.2f}x "
        f"(min {measurement['detailed_speedup_min']:.2f}x)"
    )
    lines.append(
        f"sampled lazy ({measurement['sampled_workload']}/"
        f"{measurement['sampled_architecture']}): "
        f"{measurement['sampled_wall_s']:.3f} s "
        f"({measurement['sampled_instances_per_s']:.0f} inst/s)"
    )
    text = "\n".join(lines)
    write_result("perf_hotpath", text)
    print(text)

    # Trajectory entries and the speedup floor are defined over the full
    # config set only; a --workloads subset run is for iteration, not record.
    if os.environ.get("REPRO_BENCH_RECORD", "") not in ("", "0") and not subset:
        _record_trajectory(measurement)

    if not smoke and not subset:
        assert measurement["detailed_speedup_geomean"] >= MIN_DETAILED_SPEEDUP, (
            "batched detailed path only "
            f"{measurement['detailed_speedup_geomean']:.2f}x (geomean) over the "
            f"per-record baseline (target {MIN_DETAILED_SPEEDUP}x)"
        )
