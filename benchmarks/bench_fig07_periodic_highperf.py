"""Figure 7 — periodic sampling on the high-performance architecture.

Execution-time error and simulation speedup of TaskPoint with periodic
sampling (W=2, H=4, P=250) for all 19 benchmarks simulated with 8, 16, 32
and 64 threads on the high-performance architecture of Table II.  The paper
reports an average error below 2% for every thread count, a maximum error of
8.9% (freqmine, 8 threads) and speedups that decrease with the thread count.
"""

from __future__ import annotations

from common import (
    HIGH_PERFORMANCE,
    all_benchmark_names,
    bench_scale,
    thread_counts,
    write_result,
)
from repro.analysis.accuracy import group_by_threads, summarize
from repro.analysis.reporting import render_accuracy_table
from repro.core.config import periodic_config


def _run(cache):
    return cache.accuracy_grid(
        all_benchmark_names(), HIGH_PERFORMANCE, thread_counts("highperf"),
        periodic_config(),
    )


def test_fig07_periodic_sampling_high_performance(benchmark, cache):
    """Regenerate Figure 7 (periodic sampling, P=250, high-perf architecture)."""
    results = benchmark.pedantic(_run, args=(cache,), rounds=1, iterations=1)
    text = render_accuracy_table(
        results,
        title=(
            "Figure 7: periodic sampling (W=2, H=4, P=250), high-performance "
            f"architecture, scale={bench_scale()}"
        ),
    )
    write_result("fig07_periodic_highperf", text)
    print(text)
    overall = summarize(results)
    per_threads = group_by_threads(results)
    # Paper-shape checks: small average error, bounded maximum error and
    # speedup well above 1 for the smaller thread counts.
    assert overall.average_error_percent < 5.0
    assert overall.median_error_percent < 2.0
    # The maximum is dominated by the irregular outliers the paper also
    # reports (checkSparseLU / freqmine); deterministic at this scale.
    assert overall.max_error_percent < 45.0
    smallest = min(per_threads)
    largest = max(per_threads)
    assert per_threads[smallest].average_speedup > 5.0
    assert per_threads[smallest].average_speedup >= per_threads[largest].average_speedup
