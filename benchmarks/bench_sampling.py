"""Sampling accuracy/efficiency benchmark (BENCH_sampling trajectory).

Runs the two-phase stratified engine, the paper's periodic TaskPoint
configuration and the online error-budget fidelity controller (a 1/2/5/10%
budget sweep) over the full 19-workload registry against shared detailed
baselines, and records the quality trade-offs the adaptive engines are
supposed to win: comparable error inside the Figure 7-10 bounds at a
substantially lower detailed-instance budget, a 95% confidence interval
that actually covers the detailed execution time, and — for the fidelity
controller — achieved error within the declared budget at a detailed
fraction below periodic sampling's.

The measured numbers are **deterministic** in (scale, seed, thread count) —
no wall-clock is involved — so unlike the hot-path microbenchmark the
regression gate (``scripts/check_sampling_regression.py``) can compare
fresh numbers against the committed trajectory with tight slack.  Smoke mode
(``REPRO_BENCH_SMOKE=1``) keeps **all** workloads and drops the scale
instead; the trajectory file stores one entry per scale, and the gate
compares only same-scale entries, so the committed record holds both the
full-scale entry and the CI-scale one.

Environment knobs: ``REPRO_BENCH_SAMPLING_SCALE`` overrides the bench's own
scale (default 0.05 full / 0.02 smoke — deliberately independent of
``REPRO_BENCH_SCALE`` so the trajectory stays comparable across sessions
with different figure-harness scales); ``REPRO_BENCH_SEED`` as everywhere;
``--workloads=a,b`` restricts to a subset for iteration (subset runs never
assert the quality floor nor append to the trajectory).  Set
``REPRO_BENCH_RECORD=1`` to append the measurement to the repository-root
``BENCH_sampling.json``.
"""

from __future__ import annotations

import json
import os
import platform
from datetime import datetime, timezone
from pathlib import Path

from common import (
    HIGH_PERFORMANCE,
    RESULTS_DIR,
    all_benchmark_names,
    bench_seed,
    write_result,
)
from repro.analysis.accuracy import evaluate_specs, grid_specs, summarize
from repro.analysis.reporting import format_table, render_accuracy_table
from repro.core.config import TaskPointConfig
from repro.core.fidelity import FidelityConfig
from repro.core.stratified import StratifiedConfig

TRAJECTORY_PATH = Path(__file__).parent.parent / "BENCH_sampling.json"

#: Single simulated thread count: the per-stratum IPC estimator is
#: thread-count-sensitive (resampling on change), so one mid-range count
#: keeps the bench cheap while the figure harnesses cover the sweeps.
NUM_THREADS = 4

#: Bench-owned scales (see module docstring): the full-scale entry is the
#: acceptance record; the smoke scale matches what CI can afford and gets
#: its own trajectory entry.
FULL_SCALE = 0.05
SMOKE_SCALE = 0.02

#: Quality floor asserted on full (non-smoke, non-subset) runs — the
#: Figure 7-10 error bounds plus the stratified engine's own targets:
#: no more than 60% of periodic's detailed-instance budget, and the 95%
#: interval covering the detailed execution time on at least 90% of the
#: workloads.
MAX_AVG_ERROR = 5.0
MAX_MEDIAN_ERROR = 2.0
MAX_MAX_ERROR = 45.0
MAX_DETAIL_RATIO = 0.6
MIN_CI_COVERAGE = 0.9

#: Error budgets swept through the fidelity controller (1/2/5/10%).
FIDELITY_BUDGETS = (0.01, 0.02, 0.05, 0.10)

#: Acceptance gate, asserted on full runs at this budget: at most this many
#: workloads may exceed the budget (>= 17/19 within), and the controller's
#: summed detailed fraction must stay below periodic sampling's.
ACCEPTANCE_BUDGET = 0.02
MAX_BUDGET_VIOLATORS = 2


def _smoke() -> bool:
    return os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")


def _sampling_scale() -> float:
    override = os.environ.get("REPRO_BENCH_SAMPLING_SCALE")
    if override:
        return float(override)
    return SMOKE_SCALE if _smoke() else FULL_SCALE


def _measure(workloads, scale, seed) -> dict:
    stratified_config = StratifiedConfig()
    configs = [stratified_config, TaskPointConfig()] + [
        FidelityConfig(error_budget=budget) for budget in FIDELITY_BUDGETS
    ]
    # One batch for all engines, so the orchestrator runs each workload's
    # detailed baseline exactly once instead of once per engine.
    specs = []
    for config in configs:
        specs.extend(
            grid_specs(
                workloads, [NUM_THREADS], architecture=HIGH_PERFORMANCE,
                config=config, scale=scale, seed=seed,
            )
        )
    results = evaluate_specs(specs)
    count = len(workloads)
    per_config = [
        results[index * count:(index + 1) * count]
        for index in range(len(configs))
    ]
    stratified, periodic = per_config[0], per_config[1]
    fidelity_by_budget = dict(zip(FIDELITY_BUDGETS, per_config[2:]))

    rows = []
    for strat_row, periodic_row in zip(stratified, periodic):
        assert strat_row.benchmark == periodic_row.benchmark
        rows.append(
            {
                "workload": strat_row.benchmark,
                "stratified_error_percent": strat_row.error_percent,
                "periodic_error_percent": periodic_row.error_percent,
                "stratified_detailed_fraction": strat_row.detailed_fraction,
                "periodic_detailed_fraction": periodic_row.detailed_fraction,
                "ci_half_width_percent": strat_row.ci_half_width_percent,
                "ci_covers_detailed": strat_row.ci_covers_detailed,
                "stratified_speedup": strat_row.speedup,
                "periodic_speedup": periodic_row.speedup,
            }
        )

    strat_summary = summarize(stratified)
    periodic_summary = summarize(periodic)
    strat_detail = sum(row.detailed_fraction for row in stratified)
    periodic_detail = sum(row.detailed_fraction for row in periodic)

    fidelity_sweep = []
    for budget in FIDELITY_BUDGETS:
        budget_results = fidelity_by_budget[budget]
        budget_summary = summarize(budget_results)
        detail_sum = sum(row.detailed_fraction for row in budget_results)
        fidelity_sweep.append(
            {
                "error_budget": budget,
                "avg_error_percent": budget_summary.average_error_percent,
                "median_error_percent": budget_summary.median_error_percent,
                "max_error_percent": budget_summary.max_error_percent,
                "budget_hit_rate": budget_summary.budget_hit_rate,
                "within_budget_count": sum(
                    1 for row in budget_results if row.within_budget
                ),
                "workload_count": len(budget_results),
                "ci_coverage": budget_summary.ci_coverage,
                "detailed_fraction_sum": detail_sum,
                "detail_ratio_vs_periodic": (
                    detail_sum / periodic_detail if periodic_detail else None
                ),
                "workloads": [
                    {
                        "workload": row.benchmark,
                        "error_percent": row.error_percent,
                        "detailed_fraction": row.detailed_fraction,
                        "within_budget": row.within_budget,
                        "ci_half_width_percent": row.ci_half_width_percent,
                        "ci_covers_detailed": row.ci_covers_detailed,
                    }
                    for row in budget_results
                ],
            }
        )

    return {
        "scale": scale,
        "seed": seed,
        "num_threads": NUM_THREADS,
        "budget": stratified_config.budget,
        "strata_per_type": stratified_config.strata_per_type,
        "workloads": rows,
        "stratified_avg_error_percent": strat_summary.average_error_percent,
        "stratified_median_error_percent": strat_summary.median_error_percent,
        "stratified_max_error_percent": strat_summary.max_error_percent,
        "periodic_avg_error_percent": periodic_summary.average_error_percent,
        "periodic_median_error_percent": periodic_summary.median_error_percent,
        "periodic_max_error_percent": periodic_summary.max_error_percent,
        "ci_coverage": strat_summary.ci_coverage,
        "avg_ci_half_width_percent": strat_summary.average_ci_half_width_percent,
        "detail_ratio": strat_detail / periodic_detail if periodic_detail else None,
        "fidelity": {
            "budgets": list(FIDELITY_BUDGETS),
            "sweep": fidelity_sweep,
        },
        "_stratified_results": stratified,
        "_fidelity_results": fidelity_by_budget.get(ACCEPTANCE_BUDGET, []),
    }


def _record_trajectory(measurement: dict) -> None:
    """Append a datapoint to the committed BENCH_sampling.json trajectory."""
    if TRAJECTORY_PATH.exists():
        trajectory = json.loads(TRAJECTORY_PATH.read_text(encoding="utf-8"))
    else:
        trajectory = {"schema": 1, "benchmark": "sampling", "entries": []}
    entry = dict(measurement)
    entry["date"] = datetime.now(timezone.utc).strftime("%Y-%m-%d")
    entry["python"] = platform.python_version()
    entry["machine"] = platform.machine()
    trajectory["entries"].append(entry)
    TRAJECTORY_PATH.write_text(
        json.dumps(trajectory, indent=1, sort_keys=True) + "\n", encoding="utf-8"
    )


def test_sampling_quality(benchmark, workloads_subset):
    """Measure stratified-vs-periodic sampling quality; write the JSON."""
    smoke = _smoke()
    scale = _sampling_scale()
    seed = bench_seed()
    workloads = all_benchmark_names()
    if workloads_subset is not None:
        unknown = set(workloads_subset) - set(workloads)
        assert not unknown, f"--workloads names {sorted(unknown)} are unknown"
        workloads = [name for name in workloads if name in workloads_subset]
    subset = workloads != all_benchmark_names()

    measurement = benchmark.pedantic(
        _measure, args=(workloads, scale, seed), rounds=1, iterations=1
    )
    stratified_results = measurement.pop("_stratified_results")
    fidelity_results = measurement.pop("_fidelity_results")
    measurement["smoke"] = smoke
    measurement["workload_subset"] = subset

    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "sampling.json").write_text(
        json.dumps(measurement, indent=1, sort_keys=True) + "\n", encoding="utf-8"
    )

    parts = [
        render_accuracy_table(
            stratified_results,
            title=(
                f"Stratified sampling (budget={measurement['budget']}), "
                f"high-performance architecture, {NUM_THREADS} threads, "
                f"scale={scale}"
            ),
        ),
        "",
        format_table(
            ["mode", "avg err [%]", "median err [%]", "max err [%]",
             "detailed frac (sum)"],
            [
                ["stratified",
                 measurement["stratified_avg_error_percent"],
                 measurement["stratified_median_error_percent"],
                 measurement["stratified_max_error_percent"],
                 sum(r["stratified_detailed_fraction"]
                     for r in measurement["workloads"])],
                ["periodic",
                 measurement["periodic_avg_error_percent"],
                 measurement["periodic_median_error_percent"],
                 measurement["periodic_max_error_percent"],
                 sum(r["periodic_detailed_fraction"]
                     for r in measurement["workloads"])],
            ],
        ),
        f"detailed-budget ratio (stratified/periodic): "
        f"{measurement['detail_ratio']:.2f}",
        "",
        render_accuracy_table(
            fidelity_results,
            title=(
                f"Fidelity controller (error budget "
                f"{ACCEPTANCE_BUDGET:.0%}), high-performance architecture, "
                f"{NUM_THREADS} threads, scale={scale}"
            ),
        ),
        "",
        format_table(
            ["error budget [%]", "avg err [%]", "median err [%]",
             "max err [%]", "within budget", "detailed frac (sum)",
             "vs periodic"],
            [
                [point["error_budget"] * 100.0,
                 point["avg_error_percent"],
                 point["median_error_percent"],
                 point["max_error_percent"],
                 f"{point['within_budget_count']}/{point['workload_count']}",
                 point["detailed_fraction_sum"],
                 point["detail_ratio_vs_periodic"]]
                for point in measurement["fidelity"]["sweep"]
            ],
        ),
    ]
    text = "\n".join(parts)
    write_result("sampling", text)
    print(text)

    # Trajectory entries and the quality floor are defined over the full
    # workload set only; a --workloads subset run is for iteration.
    if os.environ.get("REPRO_BENCH_RECORD", "") not in ("", "0") and not subset:
        _record_trajectory(measurement)

    if not subset and not smoke:
        assert measurement["stratified_avg_error_percent"] < MAX_AVG_ERROR
        assert measurement["stratified_median_error_percent"] < MAX_MEDIAN_ERROR
        assert measurement["stratified_max_error_percent"] < MAX_MAX_ERROR
        assert measurement["detail_ratio"] <= MAX_DETAIL_RATIO, (
            f"stratified spent {measurement['detail_ratio']:.2f}x of periodic's "
            f"detailed budget (target <= {MAX_DETAIL_RATIO})"
        )
        assert measurement["ci_coverage"] >= MIN_CI_COVERAGE, (
            f"95% CI covered detailed on only "
            f"{measurement['ci_coverage']:.0%} of workloads "
            f"(target >= {MIN_CI_COVERAGE:.0%})"
        )
        acceptance = next(
            point for point in measurement["fidelity"]["sweep"]
            if point["error_budget"] == ACCEPTANCE_BUDGET
        )
        violators = (
            acceptance["workload_count"] - acceptance["within_budget_count"]
        )
        assert violators <= MAX_BUDGET_VIOLATORS, (
            f"fidelity at {ACCEPTANCE_BUDGET:.0%} budget exceeded it on "
            f"{violators} workloads (allowed {MAX_BUDGET_VIOLATORS})"
        )
        assert acceptance["detail_ratio_vs_periodic"] < 1.0, (
            f"fidelity at {ACCEPTANCE_BUDGET:.0%} budget spent "
            f"{acceptance['detail_ratio_vs_periodic']:.2f}x of periodic's "
            f"detailed budget (must stay below 1.0)"
        )
