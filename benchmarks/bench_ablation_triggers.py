"""Ablation — the value of TaskPoint's resampling triggers (extension).

The paper argues (Section III-C, Figure 4) that resampling must be triggered
when the number of executing threads changes and when a previously unseen
task type appears, because the samples taken earlier are no longer
representative.  This ablation quantifies that design choice on benchmarks
whose parallelism changes over time (reduction, cholesky) and compares three
controller variants:

* full TaskPoint (both triggers enabled, lazy policy),
* no thread-change trigger,
* no triggers at all except the unavoidable empty-history resample.

Expected shape: disabling the triggers increases speedup slightly but
increases the error on the phase-changing benchmarks.
"""

from __future__ import annotations

from dataclasses import replace

from common import HIGH_PERFORMANCE, bench_scale, write_result
from repro.analysis.accuracy import summarize
from repro.analysis.reporting import format_table
from repro.core.config import lazy_config

BENCHMARKS = ("reduction", "cholesky", "kmeans", "bodytrack")
NUM_THREADS = (8, 32)

VARIANTS = {
    "full taskpoint": lazy_config(),
    "no thread-change trigger": replace(lazy_config(), resample_on_thread_change=False),
    "no triggers": replace(
        lazy_config(),
        resample_on_thread_change=False,
        resample_on_new_task_type=False,
    ),
}


def _run(cache):
    rows = []
    summaries = {}
    for label, config in VARIANTS.items():
        results = cache.accuracy_grid(BENCHMARKS, HIGH_PERFORMANCE, NUM_THREADS, config)
        summary = summarize(results)
        summaries[label] = summary
        rows.append(
            [label, summary.average_error_percent, summary.max_error_percent,
             summary.average_speedup]
        )
    return rows, summaries


def test_ablation_resampling_triggers(benchmark, cache):
    """Quantify the contribution of the correctness resampling triggers."""
    rows, summaries = benchmark.pedantic(_run, args=(cache,), rounds=1, iterations=1)
    table = format_table(
        ["variant", "avg error [%]", "max error [%]", "avg speedup"], rows
    )
    text = (
        "Ablation: resampling triggers (lazy sampling, high-performance architecture, "
        f"benchmarks={', '.join(BENCHMARKS)}, scale={bench_scale()})\n"
        f"{table}"
    )
    write_result("ablation_triggers", text)
    print(text)
    # All variants must still complete with bounded error; the full mechanism
    # must never be less accurate than the trigger-free variant by more than
    # noise, and disabling triggers must not reduce speedup.
    full = summaries["full taskpoint"]
    bare = summaries["no triggers"]
    assert full.average_error_percent <= bare.average_error_percent + 1.0
    assert bare.average_speedup >= 0.9 * full.average_speedup
