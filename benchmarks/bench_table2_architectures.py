"""Table II — the simulated architecture configurations.

Regenerates the paper's Table II (architectural parameters of the
high-performance and low-power configurations) directly from the
configuration objects, and demonstrates that the two configurations behave
as expected (the low-power machine is substantially slower on the same
workload).
"""

from __future__ import annotations

from common import HIGH_PERFORMANCE, LOW_POWER, write_result
from repro.analysis.reporting import format_table


def _format_cache(level):
    if level is None:
        return "none"
    sharing = "shared" if level.shared else "private"
    size = level.size_bytes
    size_text = f"{size // 1024} kB" if size < 1024 * 1024 else f"{size // (1024 * 1024)} MB"
    return (
        f"{size_text} {sharing}, {level.latency_cycles} cycles latency, "
        f"{level.associativity}-way associative"
    )


def _build_table():
    rows = [
        ["Reorder-buffer size", HIGH_PERFORMANCE.core.rob_size, LOW_POWER.core.rob_size],
        ["Issue width", HIGH_PERFORMANCE.core.issue_width, LOW_POWER.core.issue_width],
        ["Commit rate", HIGH_PERFORMANCE.core.commit_width, LOW_POWER.core.commit_width],
        ["Cache line size", f"{HIGH_PERFORMANCE.l1.line_bytes} B", f"{LOW_POWER.l1.line_bytes} B"],
        ["L1 cache", _format_cache(HIGH_PERFORMANCE.l1), _format_cache(LOW_POWER.l1)],
        ["L2 cache", _format_cache(HIGH_PERFORMANCE.l2), _format_cache(LOW_POWER.l2)],
        ["L3 cache", _format_cache(HIGH_PERFORMANCE.l3), _format_cache(LOW_POWER.l3)],
    ]
    return format_table(["Parameter", "High-perf.", "Low-power"], rows)


def test_table2_architecture_parameters(benchmark, cache):
    """Regenerate Table II and sanity-check the relative performance."""
    table = benchmark.pedantic(_build_table, rounds=1, iterations=1)
    high = cache.detailed("vector-operation", HIGH_PERFORMANCE, 4)
    low = cache.detailed("vector-operation", LOW_POWER, 4)
    ratio = low.total_cycles / high.total_cycles
    text = (
        "Table II reproduction\n"
        f"{table}\n\n"
        "behavioural check (vector-operation, 4 threads):\n"
        f"  high-performance execution time : {high.total_cycles:,.0f} cycles\n"
        f"  low-power execution time        : {low.total_cycles:,.0f} cycles\n"
        f"  slowdown of low-power machine   : {ratio:.2f}x"
    )
    write_result("table2_architectures", text)
    print(text)
    assert HIGH_PERFORMANCE.core.rob_size == 168
    assert LOW_POWER.core.rob_size == 40
    assert ratio > 1.5
