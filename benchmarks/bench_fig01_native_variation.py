"""Figure 1 — IPC variation across task instances in native execution.

The paper runs the 19 benchmarks natively on an 8-core SandyBridge machine
and plots, per benchmark, a box plot of the IPC of every task instance
normalized to its task type's mean IPC.  The key observation: 15 of the 19
benchmarks stay within +/-5%.

Native hardware is not available here, so the native run is substituted by
the detailed simulator plus a calibrated system-noise model (see
``repro.analysis.native``); the regenerated figure reports the same box-plot
statistics per benchmark.
"""

from __future__ import annotations

from common import HIGH_PERFORMANCE, all_benchmark_names, bench_scale, bench_seed, write_result
from repro.analysis.native import NativeExecutionModel, native_execution
from repro.analysis.reporting import render_variation_report
from repro.analysis.variation import ipc_variation

NUM_THREADS = 8


def _run(cache):
    reports = {}
    for name in all_benchmark_names():
        trace = cache.trace(name)
        result = native_execution(
            trace,
            num_threads=NUM_THREADS,
            architecture=HIGH_PERFORMANCE,
            noise=NativeExecutionModel(seed=bench_seed()),
        )
        reports[name] = ipc_variation(result)
    return reports


def test_fig01_native_ipc_variation(benchmark, cache):
    """Regenerate Figure 1 (native-execution substitute, 8 threads)."""
    reports = benchmark.pedantic(_run, args=(cache,), rounds=1, iterations=1)
    text = render_variation_report(
        reports,
        title=(
            "Figure 1: IPC variation per task type, native-execution substitute, "
            f"{NUM_THREADS} threads, scale={bench_scale()}"
        ),
    )
    write_result("fig01_native_variation", text)
    print(text)
    within = sum(1 for report in reports.values() if report.within_5_percent)
    # Paper: 15 of 19 benchmarks within +/-5%; the reproduction should keep a
    # clear majority within and the known-irregular benchmarks outside.
    assert within >= 11
    assert not reports["freqmine"].within_5_percent
    assert not reports["checkSparseLU"].within_5_percent
