"""Figure 6 — sensitivity of error and speedup to the model parameters.

The paper determines W, H and P incrementally (Section V-A):

* Figure 6a: warm-up size W in 0..10 with H=10 and P=infinity,
* Figure 6b: history size H in 1..10 with W=2 and P=infinity,
* Figure 6c: sampling period P in 10..1000 with W=2 and H=4,

each averaged over the five sensitivity benchmarks and simulations with 32
and 64 threads.  The reproduction regenerates all three sweeps; the expected
shape is that error is high without warm-up and flattens out by W=2, that a
small history is sufficient (larger H mostly costs speedup), and that both
error and speedup grow with P until periodic sampling degenerates into lazy
sampling.
"""

from __future__ import annotations

from common import HIGH_PERFORMANCE, bench_scale, bench_seed, thread_counts, write_result
from repro.analysis.reporting import format_table
from repro.analysis.sweep import history_sweep, period_sweep, warmup_sweep
from repro.workloads.registry import SENSITIVITY_SUBSET

WARMUP_VALUES = (0, 1, 2, 4, 6, 8, 10)
HISTORY_VALUES = (1, 2, 3, 4, 6, 8, 10)
PERIOD_VALUES = (10, 25, 50, 100, 250, 500, 1000)


def _render(points, caption):
    rows = [
        [point.value, point.average_error_percent, point.average_speedup, point.experiments]
        for point in points
    ]
    table = format_table(
        [point.parameter if False else "value", "avg error [%]", "avg speedup", "experiments"],
        rows,
    )
    return f"{caption}\n{table}"


def _shared_kwargs(cache):
    return dict(
        benchmarks=tuple(SENSITIVITY_SUBSET),
        thread_counts=tuple(thread_counts("sweep")),
        architecture=HIGH_PERFORMANCE,
        scale=bench_scale(),
        seed=bench_seed(),
        backend=cache.backend,
        store=cache.store,
    )


def test_fig06a_warmup_sweep(benchmark, cache):
    """Figure 6a: error/speedup versus warm-up interval W (H=10, P=inf)."""
    points = benchmark.pedantic(
        warmup_sweep, kwargs=dict(warmup_values=WARMUP_VALUES, **_shared_kwargs(cache)),
        rounds=1, iterations=1,
    )
    text = _render(points, "Figure 6a: sensitivity to warm-up size W (H=10, P=inf)")
    write_result("fig06a_warmup_sweep", text)
    print(text)
    by_value = {point.value: point for point in points}
    # W=2 should already achieve a small error; more warm-up must not help
    # much but must cost speedup.
    assert by_value[2].average_error_percent < 5.0
    assert by_value[10].average_speedup <= by_value[0].average_speedup


def test_fig06b_history_sweep(benchmark, cache):
    """Figure 6b: error/speedup versus history size H (W=2, P=inf)."""
    points = benchmark.pedantic(
        history_sweep, kwargs=dict(history_values=HISTORY_VALUES, **_shared_kwargs(cache)),
        rounds=1, iterations=1,
    )
    text = _render(points, "Figure 6b: sensitivity to history size H (W=2, P=inf)")
    write_result("fig06b_history_sweep", text)
    print(text)
    by_value = {point.value: point for point in points}
    # A small history is sufficient (paper selects H=4) and larger histories
    # reduce speedup because more instances must be sampled.
    assert by_value[4].average_error_percent < 5.0
    assert by_value[10].average_speedup <= by_value[1].average_speedup


def test_fig06c_period_sweep(benchmark, cache):
    """Figure 6c: error/speedup versus sampling period P (W=2, H=4)."""
    points = benchmark.pedantic(
        period_sweep, kwargs=dict(period_values=PERIOD_VALUES, **_shared_kwargs(cache)),
        rounds=1, iterations=1,
    )
    text = _render(points, "Figure 6c: sensitivity to sampling period P (W=2, H=4)")
    write_result("fig06c_period_sweep", text)
    print(text)
    by_value = {point.value: point for point in points}
    # Speedup grows with the sampling period (more fast-forwarding); error
    # stays small across the whole range.
    assert by_value[1000].average_speedup >= by_value[10].average_speedup
    assert max(point.average_error_percent for point in points) < 8.0
