"""Headline summary — the numbers quoted in the abstract and conclusions.

The paper's headline: with 64 simulated threads, lazy sampling accelerates
architectural simulation by an average factor of 19.1 at an average error of
1.8% and a maximum error of 15.0%; with 1 thread the average speedup reaches
1019x.  This harness regenerates the corresponding aggregates from this
reproduction (at the reduced benchmark scale the absolute speedups are
smaller, but the ordering — highest speedup at 1 thread, lowest at the
largest thread count, error always small — must hold).
"""

from __future__ import annotations

from common import (
    HIGH_PERFORMANCE,
    all_benchmark_names,
    bench_scale,
    thread_counts,
    write_result,
)
from repro.analysis.accuracy import summarize
from repro.analysis.reporting import format_table
from repro.core.config import lazy_config


def _run(cache):
    counts = sorted(set([1] + list(thread_counts("highperf"))))
    summaries = {}
    for threads in counts:
        results = cache.accuracy_grid(
            all_benchmark_names(), HIGH_PERFORMANCE, [threads], lazy_config()
        )
        summaries[threads] = summarize(results)
    return summaries


def test_summary_headline_numbers(benchmark, cache):
    """Regenerate the abstract's headline error/speedup aggregates."""
    summaries = benchmark.pedantic(_run, args=(cache,), rounds=1, iterations=1)
    rows = [
        [threads, summary.average_error_percent, summary.max_error_percent,
         summary.average_speedup, summary.max_speedup]
        for threads, summary in summaries.items()
    ]
    table = format_table(
        ["threads", "avg error [%]", "max error [%]", "avg speedup", "max speedup"], rows
    )
    text = (
        "Headline summary (lazy sampling, high-performance architecture, "
        f"scale={bench_scale()})\n"
        f"{table}\n"
        "paper reference: 64 threads -> avg speedup 19.1 at avg error 1.8% "
        "(max 15.0%); 1 thread -> avg speedup 1019x"
    )
    write_result("summary_headline", text)
    print(text)

    counts = sorted(summaries)
    single_thread = summaries[counts[0]]
    most_threads = summaries[counts[-1]]
    # Error small everywhere (median tighter than average, the maximum
    # bounded by the known per-benchmark outliers); speedup strictly
    # decreasing from 1 thread to the largest thread count.
    assert all(summary.average_error_percent < 5.0 for summary in summaries.values())
    assert all(summary.median_error_percent < 3.0 for summary in summaries.values())
    assert all(summary.max_error_percent < 40.0 for summary in summaries.values())
    assert single_thread.average_speedup > most_threads.average_speedup
    assert single_thread.average_speedup > 20.0
