"""Setup shim for environments without the ``wheel`` package installed."""

from setuptools import setup

setup()
