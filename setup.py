"""Packaging for the TaskPoint reproduction.

``pip install -e .`` installs the ``repro`` package from ``src/`` and exposes
the ``repro`` console script (equivalent to ``python -m repro``).
"""

from setuptools import find_packages, setup

setup(
    name="taskpoint-repro",
    version="1.0.0",
    description=(
        "Reproduction of 'TaskPoint: Sampled simulation of task-based "
        "programs' (ISPASS 2016)"
    ),
    long_description=(
        "Trace-driven multi-core simulator with TaskPoint sampling, the "
        "paper's 19-benchmark evaluation, and a unified experiment "
        "orchestration layer (parallel execution backends and a persistent "
        "result store)."
    ),
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
    extras_require={
        "test": ["pytest", "hypothesis", "pytest-benchmark"],
    },
    entry_points={
        "console_scripts": [
            "repro = repro.cli:main",
        ],
    },
    classifiers=[
        "Programming Language :: Python :: 3",
        "License :: OSI Approved :: MIT License",
        "Topic :: System :: Emulators",
        "Intended Audience :: Science/Research",
    ],
)
