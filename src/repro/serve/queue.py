"""Multi-tenant fair-share job queue for the simulation service.

The dispatch slots of :class:`~repro.exp.distributed.AsyncWorkerBackend`
consume an ``asyncio.Queue`` surface — ``await get()``, ``get_nowait()``,
``put_nowait()``, ``qsize()`` — and PR 5's drain-cap batching is built on
exactly those calls.  :class:`FairShareQueue` implements that surface over a
*per-tenant* queue structure, so the whole dispatch substrate (batched
frames, per-spec acks, death requeues) runs unchanged while scheduling
becomes multi-tenant:

* **Weighted fair sharing between tenants** — virtual-time weighted fair
  queueing.  Every pop charges the chosen tenant ``1/weight`` of virtual
  time and the next pop goes to the eligible tenant with the least virtual
  time (ties broken by name, so scheduling is deterministic).  A tenant
  that was idle re-enters at the current global virtual time — it gets its
  fair share from now on, not a catch-up burst for the time it was absent.
* **Per-tenant in-flight caps** — a tenant at its cap is ineligible until a
  completion (:meth:`task_done`) frees a unit, bounding how much of the
  worker pool one tenant can occupy regardless of queue depths.
* **Starvation-free priority aging within a tenant** — each queued job is
  keyed by ``enqueue_tick - priority * aging_ticks``: higher priority wins
  now, but every pop ages the backlog, so a low-priority job's key is
  eventually the smallest no matter what keeps arriving above it.

Requeue safety
--------------
The dispatch slots requeue a dead worker's unacknowledged jobs with
``put_nowait`` — the same call that accepts fresh submissions.  The queue
tells the two apart by job identity: a requeued job re-enters its tenant's
heap with its *original* age key (it does not lose its place for having
been the victim), and its in-flight accounting is released.  A job
cancelled while it was in flight is **dropped** on requeue instead of
re-entering — this is what makes cancellation safe against the per-spec ack
protocol: acknowledged specs keep their results, unacknowledged cancelled
specs never run again.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
from typing import Callable, Dict, List, Optional, Set

from repro.exp.distributed import _Job
from repro.exp.spec import ExperimentSpec

#: Pops per priority step: a job of priority ``p`` sorts as if it had been
#: queued ``p * AGING_TICKS`` pops earlier.  Finite, so age always wins
#: eventually (starvation freedom); large enough that priority matters.
AGING_TICKS = 64


class ServiceJob(_Job):
    """A queue unit: one spec of one tenant's job, with scheduling state."""

    __slots__ = ("tenant", "priority", "age_key", "seq")

    def __init__(
        self,
        index: int,
        spec: ExperimentSpec,
        key: str,
        tenant: str,
        priority: int = 0,
    ) -> None:
        super().__init__(index, spec, key)
        self.tenant = tenant
        self.priority = priority
        self.age_key = 0.0  # assigned at first enqueue, stable across requeues
        self.seq = 0  # FIFO tie-break within equal age keys


class _TenantState:
    __slots__ = (
        "name", "weight", "cap", "heap", "in_flight",
        "vtime", "submitted", "served", "completed",
    )

    def __init__(self, name: str, weight: float, cap: Optional[int]) -> None:
        self.name = name
        self.weight = weight
        self.cap = cap
        self.heap: List["tuple[float, int, ServiceJob]"] = []
        self.in_flight = 0
        self.vtime = 0.0
        self.submitted = 0
        self.served = 0
        self.completed = 0

    def eligible(self) -> bool:
        if not self.heap:
            return False
        return self.cap is None or self.in_flight < self.cap


class FairShareQueue:
    """Weighted fair-share multi-tenant queue, asyncio.Queue-compatible.

    Parameters
    ----------
    default_weight:
        Fair-share weight of tenants not explicitly configured; a weight-2
        tenant receives twice the pops of a weight-1 tenant under backlog.
    default_cap:
        Per-tenant in-flight cap (``None`` = uncapped): a tenant with this
        many units dispatched-but-unfinished is passed over until
        :meth:`task_done` frees one.
    aging_ticks:
        Pops per priority step of the within-tenant aging key.
    on_drop:
        Called with each cancelled job that a dispatch slot tried to
        requeue (worker died before acknowledging it); the job does not
        re-enter the queue.
    """

    def __init__(
        self,
        *,
        default_weight: float = 1.0,
        default_cap: Optional[int] = None,
        aging_ticks: int = AGING_TICKS,
        on_drop: Optional[Callable[[ServiceJob], None]] = None,
    ) -> None:
        if default_weight <= 0:
            raise ValueError("default_weight must be positive")
        if default_cap is not None and default_cap < 1:
            raise ValueError("default_cap must be >= 1")
        if aging_ticks < 1:
            raise ValueError("aging_ticks must be >= 1")
        self.default_weight = default_weight
        self.default_cap = default_cap
        self.aging_ticks = aging_ticks
        self.on_drop = on_drop
        self._tenants: Dict[str, _TenantState] = {}
        self._virtual = 0.0  # global virtual time (max charged so far)
        self._pops = 0  # age clock: total pops ever
        self._seq = itertools.count()  # FIFO tie-break counter
        self._in_flight: Set[int] = set()  # job indices popped, unfinished
        self._cancelled: Set[int] = set()  # cancelled while in flight
        self.dropped = 0  # cancelled jobs dropped at requeue
        #: Lazily created so the queue may be built outside a running loop
        #: (Python 3.9 binds an Event to the loop at construction).
        self._wakeup: Optional[asyncio.Event] = None

    # ------------------------------------------------------------------
    def configure_tenant(
        self,
        name: str,
        *,
        weight: Optional[float] = None,
        cap: Optional[int] = None,
    ) -> None:
        """Set a tenant's fair-share weight and/or in-flight cap."""
        if weight is not None and weight <= 0:
            raise ValueError("tenant weight must be positive")
        if cap is not None and cap < 1:
            raise ValueError("tenant cap must be >= 1")
        state = self._tenant(name)
        if weight is not None:
            state.weight = weight
        if cap is not None:
            state.cap = cap
        self._wake()

    def _tenant(self, name: str) -> _TenantState:
        state = self._tenants.get(name)
        if state is None:
            state = _TenantState(name, self.default_weight, self.default_cap)
            self._tenants[name] = state
        return state

    def _wake(self) -> None:
        if self._wakeup is not None:
            self._wakeup.set()

    # ------------------------------------------------------------------
    def submit(self, job: ServiceJob) -> None:
        """Enqueue a fresh job unit under its tenant."""
        state = self._tenant(job.tenant)
        # An idle tenant re-enters at the current virtual time: fair share
        # from now on, no catch-up burst for the time it was absent.
        if not state.heap and state.in_flight == 0:
            state.vtime = max(state.vtime, self._virtual)
        job.age_key = float(self._pops - job.priority * self.aging_ticks)
        job.seq = next(self._seq)
        heapq.heappush(state.heap, (job.age_key, job.seq, job))
        state.submitted += 1
        self._wake()

    def put_nowait(self, job: ServiceJob) -> None:
        """Accept a job from a dispatch slot (requeue after a worker death).

        Requeued jobs keep their original age key — a death victim does not
        lose its place in line — and a job cancelled while in flight is
        dropped (``on_drop``) instead of re-entering: its spec was never
        acknowledged, and cancelled specs must never run again.
        """
        if job.index in self._in_flight:
            self._release(job)
        if job.index in self._cancelled:
            self._cancelled.discard(job.index)
            self.dropped += 1
            if self.on_drop is not None:
                self.on_drop(job)
            self._wake()  # cap headroom may have freed a waiting getter
            return
        state = self._tenant(job.tenant)
        heapq.heappush(state.heap, (job.age_key, job.seq, job))
        self._wake()

    def _release(self, job: ServiceJob) -> None:
        self._in_flight.discard(job.index)
        state = self._tenants.get(job.tenant)
        if state is not None and state.in_flight > 0:
            state.in_flight -= 1

    def task_done(self, job: ServiceJob) -> None:
        """Mark a popped job finished, freeing its tenant's cap headroom."""
        if job.index in self._in_flight:
            self._release(job)
            self._tenant(job.tenant).completed += 1
        self._cancelled.discard(job.index)
        self._wake()

    # ------------------------------------------------------------------
    def get_nowait(self) -> ServiceJob:
        """Pop the next job under fair sharing; raises ``QueueEmpty``."""
        best: Optional[_TenantState] = None
        for state in self._tenants.values():
            if not state.eligible():
                continue
            if best is None or (state.vtime, state.name) < (best.vtime, best.name):
                best = state
        if best is None:
            raise asyncio.QueueEmpty
        _, _, job = heapq.heappop(best.heap)
        best.vtime += 1.0 / best.weight
        self._virtual = max(self._virtual, best.vtime)
        best.in_flight += 1
        best.served += 1
        self._pops += 1
        self._in_flight.add(job.index)
        return job

    async def get(self) -> ServiceJob:
        """Await the next job under fair sharing."""
        while True:
            try:
                return self.get_nowait()
            except asyncio.QueueEmpty:
                pass
            if self._wakeup is None:
                self._wakeup = asyncio.Event()
            self._wakeup.clear()
            await self._wakeup.wait()

    def qsize(self) -> int:
        """Total queued (not in-flight) units across all tenants."""
        return sum(len(state.heap) for state in self._tenants.values())

    def empty(self) -> bool:
        return self.qsize() == 0

    # ------------------------------------------------------------------
    def cancel(self, indices: Set[int]) -> List[ServiceJob]:
        """Cancel job units by index; returns the queued units removed.

        Queued units are removed immediately (and returned so the caller
        can finalise them); in-flight units are marked so that a requeue
        after a worker death drops them instead of re-running them.  Units
        that already finished are unaffected.
        """
        removed: List[ServiceJob] = []
        for state in self._tenants.values():
            keep = []
            for entry in state.heap:
                if entry[2].index in indices:
                    removed.append(entry[2])
                else:
                    keep.append(entry)
            if len(keep) != len(state.heap):
                state.heap = keep
                heapq.heapify(state.heap)
        for index in indices:
            if index in self._in_flight:
                self._cancelled.add(index)
        self._wake()
        return removed

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """JSON-friendly queue snapshot for the ``stats`` frame."""
        return {
            "queued": self.qsize(),
            "in_flight": len(self._in_flight),
            "pops": self._pops,
            "dropped_cancelled": self.dropped,
            "tenants": {
                state.name: {
                    "queued": len(state.heap),
                    "in_flight": state.in_flight,
                    "weight": state.weight,
                    "cap": state.cap,
                    "submitted": state.submitted,
                    "served": state.served,
                    "completed": state.completed,
                }
                for state in sorted(self._tenants.values(), key=lambda s: s.name)
            },
        }
