"""Simulation-as-a-service: persistent daemon, fair-share queue, client.

The one-shot orchestration of :mod:`repro.exp` (``repro grid`` and
friends) builds a backend, drains a spec list and exits.  This package
keeps the pool alive instead::

    repro serve --listen 127.0.0.1:7070 --workers 4 --cache-dir /shared/cache
    repro submit --connect 127.0.0.1:7070 --benchmarks swaptions --threads 2,4
    repro watch <job> --connect 127.0.0.1:7070

* :class:`~repro.serve.daemon.SimulationService` — the daemon: accepts
  protocol-v4 ``submit``/``status``/``watch``/``cancel``/``stats`` frames,
  journals jobs for crash recovery, deduplicates specs against the store
  and across in-flight jobs, and reports queue/store/dispatch statistics.
* :class:`~repro.serve.queue.FairShareQueue` — multi-tenant scheduling
  (weighted fair queueing, per-tenant in-flight caps, starvation-free
  priority aging) behind the exact ``asyncio.Queue`` surface the dispatch
  slots of :mod:`repro.exp.distributed` already consume.
* :class:`~repro.serve.client.ServiceClient` — blocking client library;
  one connection per call, so watchers can drop and re-attach freely.
"""

from repro.serve.client import ServiceClient, ServiceError
from repro.serve.daemon import (
    JobRecord,
    SimulationService,
    job_id_for,
    results_digest,
    store_digest,
)
from repro.serve.queue import AGING_TICKS, FairShareQueue, ServiceJob

__all__ = [
    "AGING_TICKS",
    "FairShareQueue",
    "JobRecord",
    "ServiceClient",
    "ServiceError",
    "ServiceJob",
    "SimulationService",
    "job_id_for",
    "results_digest",
    "store_digest",
]
