"""Synchronous client for the simulation service daemon.

:class:`ServiceClient` speaks the protocol-v4 service frames over a plain
TCP socket using the blocking :func:`repro.exp.protocol.read_frame` /
:func:`~repro.exp.protocol.write_frame` — the same wire format the workers
use, so there is nothing new to parse.  Each call opens its own
connection: the daemon is the stateful side (jobs live in its records and
journal), which is what lets a client disconnect mid-``watch`` and
re-attach later without disturbing the job.
"""

from __future__ import annotations

import socket
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.exp import protocol
from repro.exp.spec import ExperimentSpec


class ServiceError(RuntimeError):
    """The daemon answered with an ``error_reply`` frame."""


class ServiceClient:
    """Blocking client of one ``repro serve`` daemon.

    Parameters
    ----------
    host / port:
        Daemon address (the ``--listen`` of ``repro serve``).
    timeout:
        Socket timeout per connection, in seconds.  ``watch`` applies it
        per frame, so a long job does not need a long timeout — but the
        gap between two unit completions must stay below it.
    """

    def __init__(self, host: str, port: int, *, timeout: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------
    def _connect(self) -> socket.socket:
        return socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )

    def _roundtrip(self, message: Dict[str, object]) -> Dict[str, object]:
        """One request frame, one reply frame, on a fresh connection."""
        with self._connect() as sock:
            with sock.makefile("rwb") as stream:
                protocol.write_frame(stream, message)
                reply = protocol.read_frame(stream)
        if reply is None:
            raise ServiceError("daemon closed the connection without a reply")
        if reply.get("type") == "error_reply":
            raise ServiceError(str(reply.get("error")))
        return reply

    # ------------------------------------------------------------------
    def submit(
        self,
        specs: Sequence[Union[ExperimentSpec, Dict[str, object]]],
        *,
        tenant: str = "default",
        priority: int = 0,
    ) -> Dict[str, object]:
        """Submit a job; returns the ``submitted`` frame (incl. ``job`` id)."""
        encoded = [
            spec.to_dict() if isinstance(spec, ExperimentSpec) else spec
            for spec in specs
        ]
        return self._roundtrip({
            "type": "submit",
            "tenant": tenant,
            "specs": encoded,
            "priority": priority,
        })

    def status(self, job_id: Optional[str] = None) -> Dict[str, object]:
        """One job's ``job_status`` frame, or ``service_status`` for all."""
        message: Dict[str, object] = {"type": "status"}
        if job_id is not None:
            message["job"] = job_id
        return self._roundtrip(message)

    def cancel(self, job_id: str) -> Dict[str, object]:
        """Cancel a job's pending specs; returns the ``cancel_ack`` frame."""
        return self._roundtrip({"type": "cancel", "job": job_id})

    def stats(self) -> Dict[str, object]:
        """The daemon's ``stats_report`` frame."""
        return self._roundtrip({"type": "stats"})

    def stop(self) -> Dict[str, object]:
        """Ask the daemon to shut down (journalled jobs persist)."""
        return self._roundtrip({"type": "stop"})

    # ------------------------------------------------------------------
    def watch(
        self,
        job_id: str,
        *,
        on_update: Optional[Callable[[Dict[str, object]], None]] = None,
    ) -> Dict[str, object]:
        """Stream a job's progress until it finishes; returns ``job_done``.

        ``on_update`` receives every intermediate frame (the initial
        ``job_status`` snapshot and each ``job_update``).  The daemon keeps
        the job running if this connection drops — call :meth:`watch` again
        to re-attach.
        """
        with self._connect() as sock:
            with sock.makefile("rwb") as stream:
                protocol.write_frame(stream, {"type": "watch", "job": job_id})
                while True:
                    frame = protocol.read_frame(stream)
                    if frame is None:
                        raise ServiceError(
                            "daemon closed the watch stream before job_done"
                        )
                    kind = frame.get("type")
                    if kind == "error_reply":
                        raise ServiceError(str(frame.get("error")))
                    if kind == "job_done":
                        return frame
                    if on_update is not None:
                        on_update(frame)

    def wait(self, job_id: str) -> Dict[str, object]:
        """Watch ``job_id`` to completion, re-attaching on dropped streams."""
        while True:
            try:
                return self.watch(job_id)
            except (ConnectionError, socket.timeout):
                continue

    def results(self, job_id: str) -> List[Dict[str, object]]:
        """Convenience: the ``results`` list of the finished job."""
        return list(self.wait(job_id)["results"])
