"""The persistent simulation service daemon.

:class:`SimulationService` owns a long-lived worker pool
(:class:`~repro.exp.distributed.AsyncWorkerBackend` or
:class:`~repro.exp.hosts.MultiHostBackend` in service mode) and accepts
client connections over the protocol-v4 service frames of
:mod:`repro.exp.protocol` (``submit`` / ``status`` / ``watch`` / ``cancel``
/ ``stats``).  A *job* is a batch of :class:`~repro.exp.spec.ExperimentSpec`
submitted under a tenant id; its specs become units of the
:class:`~repro.serve.queue.FairShareQueue`, which the backend's unmodified
dispatch slots drain — batching, per-spec acks and death requeues all work
exactly as in one-shot runs.

Durability and exactly-once results
-----------------------------------
The daemon is a thin, crash-safe layer over the content-addressed
:class:`~repro.exp.store.ResultStore`:

* **Write-ahead results.**  ``finish`` persists each outcome to the store
  *before* any daemon bookkeeping.  A crash at any point therefore loses at
  most work, never results: everything acknowledged by a worker and
  persisted survives, and nothing is ever recorded as done without its
  store entry existing.
* **Job journal.**  Each submitted job is journalled (atomically) under
  ``<cache>/.serve/jobs/<job_id>.json`` and rewritten with its terminal
  state on completion.  On start the daemon re-submits every journalled
  *active* job: specs whose results are already in the store resolve as
  instant cache hits (zero executions — the per-spec acks made them
  durable), and only genuinely unfinished specs re-enter the queue.
* **Deduplication.**  Within a job, specs are deduplicated by content key;
  across jobs, a spec already queued or running is not enqueued again —
  late submitters just subscribe to the in-flight key.  Identical active
  (tenant, spec-set) submissions re-attach to the same job id.
* **Pinning.**  Keys of in-flight jobs are pinned in the store, so LRU
  compaction under a byte budget can never evict a result between its
  write and the moment its job's watcher reads it.

Cancellation cancels a job's *pending* units: queued units are removed
immediately, running units are detached (their result is still persisted —
the ack protocol means they were executing and will be a warm hit for any
future submission) and a cancelled unit requeued by a worker death is
dropped by the queue, never re-executed.
"""

from __future__ import annotations

import asyncio
import contextlib
import hashlib
import json
import os
import sys
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exp import protocol
from repro.exp.backends import Outcome
from repro.exp.spec import ExperimentFailure, ExperimentSpec
from repro.exp.store import ResultStore, _normalised_payload
from repro.serve.queue import FairShareQueue, ServiceJob

#: Unit states.  ``pending`` covers queued and running (the queue owns that
#: distinction); the rest are terminal.
PENDING = "pending"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"


def job_id_for(tenant: str, keys: Sequence[str]) -> str:
    """Deterministic job id of a (tenant, spec-set) submission.

    Sorted and deduplicated, so the same logical batch always maps to the
    same id — which is what makes re-submission attach instead of fork.
    """
    digest = hashlib.sha256()
    digest.update(tenant.encode("utf-8"))
    for key in sorted(set(keys)):
        digest.update(b"\0")
        digest.update(key.encode("utf-8"))
    return digest.hexdigest()[:16]


def results_digest(payload_by_key: Dict[str, bytes]) -> str:
    """SHA-256 over sorted normalised result payloads.

    The payloads are exactly the bytes the store persists, so this digest is
    byte-comparable with :func:`store_digest` computed over a serial run's
    cache directory.
    """
    digest = hashlib.sha256()
    for key in sorted(payload_by_key):
        digest.update(key.encode("utf-8"))
        digest.update(b"\0")
        digest.update(hashlib.sha256(payload_by_key[key]).digest())
        digest.update(b"\n")
    return digest.hexdigest()


def store_digest(directory, keys: Optional[Sequence[str]] = None) -> str:
    """Digest of an on-disk store's result entries (see :func:`results_digest`).

    With ``keys`` the digest covers only those content keys, so a service
    job's digest can be checked against a store that also holds other runs.
    """
    store = ResultStore(directory)
    wanted = set(keys) if keys is not None else None
    payloads: Dict[str, bytes] = {}
    for path in store._entry_files():
        key = path.name[: -len(".json")]
        if wanted is not None and key not in wanted:
            continue
        payloads[key] = path.read_bytes()
    return results_digest(payloads)


class JobRecord:
    """Daemon-side state of one submitted job."""

    def __init__(
        self,
        job_id: str,
        tenant: str,
        specs: List[ExperimentSpec],
        keys: List[str],
        priority: int,
        created: float,
    ) -> None:
        self.job_id = job_id
        self.tenant = tenant
        self.specs = specs
        self.keys = keys
        self.priority = priority
        self.created = created
        self.unit_state: List[str] = [PENDING] * len(specs)
        self.outcomes: List[Optional[Outcome]] = [None] * len(specs)
        self.cached: List[bool] = [False] * len(specs)
        self.subscribers: List["asyncio.Queue"] = []
        self.finished = False
        self.done_event = asyncio.Event()

    @property
    def status(self) -> str:
        if not self.finished:
            return "active"
        if any(state == CANCELLED for state in self.unit_state):
            return "cancelled"
        if any(state == FAILED for state in self.unit_state):
            return "failed"
        return "done"

    def counts(self) -> Dict[str, int]:
        counts = {PENDING: 0, DONE: 0, FAILED: 0, CANCELLED: 0}
        for state in self.unit_state:
            counts[state] += 1
        return counts

    def snapshot(self) -> Dict[str, object]:
        return {
            "type": "job_status",
            "job": self.job_id,
            "tenant": self.tenant,
            "priority": self.priority,
            "status": self.status,
            "total": len(self.specs),
            "counts": self.counts(),
            "cached": sum(self.cached),
            "finished": self.finished,
        }

    def push_update(self, update: Optional[Dict[str, object]]) -> None:
        for subscriber in self.subscribers:
            subscriber.put_nowait(update)

    def digest(self) -> str:
        payloads = {
            key: _normalised_payload(spec, outcome).encode("utf-8")
            for key, spec, state, outcome in zip(
                self.keys, self.specs, self.unit_state, self.outcomes
            )
            if state == DONE and outcome is not None
            and not isinstance(outcome, ExperimentFailure)
        }
        return results_digest(payloads)

    def done_frame(self) -> Dict[str, object]:
        results = []
        failures = []
        for pos, (key, state) in enumerate(zip(self.keys, self.unit_state)):
            outcome = self.outcomes[pos]
            entry: Dict[str, object] = {
                "unit": pos,
                "key": key,
                "state": state,
                "cached": self.cached[pos],
            }
            if state == FAILED and isinstance(outcome, ExperimentFailure):
                entry["error"] = outcome.to_dict()
                failures.append(entry)
            else:
                if state == DONE and outcome is not None:
                    entry["result"] = outcome.to_dict()
                results.append(entry)
        return {
            "type": "job_done",
            "job": self.job_id,
            "status": self.status,
            "digest": self.digest(),
            "results": results,
            "failures": failures,
        }


class SimulationService:
    """Persistent daemon serving simulation jobs over protocol-v4 frames.

    Parameters
    ----------
    backend:
        An :class:`AsyncWorkerBackend` (or subclass) constructed *without*
        a store — the daemon owns all store writes so the write-ahead
        ordering holds.
    store:
        Result store for write-ahead persistence, warm serving and restart
        recovery.  Without one the daemon still works but recovers nothing
        across restarts.
    default_cap / default_weight:
        Fair-share defaults for tenants not configured via
        :meth:`configure_tenant`.
    journal:
        Whether to journal jobs for restart recovery (needs a store).
    """

    def __init__(
        self,
        backend,
        *,
        store: Optional[ResultStore] = None,
        default_weight: float = 1.0,
        default_cap: Optional[int] = None,
        journal: bool = True,
    ) -> None:
        if getattr(backend, "store", None) is not None:
            raise ValueError(
                "service backend must not own a store; "
                "the daemon performs all store writes"
            )
        self.backend = backend
        self.store = store
        self.journal = journal and store is not None
        self.queue = FairShareQueue(
            default_weight=default_weight,
            default_cap=default_cap,
            on_drop=self._on_drop,
        )
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self._server: Optional["asyncio.AbstractServer"] = None
        self._records: Dict[str, JobRecord] = {}
        #: key -> (record, unit position) subscriptions of in-flight keys.
        self._waiters: Dict[str, List[Tuple[JobRecord, int]]] = {}
        #: key -> the queue unit currently owned by the queue (or a worker).
        self._units: Dict[str, ServiceJob] = {}
        self._unit_counter = 0
        self._completions = 0
        self._recovered_jobs = 0
        self._started_at: Optional[float] = None
        self._closing: Optional[asyncio.Event] = None

    # ------------------------------------------------------------------
    def configure_tenant(self, name, *, weight=None, cap=None) -> None:
        """Set a tenant's fair-share weight and/or in-flight cap."""
        self.queue.configure_tenant(name, weight=weight, cap=cap)

    # ------------------------------------------------------------------
    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Recover journalled jobs, start the pool and bind the listener."""
        loop = asyncio.get_running_loop()
        self._started_at = loop.time()
        self._closing = asyncio.Event()
        await self.backend.start_service(self.queue, self._finish)
        self._recover()
        self._server = await asyncio.start_server(self._handle_client, host, port)
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]

    async def serve_until_stopped(self) -> None:
        """Block until a ``stop`` frame (or :meth:`request_stop`), then stop."""
        assert self._closing is not None, "start() first"
        await self._closing.wait()
        await self.stop()

    def request_stop(self) -> None:
        """Ask :meth:`serve_until_stopped` to wind the daemon down."""
        if self._closing is not None:
            self._closing.set()

    async def stop(self) -> None:
        """Close the listener and stop the pool (journalled work persists)."""
        if self._server is not None:
            self._server.close()
            try:
                await self._server.wait_closed()
            except (RuntimeError, ConnectionError):  # pragma: no cover
                pass
            self._server = None
        await self.backend.stop_service()

    # ------------------------------------------------------------------
    # Journal
    # ------------------------------------------------------------------
    def _journal_dir(self) -> Optional[Path]:
        if not self.journal or self.store is None:
            return None
        return Path(self.store.directory) / ".serve" / "jobs"

    def _journal_write(self, record: JobRecord) -> None:
        directory = self._journal_dir()
        if directory is None:
            return
        directory.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(
            {
                "job": record.job_id,
                "tenant": record.tenant,
                "priority": record.priority,
                "state": record.status,
                "specs": [spec.to_dict() for spec in record.specs],
            },
            sort_keys=True,
        )
        path = directory / f"{record.job_id}.json"
        fd, tmp_name = tempfile.mkstemp(dir=directory, prefix=".tmp-")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
            os.replace(tmp_name, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp_name)
            raise

    def _recover(self) -> None:
        """Re-submit every journalled active job (warm keys resolve instantly)."""
        directory = self._journal_dir()
        if directory is None or not directory.is_dir():
            return
        for path in sorted(directory.glob("*.json")):
            if path.name.startswith("."):
                continue
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
                if payload.get("state") != "active":
                    continue
                specs = [
                    ExperimentSpec.from_dict(entry)
                    for entry in payload["specs"]
                ]
                self.submit(
                    tenant=str(payload["tenant"]),
                    specs=specs,
                    priority=int(payload.get("priority", 0)),
                )
                self._recovered_jobs += 1
            except (ValueError, KeyError, TypeError) as exc:
                print(
                    f"repro.serve: unreadable journal entry {path.name}: {exc}",
                    file=sys.stderr,
                )

    # ------------------------------------------------------------------
    # Job lifecycle
    # ------------------------------------------------------------------
    def submit(
        self,
        tenant: str,
        specs: Sequence[ExperimentSpec],
        priority: int = 0,
    ) -> Tuple[JobRecord, bool]:
        """Register a job; returns ``(record, attached)``.

        ``attached`` is True when an identical (tenant, spec-set) job is
        already known — the caller re-attached instead of duplicating work.
        """
        if not specs:
            raise ValueError("a job needs at least one spec")
        unique_specs: List[ExperimentSpec] = []
        keys: List[str] = []
        seen = set()
        for spec in specs:
            key = spec.content_key()
            if key in seen:
                continue
            seen.add(key)
            unique_specs.append(spec)
            keys.append(key)
        job_id = job_id_for(tenant, keys)
        existing = self._records.get(job_id)
        if existing is not None:
            return existing, True
        loop = asyncio.get_running_loop()
        record = JobRecord(job_id, tenant, unique_specs, keys, priority, loop.time())
        self._records[job_id] = record
        self._journal_write(record)
        for pos, (spec, key) in enumerate(zip(unique_specs, keys)):
            cached = self.store.get(spec) if self.store is not None else None
            if cached is not None:
                self._finalize_unit(record, pos, DONE, cached, cached_hit=True)
                continue
            if self.store is not None:
                self.store.pin(key)
            self._waiters.setdefault(key, []).append((record, pos))
            if key not in self._units:
                unit = ServiceJob(
                    self._unit_counter, spec, key, tenant, priority
                )
                self._unit_counter += 1
                self._units[key] = unit
                self.queue.submit(unit)
        self._maybe_finalize_record(record)
        return record, False

    def cancel(self, job_id: str) -> Optional[int]:
        """Cancel a job's pending units; returns how many, ``None`` if unknown.

        Queued units leave the queue now; units being executed are detached
        (their results still land in the store as warm entries) and are
        dropped if a worker death tries to requeue them.  Units whose key
        another job also waits on keep running for that job.
        """
        record = self._records.get(job_id)
        if record is None:
            return None
        to_cancel = set()
        cancelled_units = 0
        for pos, state in enumerate(record.unit_state):
            if state != PENDING:
                continue
            key = record.keys[pos]
            waiters = [
                entry for entry in self._waiters.get(key, [])
                if entry[0] is not record
            ]
            if waiters:
                self._waiters[key] = waiters
            else:
                self._waiters.pop(key, None)
                unit = self._units.get(key)
                if unit is not None:
                    to_cancel.add(unit.index)
            if self.store is not None:
                self.store.unpin(key)
            self._finalize_unit(record, pos, CANCELLED, None)
            cancelled_units += 1
        for unit in self.queue.cancel(to_cancel):
            self._units.pop(unit.key, None)
        # In-flight cancelled units stay in self._units until their outcome
        # or their post-death drop arrives; both paths clean the entry up.
        return cancelled_units

    def _on_drop(self, job: ServiceJob) -> None:
        """A cancelled in-flight unit was requeued by a worker death."""
        self._units.pop(job.key, None)

    def _finish(self, job: ServiceJob, outcome: Outcome) -> None:
        """Backend completion callback: persist first, then bookkeep.

        The store write precedes every piece of daemon state — journal,
        record, queue accounting — so a crash between any two steps is
        recovered by the journal replaying the job against a store that
        already holds the result.
        """
        loop = asyncio.get_running_loop()
        if self.store is not None:
            write_started = loop.time()
            try:
                if isinstance(outcome, ExperimentFailure):
                    self.store.record_failure(job.spec, outcome)
                else:
                    self.store.put_if_absent(job.spec, outcome)
            except Exception as exc:
                print(f"repro.serve: store write failed: {exc}", file=sys.stderr)
            self.backend.absolve_stall(write_started, loop.time())
        self.queue.task_done(job)
        self._units.pop(job.key, None)
        state = FAILED if isinstance(outcome, ExperimentFailure) else DONE
        for record, pos in self._waiters.pop(job.key, []):
            if self.store is not None:
                self.store.unpin(job.key)
            self._finalize_unit(record, pos, state, outcome)

    def _finalize_unit(
        self,
        record: JobRecord,
        pos: int,
        state: str,
        outcome: Optional[Outcome],
        cached_hit: bool = False,
    ) -> None:
        if record.unit_state[pos] != PENDING:
            return  # exactly-once: late duplicates are ignored
        record.unit_state[pos] = state
        record.outcomes[pos] = outcome
        record.cached[pos] = cached_hit
        self._completions += 1
        record.push_update({
            "type": "job_update",
            "job": record.job_id,
            "seq": self._completions,
            "unit": pos,
            "key": record.keys[pos],
            "state": state,
            "cached": cached_hit,
        })
        self._maybe_finalize_record(record)

    def _maybe_finalize_record(self, record: JobRecord) -> None:
        if record.finished or any(s == PENDING for s in record.unit_state):
            return
        record.finished = True
        self._journal_write(record)
        record.push_update(None)  # done marker for watchers
        record.done_event.set()

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        loop = asyncio.get_running_loop()
        by_status: Dict[str, int] = {}
        for record in self._records.values():
            by_status[record.status] = by_status.get(record.status, 0) + 1
        report: Dict[str, object] = {
            "type": "stats_report",
            "protocol": protocol.PROTOCOL_VERSION,
            "uptime_seconds": (
                loop.time() - self._started_at if self._started_at else 0.0
            ),
            "jobs": {"total": len(self._records), **by_status},
            "recovered_jobs": self._recovered_jobs,
            "completions": self._completions,
            "queue": self.queue.stats(),
            "store": self.store.stats() if self.store is not None else None,
            "dispatch": self.backend.dispatch_snapshot(),
        }
        host_snapshot = getattr(self.backend, "host_snapshot", None)
        if host_snapshot is not None:
            report["hosts"] = host_snapshot()
        return report

    # ------------------------------------------------------------------
    # Client connections
    # ------------------------------------------------------------------
    async def _send(self, writer: "asyncio.StreamWriter", message) -> None:
        writer.write(protocol.encode_frame(message))
        await writer.drain()

    async def _handle_client(
        self,
        reader: "asyncio.StreamReader",
        writer: "asyncio.StreamWriter",
    ) -> None:
        try:
            while True:
                try:
                    message = await protocol.read_frame_async(reader)
                except (asyncio.IncompleteReadError, ConnectionResetError, OSError):
                    return
                except protocol.ProtocolError as exc:
                    with contextlib.suppress(Exception):
                        await self._send(
                            writer, {"type": "error_reply", "error": str(exc)}
                        )
                    return
                try:
                    await self._handle_frame(message, writer)
                except (ConnectionResetError, BrokenPipeError, OSError):
                    return  # client went away; the daemon and its jobs stay
        finally:
            with contextlib.suppress(Exception):
                writer.close()

    async def _handle_frame(self, message, writer) -> None:
        kind = message.get("type")
        if kind == "submit":
            await self._handle_submit(message, writer)
        elif kind == "status":
            job_id = message.get("job")
            if job_id is None:
                await self._send(writer, {
                    "type": "service_status",
                    "jobs": [
                        record.snapshot()
                        for record in self._records.values()
                    ],
                })
            else:
                record = self._records.get(job_id)
                if record is None:
                    await self._send(writer, {
                        "type": "error_reply",
                        "error": f"unknown job {job_id!r}",
                    })
                else:
                    await self._send(writer, record.snapshot())
        elif kind == "watch":
            await self._handle_watch(message, writer)
        elif kind == "cancel":
            job_id = message.get("job")
            cancelled = self.cancel(job_id) if job_id else None
            if cancelled is None:
                await self._send(writer, {
                    "type": "error_reply",
                    "error": f"unknown job {job_id!r}",
                })
            else:
                await self._send(writer, {
                    "type": "cancel_ack",
                    "job": job_id,
                    "cancelled": cancelled,
                })
        elif kind == "stats":
            await self._send(writer, self.stats())
        elif kind == "stop":
            await self._send(writer, {"type": "stopping"})
            self.request_stop()
        else:
            await self._send(writer, {
                "type": "error_reply",
                "error": f"unknown frame type {kind!r}",
            })

    async def _handle_submit(self, message, writer) -> None:
        try:
            tenant = str(message["tenant"])
            raw_specs = message["specs"]
            if not isinstance(raw_specs, list) or not raw_specs:
                raise ValueError("specs must be a non-empty list")
            specs = [ExperimentSpec.from_dict(entry) for entry in raw_specs]
            priority = int(message.get("priority", 0))
        except (KeyError, TypeError, ValueError) as exc:
            await self._send(writer, {
                "type": "error_reply",
                "error": f"bad submit frame: {exc}",
            })
            return
        record, attached = self.submit(tenant, specs, priority=priority)
        await self._send(writer, {
            "type": "submitted",
            "job": record.job_id,
            "total": len(record.specs),
            "cached": sum(record.cached),
            "attached": attached,
        })

    async def _handle_watch(self, message, writer) -> None:
        record = self._records.get(message.get("job"))
        if record is None:
            await self._send(writer, {
                "type": "error_reply",
                "error": f"unknown job {message.get('job')!r}",
            })
            return
        subscriber: "asyncio.Queue" = asyncio.Queue()
        record.subscribers.append(subscriber)
        try:
            await self._send(writer, record.snapshot())
            if record.finished:
                await self._send(writer, record.done_frame())
                return
            while True:
                update = await subscriber.get()
                if update is None:
                    await self._send(writer, record.done_frame())
                    return
                await self._send(writer, update)
        finally:
            # Client gone or job done: either way the job itself runs on,
            # and a later watch re-attaches via the record.
            if subscriber in record.subscribers:
                record.subscribers.remove(subscriber)
