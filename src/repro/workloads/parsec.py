"""The six task-based PARSEC benchmarks of Table I.

blackscholes, bodytrack, canneal, dedup, freqmine and swaptions are the
benchmarks the paper takes from the task-based PARSEC port.  Two of them are
the stress cases of the whole evaluation and are modelled accordingly:

* **freqmine** — one of its seven task types accounts for ~93% of the dynamic
  instructions and its instances span a huge size range (490 to 11,000,000
  instructions in the paper) because of control-flow divergence inside the
  task body.  The generator reproduces the dominant type with a heavy-tailed
  size distribution and an input-dependent memory intensity, which is what
  makes it the benchmark with the largest sampling error.
* **dedup** — its dominant task type performs de-duplication plus
  compression, whose work is strongly input dependent (3.5M to 25.1M
  instructions in the paper).  The generator gives that type a wide size and
  memory-intensity distribution and a pipeline dependency structure.
"""

from __future__ import annotations

import random
from typing import List

from repro.trace.generator import TraceBuilder
from repro.workloads.base import Workload


class BlackScholes(Workload):
    """blackscholes: per-chunk option pricing, highly regular and compute bound."""

    name = "blackscholes"
    category = "parsec"
    paper_task_types = 2
    paper_task_instances = 24500
    properties = "Option price calculation"

    def build(self, builder: TraceBuilder, num_instances: int, rng: random.Random) -> None:
        options = builder.allocator.allocate(512 * 1024 * 1024)
        results = builder.allocator.allocate(4 * 1024 * 1024)
        price_share = int(num_instances * 0.96)
        aggregate_share = num_instances - price_share
        chunk_bytes = 16 * 1024
        price_ids: List[int] = []
        for index in range(price_share):
            instructions = self.jittered(rng, 30_000, jitter=0.02)
            events = self.combine(
                self.streaming_events(
                    rng, options, events=20, accesses=instructions // 8,
                    start=(index * chunk_bytes) % options.size,
                ),
                self.reuse_events(
                    rng, results, events=8, accesses=instructions // 30,
                    hot_lines=8, write_fraction=0.9,
                ),
            )
            price_ids.append(
                builder.add_task(
                    "price_options", instructions=instructions, memory_events=events
                )
            )
        group = max(1, price_share // max(1, aggregate_share))
        for index in range(aggregate_share):
            instructions = self.jittered(rng, 7_000, jitter=0.05)
            events = self.streaming_events(
                rng, results, events=10, accesses=instructions // 10,
                start=rng.randrange(results.size),
            )
            deps = price_ids[index * group : (index + 1) * group][:6]
            builder.add_task(
                "aggregate_prices",
                instructions=instructions,
                memory_events=events,
                depends_on=deps,
            )


class BodyTrack(Workload):
    """bodytrack: a per-frame pipeline of seven task types."""

    name = "bodytrack"
    category = "parsec"
    paper_task_types = 7
    paper_task_instances = 21439
    properties = "Human body tracking with multiple cameras"

    def build(self, builder: TraceBuilder, num_instances: int, rng: random.Random) -> None:
        frames = builder.allocator.allocate(256 * 1024 * 1024)
        particles = builder.allocator.allocate(1024 * 1024)
        model = builder.allocator.allocate(512 * 1024, shared=True)
        # Each frame: 1 read, E edge tasks, G gradient tasks, W particle-weight
        # tasks (dominant), 1 resample, 1 annealing step, 1 pose update.
        per_frame = 64
        frames_needed = max(1, num_instances // per_frame)
        previous_pose: List[int] = []
        created = 0
        for frame in range(frames_needed):
            if created >= num_instances:
                break
            read_id = builder.add_task(
                "read_frame",
                instructions=self.jittered(rng, 9_000, jitter=0.05),
                memory_events=self.streaming_events(
                    rng, frames, events=18, accesses=3_000,
                    start=(frame * 64 * 1024) % frames.size,
                ),
                depends_on=previous_pose,
            )
            created += 1
            edge_ids = []
            for _ in range(10):
                if created >= num_instances:
                    break
                instructions = self.jittered(rng, 20_000, jitter=0.04)
                edge_ids.append(
                    builder.add_task(
                        "edge_detection",
                        instructions=instructions,
                        memory_events=self.streaming_events(
                            rng, frames, events=22, accesses=instructions // 6,
                            start=rng.randrange(frames.size),
                        ),
                        depends_on=[read_id],
                    )
                )
                created += 1
            gradient_ids = []
            for _ in range(8):
                if created >= num_instances:
                    break
                instructions = self.jittered(rng, 17_000, jitter=0.04)
                gradient_ids.append(
                    builder.add_task(
                        "image_gradient",
                        instructions=instructions,
                        memory_events=self.streaming_events(
                            rng, frames, events=18, accesses=instructions // 7,
                            start=rng.randrange(frames.size),
                        ),
                        depends_on=edge_ids[-2:] if edge_ids else [read_id],
                    )
                )
                created += 1
            weight_ids = []
            for _ in range(40):
                if created >= num_instances:
                    break
                instructions = self.jittered(rng, 24_000, jitter=0.06)
                weight_ids.append(
                    builder.add_task(
                        "particle_weights",
                        instructions=instructions,
                        memory_events=self.combine(
                            self.irregular_events(
                                rng, particles, events=20, accesses=instructions // 8
                            ),
                            self.reuse_events(
                                rng, model, events=10, accesses=instructions // 14,
                                hot_lines=16,
                            ),
                        ),
                        depends_on=gradient_ids[-2:] if gradient_ids else [read_id],
                    )
                )
                created += 1
            stage_deps = weight_ids[-6:] if weight_ids else [read_id]
            resample_id = builder.add_task(
                "resample_particles",
                instructions=self.jittered(rng, 12_000, jitter=0.05),
                memory_events=self.streaming_events(
                    rng, particles, events=16, accesses=4_000, write_fraction=0.6
                ),
                depends_on=stage_deps,
            )
            created += 1
            anneal_id = builder.add_task(
                "annealing_step",
                instructions=self.jittered(rng, 14_000, jitter=0.05),
                memory_events=self.reuse_events(
                    rng, model, events=12, accesses=4_000, hot_lines=12,
                    write_fraction=0.4,
                ),
                depends_on=[resample_id],
            )
            created += 1
            pose_id = builder.add_task(
                "pose_update",
                instructions=self.jittered(rng, 8_000, jitter=0.05),
                memory_events=self.reuse_events(
                    rng, model, events=8, accesses=2_000, hot_lines=8,
                    write_fraction=0.8,
                ),
                depends_on=[anneal_id],
            )
            created += 1
            previous_pose = [pose_id]


class Canneal(Workload):
    """canneal: cache-aware simulated annealing over a large shared netlist."""

    name = "canneal"
    category = "parsec"
    paper_task_types = 1
    paper_task_instances = 16384
    properties = "Cache-aware simulated annealing"

    def build(self, builder: TraceBuilder, num_instances: int, rng: random.Random) -> None:
        netlist = builder.allocator.allocate(96 * 1024 * 1024, shared=True)
        for _ in range(num_instances):
            instructions = self.jittered(rng, 21_000, jitter=0.05)
            events = self.irregular_events(
                rng, netlist, events=46, accesses=instructions // 6, write_fraction=0.2
            )
            builder.add_task(
                "anneal_moves", instructions=instructions, memory_events=events
            )


class Dedup(Workload):
    """dedup: chunk/hash/compress/write pipeline with input-dependent work."""

    name = "dedup"
    category = "parsec"
    paper_task_types = 4
    paper_task_instances = 15738
    properties = "Deduplication: combination of global and local compression"

    def build(self, builder: TraceBuilder, num_instances: int, rng: random.Random) -> None:
        stream = builder.allocator.allocate(64 * 1024 * 1024)
        hash_table = builder.allocator.allocate(8 * 1024 * 1024, shared=True)
        output = builder.allocator.allocate(32 * 1024 * 1024)
        # Pipeline stages per data segment: chunk -> hash -> compress -> write.
        # Compression dominates (99.9% of instructions in the paper) and its
        # work per instance is strongly input dependent.
        segments = max(1, num_instances // 4)
        created = 0
        previous_chunk: List[int] = []
        for segment in range(segments):
            if created >= num_instances:
                break
            # Chunking reads the input stream in order (serial stage); the
            # hash/compress/write stages of different segments overlap.
            chunk_id = builder.add_task(
                "chunk_segment",
                instructions=self.jittered(rng, 4_000, jitter=0.1),
                memory_events=self.streaming_events(
                    rng, stream, events=10, accesses=1_500,
                    start=(segment * 64 * 1024) % stream.size,
                ),
                depends_on=previous_chunk[-1:],
            )
            previous_chunk = [chunk_id]
            created += 1
            if created >= num_instances:
                break
            hash_id = builder.add_task(
                "hash_chunk",
                instructions=self.jittered(rng, 5_000, jitter=0.1),
                memory_events=self.irregular_events(
                    rng, hash_table, events=12, accesses=1_800, write_fraction=0.3
                ),
                depends_on=[chunk_id],
            )
            created += 1
            if created >= num_instances:
                break
            # Input dependence: both the amount of work and its memory
            # intensity vary widely between segments (compressible vs. not).
            compress_instructions = self.lognormal(rng, 60_000, sigma=0.5)
            compressibility = rng.uniform(0.3, 2.2)
            compress_events = self.combine(
                self.streaming_events(
                    rng, stream, events=int(24 * compressibility) + 6,
                    accesses=int(compress_instructions * 0.12 * compressibility) + 64,
                    start=(segment * 64 * 1024) % stream.size,
                ),
                self.irregular_events(
                    rng, hash_table, events=10,
                    accesses=max(64, compress_instructions // 50),
                ),
            )
            compress_id = builder.add_task(
                "compress_chunk",
                instructions=compress_instructions,
                memory_events=compress_events,
                depends_on=[hash_id],
            )
            created += 1
            if created >= num_instances:
                break
            builder.add_task(
                "write_output",
                instructions=self.jittered(rng, 3_500, jitter=0.1),
                memory_events=self.streaming_events(
                    rng, output, events=8, accesses=1_200,
                    start=rng.randrange(output.size), write_fraction=1.0,
                ),
                depends_on=[compress_id],
            )
            created += 1


class FreqMine(Workload):
    """freqmine: FP-growth frequent itemset mining with divergent task sizes."""

    name = "freqmine"
    category = "parsec"
    paper_task_types = 7
    paper_task_instances = 1932
    properties = "Frequent Pattern Growth method for Frequent Item Mining"
    min_instances = 400

    def build(self, builder: TraceBuilder, num_instances: int, rng: random.Random) -> None:
        transactions = builder.allocator.allocate(48 * 1024 * 1024)
        fp_tree = builder.allocator.allocate(24 * 1024 * 1024, shared=True)
        results = builder.allocator.allocate(4 * 1024 * 1024)

        helper_types = [
            "scan_database", "count_items", "sort_items",
            "build_fp_tree", "prune_tree", "write_itemsets",
        ]
        helper_budget = max(len(helper_types), int(num_instances * 0.12))
        mining_budget = num_instances - helper_budget

        # Helper phases: small, regular tasks (the last helper type,
        # write_itemsets, is emitted in the output phase below).
        setup_ids: List[int] = []
        per_helper = max(1, helper_budget // len(helper_types))
        created = 0
        for type_index, task_type in enumerate(helper_types[:5]):
            for _ in range(per_helper):
                if created >= helper_budget:
                    break
                instructions = self.jittered(rng, 8_000, jitter=0.08)
                events = self.streaming_events(
                    rng, transactions, events=14, accesses=instructions // 6,
                    start=rng.randrange(transactions.size),
                )
                deps = setup_ids[-2:] if type_index else []
                setup_ids.append(
                    builder.add_task(
                        task_type,
                        instructions=instructions,
                        memory_events=events,
                        depends_on=deps,
                    )
                )
                created += 1

        # Dominant mining type: conditional FP-tree mining whose work spans
        # several orders of magnitude (control-flow divergence inside one
        # task type).  Memory intensity also varies with the explored tree.
        mining_ids: List[int] = []
        for _ in range(mining_budget):
            instructions = self.lognormal(rng, 28_000, sigma=1.3)
            instructions = min(instructions, 1_400_000)
            intensity = rng.uniform(0.6, 1.6)
            events = self.irregular_events(
                rng, fp_tree,
                events=min(70, int(14 * intensity) + 6),
                accesses=max(64, int(instructions * 0.1 * intensity)),
                write_fraction=0.15,
            )
            mining_ids.append(
                builder.add_task(
                    "mine_conditional_tree",
                    instructions=instructions,
                    memory_events=events,
                    depends_on=setup_ids[-1:],
                )
            )
        # Output phase.
        remaining = num_instances - builder.num_instances
        for _ in range(max(0, remaining)):
            instructions = self.jittered(rng, 6_000, jitter=0.1)
            builder.add_task(
                "write_itemsets",
                instructions=instructions,
                memory_events=self.streaming_events(
                    rng, results, events=8, accesses=instructions // 8,
                    start=rng.randrange(results.size), write_fraction=0.8,
                ),
                depends_on=mining_ids[-2:] if mining_ids else [],
            )


class Swaptions(Workload):
    """swaptions: Monte-Carlo swaption pricing, regular and compute bound."""

    name = "swaptions"
    category = "parsec"
    paper_task_types = 1
    paper_task_instances = 16384
    properties = "Monte-Carlo simulation to calculate swaption prices"

    def build(self, builder: TraceBuilder, num_instances: int, rng: random.Random) -> None:
        swaptions = builder.allocator.allocate(8 * 1024 * 1024)
        for index in range(num_instances):
            instructions = self.jittered(rng, 44_000, jitter=0.02)
            events = self.reuse_events(
                rng, swaptions.slice((index * 4096) % swaptions.size, 4096),
                events=14, accesses=instructions // 20, hot_lines=12,
                write_fraction=0.2,
            )
            builder.add_task(
                "simulate_swaption", instructions=instructions, memory_events=events
            )
