"""The nine kernel benchmarks of Table I.

Each kernel reproduces the task structure and the behavioural note of the
paper's Table I (number of task types, instance count, access pattern).  The
instruction counts are scaled down relative to the native kernels so that
full detailed simulation remains tractable in pure Python; the per-type IPC
behaviour (regular vs. irregular, compute- vs. memory-bound, balanced vs.
imbalanced) is what matters for TaskPoint and is preserved.
"""

from __future__ import annotations

import random
from typing import List

from repro.trace.generator import TraceBuilder
from repro.workloads.base import Workload


class Convolution2D(Workload):
    """2d-convolution: strided streaming over an image, one tile per task."""

    name = "2d-convolution"
    category = "kernel"
    paper_task_types = 1
    paper_task_instances = 16384
    properties = "Kernel: strided memory accesses"

    def build(self, builder: TraceBuilder, num_instances: int, rng: random.Random) -> None:
        # The image is far larger than any cache level, so tiles stream from
        # memory at every scale and all instances behave alike.
        image = builder.allocator.allocate(256 * 1024 * 1024)
        output = builder.allocator.allocate(256 * 1024 * 1024)
        tile_bytes = 16 * 1024
        for index in range(num_instances):
            instructions = self.jittered(rng, 36_000, jitter=0.02)
            start = (index * tile_bytes) % image.size
            reads = self.streaming_events(
                rng, image, events=36, accesses=instructions // 6, start=start
            )
            writes = self.streaming_events(
                rng, output, events=12, accesses=instructions // 18,
                start=start, write_fraction=1.0,
            )
            builder.add_task(
                "conv2d_tile",
                instructions=instructions,
                memory_events=self.combine(reads, writes),
            )


class Stencil3D(Workload):
    """3d-stencil: strided accesses over three neighbouring planes."""

    name = "3d-stencil"
    category = "kernel"
    paper_task_types = 1
    paper_task_instances = 16370
    properties = "Kernel: strided memory accesses"

    def build(self, builder: TraceBuilder, num_instances: int, rng: random.Random) -> None:
        volume = builder.allocator.allocate(256 * 1024 * 1024)
        result = builder.allocator.allocate(256 * 1024 * 1024)
        block_bytes = 24 * 1024
        plane_bytes = 8 * 1024 * 1024
        for index in range(num_instances):
            instructions = self.jittered(rng, 30_000, jitter=0.025)
            start = (index * block_bytes) % volume.size
            events = []
            for plane in range(3):
                events.extend(
                    self.streaming_events(
                        rng, volume, events=14,
                        accesses=instructions // 12,
                        start=start + plane * plane_bytes,
                        stride=128,
                    )
                )
            events.extend(
                self.streaming_events(
                    rng, result, events=10, accesses=instructions // 20,
                    start=start, write_fraction=1.0,
                )
            )
            builder.add_task(
                "stencil_block", instructions=instructions, memory_events=events
            )


class AtomicMonteCarloDynamics(Workload):
    """atomic-monte-carlo-dynamics: compute-bound, embarrassingly parallel."""

    name = "atomic-monte-carlo-dynamics"
    category = "kernel"
    paper_task_types = 1
    paper_task_instances = 16384
    properties = "Kernel: embarrassingly parallel"

    def build(self, builder: TraceBuilder, num_instances: int, rng: random.Random) -> None:
        state = builder.allocator.allocate(256 * 1024)
        trajectories = builder.allocator.allocate(64 * 1024 * 1024)
        for index in range(num_instances):
            instructions = self.jittered(rng, 48_000, jitter=0.02)
            events = self.combine(
                self.reuse_events(
                    rng, state, events=10, accesses=instructions // 40,
                    hot_lines=rng.randint(6, 10),
                ),
                self.streaming_events(
                    rng, trajectories, events=3, accesses=instructions // 200,
                    start=(index * 4096) % trajectories.size, write_fraction=1.0,
                ),
            )
            builder.add_task(
                "mc_trajectory", instructions=instructions, memory_events=events
            )


class DenseMatrixMultiplication(Workload):
    """dense-matrix-multiplication: blocked GEMM, high data reuse."""

    name = "dense-matrix-multiplication"
    category = "kernel"
    paper_task_types = 1
    paper_task_instances = 17576
    properties = "Kernel: high data reuse, compute bound"

    def build(self, builder: TraceBuilder, num_instances: int, rng: random.Random) -> None:
        # A BLAS-3 block kernel touches O(b^2) data for O(b^3) work: few
        # memory events relative to the instruction count, spread over
        # matrices much larger than the last-level cache.
        matrix_a = builder.allocator.allocate(128 * 1024 * 1024)
        matrix_b = builder.allocator.allocate(128 * 1024 * 1024)
        matrix_c = builder.allocator.allocate(128 * 1024 * 1024)
        block_bytes = 32 * 1024
        blocks = matrix_a.size // block_bytes
        for index in range(num_instances):
            instructions = self.jittered(rng, 55_000, jitter=0.02)
            offset = ((index * 2654435761) % blocks) * block_bytes
            events = self.combine(
                self.reuse_events(
                    rng, matrix_a.slice(offset, block_bytes), events=10,
                    accesses=instructions // 10, hot_lines=48,
                ),
                self.reuse_events(
                    rng, matrix_b.slice(offset, block_bytes), events=10,
                    accesses=instructions // 10, hot_lines=48,
                ),
                self.reuse_events(
                    rng, matrix_c.slice(offset, block_bytes), events=4,
                    accesses=instructions // 40, hot_lines=16, write_fraction=0.8,
                ),
            )
            builder.add_task(
                "gemm_block", instructions=instructions, memory_events=events
            )


class Histogram(Workload):
    """histogram: streaming reads plus atomic updates to a shared histogram."""

    name = "histogram"
    category = "kernel"
    paper_task_types = 1
    paper_task_instances = 16384
    properties = "Kernel: atomic operations"

    def build(self, builder: TraceBuilder, num_instances: int, rng: random.Random) -> None:
        data = builder.allocator.allocate(256 * 1024 * 1024)
        bins = builder.allocator.allocate(16 * 1024, shared=True)
        chunk_bytes = 16 * 1024
        for index in range(num_instances):
            instructions = self.jittered(rng, 22_000, jitter=0.03)
            start = (index * chunk_bytes) % data.size
            reads = self.streaming_events(
                rng, data, events=28, accesses=instructions // 6, start=start
            )
            updates = self.irregular_events(
                rng, bins, events=16, accesses=instructions // 16, write_fraction=0.9
            )
            builder.add_task(
                "histogram_chunk",
                instructions=instructions,
                memory_events=self.combine(reads, updates),
            )


class NBody(Workload):
    """n-body: irregular force computation plus regular position updates."""

    name = "n-body"
    category = "kernel"
    paper_task_types = 2
    paper_task_instances = 25000
    properties = "Kernel: irregular memory accesses"

    def build(self, builder: TraceBuilder, num_instances: int, rng: random.Random) -> None:
        # The particle set is larger than the last-level cache, so neighbour
        # gathers keep missing throughout the run (irregular, memory bound).
        particles = builder.allocator.allocate(64 * 1024 * 1024)
        forces = builder.allocator.allocate(512 * 1024)
        iterations = max(1, num_instances // 400)
        per_iteration = max(2, num_instances // iterations)
        update_share = max(1, per_iteration // 5)
        force_share = per_iteration - update_share
        previous_updates: List[int] = []
        created = 0
        iteration = 0
        while created < num_instances:
            iteration += 1
            force_ids: List[int] = []
            for _ in range(min(force_share, num_instances - created)):
                instructions = self.jittered(rng, 34_000, jitter=0.04)
                events = self.irregular_events(
                    rng, particles, events=44, accesses=instructions // 7
                )
                force_ids.append(
                    builder.add_task(
                        "compute_forces",
                        instructions=instructions,
                        memory_events=events,
                        depends_on=previous_updates[-2:],
                    )
                )
                created += 1
            update_ids: List[int] = []
            for _ in range(min(update_share, num_instances - created)):
                instructions = self.jittered(rng, 15_000, jitter=0.03)
                events = self.combine(
                    self.streaming_events(
                        rng, particles, events=18, accesses=instructions // 8,
                        start=rng.randrange(particles.size), write_fraction=0.5,
                    ),
                    self.streaming_events(
                        rng, forces, events=10, accesses=instructions // 16,
                        start=rng.randrange(forces.size),
                    ),
                )
                depends = force_ids[:: max(1, len(force_ids) // 4)] if force_ids else []
                update_ids.append(
                    builder.add_task(
                        "update_positions",
                        instructions=instructions,
                        memory_events=events,
                        depends_on=depends[:4],
                    )
                )
                created += 1
            previous_updates = update_ids


class Reduction(Workload):
    """reduction: a binary reduction tree; parallelism decreases over time."""

    name = "reduction"
    category = "kernel"
    paper_task_types = 2
    paper_task_instances = 16384
    properties = "Kernel: parallelism decreases over time"

    def build(self, builder: TraceBuilder, num_instances: int, rng: random.Random) -> None:
        data = builder.allocator.allocate(32 * 1024 * 1024)
        partials = builder.allocator.allocate(1024 * 1024)
        # A binary tree with L leaves has ~2L-1 nodes; pick L accordingly.
        leaves = max(2, (num_instances + 1) // 2)
        frontier: List[int] = []
        chunk_bytes = 32 * 1024
        for index in range(leaves):
            instructions = self.jittered(rng, 18_000, jitter=0.03)
            events = self.streaming_events(
                rng, data, events=30, accesses=instructions // 5,
                start=(index * chunk_bytes) % data.size,
            )
            frontier.append(
                builder.add_task(
                    "reduce_leaf", instructions=instructions, memory_events=events
                )
            )
        while len(frontier) > 1:
            next_frontier: List[int] = []
            for position in range(0, len(frontier) - 1, 2):
                instructions = self.jittered(rng, 6_000, jitter=0.05)
                events = self.reuse_events(
                    rng, partials, events=8, accesses=instructions // 20, hot_lines=4
                )
                next_frontier.append(
                    builder.add_task(
                        "reduce_node",
                        instructions=instructions,
                        memory_events=events,
                        depends_on=frontier[position : position + 2],
                    )
                )
            if len(frontier) % 2:
                next_frontier.append(frontier[-1])
            frontier = next_frontier


class SparseMatrixVectorMultiplication(Workload):
    """sparse-matrix-vector-multiplication: memory bound with load imbalance."""

    name = "sparse-matrix-vector-multiplication"
    category = "kernel"
    paper_task_types = 1
    paper_task_instances = 1024
    properties = "Kernel: load imbalance, memory bound"
    min_instances = 256

    def build(self, builder: TraceBuilder, num_instances: int, rng: random.Random) -> None:
        values = builder.allocator.allocate(256 * 1024 * 1024)
        vector = builder.allocator.allocate(2 * 1024 * 1024)
        row_bytes = 128 * 1024
        for index in range(num_instances):
            # Row-block density varies: load imbalance (duration spread) and
            # a structure-dependent gather pattern (moderate IPC spread).
            density = self.lognormal(rng, 1_000, sigma=0.35)
            instructions = max(4_000, 16 * density)
            gather_ratio = rng.uniform(0.85, 1.15)
            start = (index * row_bytes) % values.size
            stream_events = max(8, min(60, instructions // 500))
            gather_events = max(6, min(50, int(instructions * gather_ratio) // 650))
            stream = self.streaming_events(
                rng, values, events=stream_events, accesses=instructions // 4,
                start=start,
            )
            gather = self.irregular_events(
                rng, vector, events=gather_events,
                accesses=int(instructions * gather_ratio) // 6,
            )
            builder.add_task(
                "spmv_row_block",
                instructions=instructions,
                memory_events=self.combine(stream, gather),
            )


class VectorOperation(Workload):
    """vector-operation: regular streaming, memory bound."""

    name = "vector-operation"
    category = "kernel"
    paper_task_types = 1
    paper_task_instances = 16400
    properties = "Kernel: regular, memory bound"

    def build(self, builder: TraceBuilder, num_instances: int, rng: random.Random) -> None:
        source_a = builder.allocator.allocate(64 * 1024 * 1024)
        source_b = builder.allocator.allocate(64 * 1024 * 1024)
        destination = builder.allocator.allocate(64 * 1024 * 1024)
        chunk_bytes = 64 * 1024
        for index in range(num_instances):
            instructions = self.jittered(rng, 16_000, jitter=0.02)
            start = (index * chunk_bytes) % source_a.size
            events = self.combine(
                self.streaming_events(
                    rng, source_a, events=26, accesses=instructions // 4, start=start
                ),
                self.streaming_events(
                    rng, source_b, events=26, accesses=instructions // 4, start=start
                ),
                self.streaming_events(
                    rng, destination, events=18, accesses=instructions // 6,
                    start=start, write_fraction=1.0,
                ),
            )
            builder.add_task(
                "vector_chunk", instructions=instructions, memory_events=events
            )
