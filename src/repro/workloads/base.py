"""Workload base class and shared generation helpers.

A workload knows the paper-reported properties of its benchmark (number of
task types, number of task instances, behavioural notes from Table I) and how
to generate a synthetic application trace with the same structure at an
arbitrary scale.

Scaling: ``generate(scale=1.0)`` produces the paper's instance count;
smaller scales shrink the instance count proportionally (never below
``min_instances``) so the complete evaluation grid runs in minutes in pure
Python.

Generators emit through :class:`~repro.trace.generator.TraceBuilder`
straight into the columnar trace backbone (:mod:`repro.trace.columns`): no
``TaskTraceRecord`` objects are allocated during generation, and the
resulting :class:`~repro.trace.trace.ApplicationTrace` carries NumPy columns
as its source of truth.  Instruction counts per instance are already scaled down relative to
the native benchmarks (the sampling methodology is insensitive to the
absolute magnitude — only the per-type IPC and the relative instance sizes
matter).
"""

from __future__ import annotations

import abc
import math
import random
import zlib
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.trace.generator import TraceBuilder
from repro.trace.patterns import (
    AddressSpace,
    random_accesses,
    reuse_accesses,
    strided_accesses,
)
from repro.trace.records import MemoryEvent
from repro.trace.trace import ApplicationTrace


@dataclass(frozen=True)
class WorkloadInfo:
    """Static description of a benchmark (the paper's Table I row)."""

    name: str
    category: str                 # "kernel", "application" or "parsec"
    paper_task_types: int
    paper_task_instances: int
    properties: str


class Workload(abc.ABC):
    """Base class of all benchmark workloads.

    Subclasses define the class attributes ``name``, ``category``,
    ``paper_task_types``, ``paper_task_instances`` and ``properties`` and
    implement :meth:`build`, which adds task instances to a
    :class:`~repro.trace.generator.TraceBuilder`.
    """

    #: Benchmark name as it appears in Table I.
    name: str = "abstract"
    #: Benchmark group: "kernel", "application" or "parsec".
    category: str = "kernel"
    #: Number of task types reported by Table I.
    paper_task_types: int = 1
    #: Number of task instances reported by Table I.
    paper_task_instances: int = 16384
    #: The Table I "Properties" note.
    properties: str = ""
    #: Smallest number of instances generated regardless of scale.
    min_instances: int = 48

    # ------------------------------------------------------------------
    @classmethod
    def info(cls) -> WorkloadInfo:
        """Return the static Table I description of this benchmark."""
        return WorkloadInfo(
            name=cls.name,
            category=cls.category,
            paper_task_types=cls.paper_task_types,
            paper_task_instances=cls.paper_task_instances,
            properties=cls.properties,
        )

    def instances_for_scale(self, scale: float) -> int:
        """Number of task instances generated for ``scale``."""
        if scale <= 0:
            raise ValueError("scale must be positive")
        return max(self.min_instances, int(round(self.paper_task_instances * scale)))

    def generate(self, scale: float = 1.0, seed: int = 0) -> ApplicationTrace:
        """Generate the application trace of this benchmark.

        Parameters
        ----------
        scale:
            Fraction of the paper's task-instance count to generate
            (1.0 reproduces Table I; the experiment drivers default to much
            smaller values).
        seed:
            Seed of the generator; the same (scale, seed) pair always yields
            the same trace.
        """
        num_instances = self.instances_for_scale(scale)
        builder = TraceBuilder(name=self.name, seed=seed)
        builder.set_metadata("scale", scale)
        builder.set_metadata("category", self.category)
        builder.set_metadata("paper_task_instances", self.paper_task_instances)
        # zlib.crc32 rather than hash(): str hashes are randomised per
        # process (PYTHONHASHSEED), which would make the "same trace for the
        # same (scale, seed)" contract hold only within a single process and
        # break cross-process experiment reproducibility.
        rng = random.Random((seed * 1_000_003) ^ zlib.crc32(self.name.encode("utf-8")))
        self.build(builder, num_instances, rng)
        trace = builder.build()
        return trace

    @abc.abstractmethod
    def build(self, builder: TraceBuilder, num_instances: int, rng: random.Random) -> None:
        """Add ``num_instances`` task instances to ``builder``."""

    # ------------------------------------------------------------------
    # Shared generation helpers
    # ------------------------------------------------------------------
    @staticmethod
    def jittered(rng: random.Random, mean: float, jitter: float = 0.03) -> int:
        """An integer near ``mean`` with relative uniform jitter ``jitter``."""
        low = mean * (1.0 - jitter)
        high = mean * (1.0 + jitter)
        return max(1, int(rng.uniform(low, high)))

    @staticmethod
    def lognormal(rng: random.Random, median: float, sigma: float) -> int:
        """A heavy-tailed integer around ``median`` (log-normal with ``sigma``)."""
        return max(1, int(median * math.exp(rng.gauss(0.0, sigma))))

    @staticmethod
    def streaming_events(
        rng: random.Random,
        region: AddressSpace,
        events: int,
        accesses: int,
        start: int = 0,
        stride: int = 64,
        write_fraction: float = 0.1,
    ) -> List[MemoryEvent]:
        """Strided (streaming) access events starting at ``start``."""
        return strided_accesses(
            region,
            count=events,
            total_accesses=accesses,
            stride=stride,
            start=start,
            write_fraction=write_fraction,
            rng=rng,
        )

    @staticmethod
    def irregular_events(
        rng: random.Random,
        region: AddressSpace,
        events: int,
        accesses: int,
        write_fraction: float = 0.1,
    ) -> List[MemoryEvent]:
        """Random access events within ``region``."""
        return random_accesses(
            region,
            count=events,
            total_accesses=accesses,
            write_fraction=write_fraction,
            rng=rng,
        )

    @staticmethod
    def reuse_events(
        rng: random.Random,
        region: AddressSpace,
        events: int,
        accesses: int,
        hot_lines: int = 16,
        write_fraction: float = 0.1,
    ) -> List[MemoryEvent]:
        """Events that repeatedly touch a small hot set in ``region``."""
        return reuse_accesses(
            region,
            count=events,
            total_accesses=accesses,
            hot_lines=hot_lines,
            write_fraction=write_fraction,
            rng=rng,
        )

    @staticmethod
    def combine(*event_lists: Sequence[MemoryEvent]) -> List[MemoryEvent]:
        """Interleave several event lists into one, preserving rough order."""
        combined: List[MemoryEvent] = []
        lists = [list(events) for events in event_lists if events]
        while lists:
            for events in list(lists):
                if events:
                    combined.append(events.pop(0))
                else:
                    lists.remove(events)
        return combined
