"""The 19 task-based benchmarks of the paper's Table I.

Each benchmark is a :class:`~repro.workloads.base.Workload` that generates an
:class:`~repro.trace.trace.ApplicationTrace` reproducing the paper's task
structure: the same number of task types, a (scalable) number of task
instances, the dependency pattern of the original program and the qualitative
memory/compute behaviour listed in Table I's *Properties* column.

The benchmarks fall into three groups:

* **kernels** — 2d-convolution, 3d-stencil, atomic-monte-carlo-dynamics,
  dense-matrix-multiplication, histogram, n-body, reduction,
  sparse-matrix-vector-multiplication, vector-operation;
* **applications** — checkSparseLU, cholesky, kmeans, knn;
* **PARSEC** — blackscholes, bodytrack, canneal, dedup, freqmine, swaptions.

Use :func:`repro.workloads.registry.get_workload` to obtain a workload by
name and :func:`repro.workloads.registry.list_workloads` to enumerate them.
"""

from repro.workloads.base import Workload, WorkloadInfo
from repro.workloads.registry import (
    APPLICATION_NAMES,
    KERNEL_NAMES,
    PARSEC_NAMES,
    SENSITIVITY_SUBSET,
    all_workloads,
    get_workload,
    list_workloads,
)

__all__ = [
    "Workload",
    "WorkloadInfo",
    "get_workload",
    "list_workloads",
    "all_workloads",
    "KERNEL_NAMES",
    "APPLICATION_NAMES",
    "PARSEC_NAMES",
    "SENSITIVITY_SUBSET",
]
