"""Benchmark registry: look up workloads by name.

The registry exposes the 19 benchmarks of Table I grouped as in the paper
(kernels, applications, PARSEC) plus the five-benchmark subset used for the
parameter sensitivity analysis of Section V-A.
"""

from __future__ import annotations

from typing import Dict, List, Type

from repro.workloads.applications import (
    CheckSparseLU,
    Cholesky,
    KMeans,
    KNearestNeighbours,
)
from repro.workloads.base import Workload
from repro.workloads.kernels import (
    AtomicMonteCarloDynamics,
    Convolution2D,
    DenseMatrixMultiplication,
    Histogram,
    NBody,
    Reduction,
    SparseMatrixVectorMultiplication,
    Stencil3D,
    VectorOperation,
)
from repro.workloads.parsec import (
    BlackScholes,
    BodyTrack,
    Canneal,
    Dedup,
    FreqMine,
    Swaptions,
)

_WORKLOAD_CLASSES: List[Type[Workload]] = [
    # Kernels (Table I order).
    Convolution2D,
    Stencil3D,
    AtomicMonteCarloDynamics,
    DenseMatrixMultiplication,
    Histogram,
    NBody,
    Reduction,
    SparseMatrixVectorMultiplication,
    VectorOperation,
    # Applications.
    CheckSparseLU,
    Cholesky,
    KMeans,
    KNearestNeighbours,
    # Task-based PARSEC.
    BlackScholes,
    BodyTrack,
    Canneal,
    Dedup,
    FreqMine,
    Swaptions,
]

_REGISTRY: Dict[str, Type[Workload]] = {cls.name: cls for cls in _WORKLOAD_CLASSES}

#: Benchmark names by group, in Table I order.
KERNEL_NAMES: List[str] = [cls.name for cls in _WORKLOAD_CLASSES if cls.category == "kernel"]
APPLICATION_NAMES: List[str] = [
    cls.name for cls in _WORKLOAD_CLASSES if cls.category == "application"
]
PARSEC_NAMES: List[str] = [cls.name for cls in _WORKLOAD_CLASSES if cls.category == "parsec"]

#: The benchmarks used by the paper's sensitivity analysis (Section V-A):
#: those with an error above 5% for at least one history size.
SENSITIVITY_SUBSET: List[str] = [
    "2d-convolution",
    "3d-stencil",
    "atomic-monte-carlo-dynamics",
    "knn",
    "blackscholes",
]


def list_workloads(category: str | None = None) -> List[str]:
    """Return benchmark names, optionally filtered by category.

    ``category`` may be ``"kernel"``, ``"application"`` or ``"parsec"``.
    """
    if category is None:
        return [cls.name for cls in _WORKLOAD_CLASSES]
    valid = {"kernel", "application", "parsec"}
    if category not in valid:
        raise ValueError(f"unknown category {category!r}; expected one of {sorted(valid)}")
    return [cls.name for cls in _WORKLOAD_CLASSES if cls.category == category]


def get_workload(name: str) -> Workload:
    """Instantiate the workload called ``name``.

    Raises ``KeyError`` with the list of known names if the benchmark does
    not exist.
    """
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; known benchmarks: {sorted(_REGISTRY)}"
        ) from None
    return cls()


def all_workloads() -> List[Workload]:
    """Instantiate all 19 benchmarks in Table I order."""
    return [cls() for cls in _WORKLOAD_CLASSES]
