"""The four HPC application benchmarks of Table I.

checkSparseLU, cholesky, kmeans and knn are the benchmarks whose task graphs
are genuinely irregular: blocked factorisations with wavefront dependencies,
iterative algorithms with reduction phases, and instance-based learning with
two task types of very different weight.  Their generators reproduce those
structures so the dynamic scheduler, the dependency tracker and TaskPoint's
resampling triggers are exercised the same way the original applications
exercise them.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.trace.generator import TraceBuilder
from repro.workloads.base import Workload


class CheckSparseLU(Workload):
    """checkSparseLU: blocked sparse LU factorisation plus result checking.

    The benchmark has 11 task types (factorisation kernels on blocks of a
    sparse blocked matrix plus allocation/check helpers).  Empty blocks make
    the per-instance work highly irregular, which is why the paper observes
    one of the largest IPC variations for this benchmark.
    """

    name = "checkSparseLU"
    category = "application"
    paper_task_types = 11
    paper_task_instances = 22058
    properties = "Decomposition of large, sparse matrices"

    def build(self, builder: TraceBuilder, num_instances: int, rng: random.Random) -> None:
        matrix = builder.allocator.allocate(32 * 1024 * 1024)
        check = builder.allocator.allocate(4 * 1024 * 1024)
        # Choose the blocked-matrix dimension so the factorisation produces
        # roughly the requested number of instances (the task count of a
        # right-looking blocked LU grows with n^3 / 3).
        dimension = max(4, round((3.0 * num_instances) ** (1.0 / 3.0)))
        block_bytes = 16 * 1024
        # Sparse structure: a block is present with 70% probability.
        present: Dict[Tuple[int, int], bool] = {
            (row, col): (row == col or rng.random() < 0.7)
            for row in range(dimension)
            for col in range(dimension)
        }
        last_writer: Dict[Tuple[int, int], int] = {}

        def block_events(row: int, col: int, instructions: int, kind: str) -> list:
            offset = ((row * dimension + col) * block_bytes) % matrix.size
            region = matrix.slice(offset, block_bytes)
            if kind == "dense":
                return self.reuse_events(
                    rng, region, events=24, accesses=instructions // 8,
                    hot_lines=32, write_fraction=0.4,
                )
            return self.irregular_events(
                rng, region, events=18, accesses=instructions // 10, write_fraction=0.3
            )

        def add(task_type: str, row: int, col: int, instructions: int,
                deps: List[int], kind: str = "dense") -> int:
            instance = builder.add_task(
                task_type,
                instructions=instructions,
                memory_events=block_events(row, col, instructions, kind),
                depends_on=sorted(set(deps)),
            )
            last_writer[(row, col)] = instance
            return instance

        # Allocation / initialisation helper types.
        for index in range(dimension):
            instructions = self.jittered(rng, 6_000, jitter=0.1)
            add("allocate_block", index, index, instructions, [], kind="sparse")

        for k in range(dimension):
            deps = [last_writer[(k, k)]] if (k, k) in last_writer else []
            lu0 = add("lu0", k, k, self.jittered(rng, 40_000, jitter=0.08), deps)
            for j in range(k + 1, dimension):
                if not present[(k, j)]:
                    continue
                deps = [lu0] + ([last_writer[(k, j)]] if (k, j) in last_writer else [])
                add("fwd", k, j, self.jittered(rng, 28_000, jitter=0.12), deps)
            for i in range(k + 1, dimension):
                if not present[(i, k)]:
                    continue
                deps = [lu0] + ([last_writer[(i, k)]] if (i, k) in last_writer else [])
                add("bdiv", i, k, self.jittered(rng, 28_000, jitter=0.12), deps)
            for i in range(k + 1, dimension):
                for j in range(k + 1, dimension):
                    if builder.num_instances >= num_instances:
                        break
                    if not present[(i, k)] or not present[(k, j)]:
                        continue
                    deps = []
                    for key in ((i, k), (k, j), (i, j)):
                        if key in last_writer:
                            deps.append(last_writer[key])
                    present[(i, j)] = True
                    # A bmod instance either updates a dense block or touches
                    # a sparse/fill-in block with far less, irregular work:
                    # strong IPC irregularity within one task type, but with
                    # a stationary mix across the whole factorisation.
                    if rng.random() < 0.72:
                        instructions = self.jittered(rng, 34_000, jitter=0.1)
                        kind = "dense"
                    else:
                        instructions = self.lognormal(rng, 9_000, sigma=0.6)
                        kind = "sparse"
                    add("bmod", i, j, instructions, deps, kind=kind)

        # Check phase: a handful of helper task types verifying the result.
        check_types = [
            "check_row", "check_col", "check_norm", "compare_reference",
            "free_block", "report",
        ]
        barrier = [instance for instance in last_writer.values()][-1:]
        for index, task_type in enumerate(check_types):
            count = max(1, dimension // 2 if index < 4 else 1)
            for _ in range(count):
                instructions = self.lognormal(rng, 5_000, sigma=0.4)
                events = self.streaming_events(
                    rng, check, events=10, accesses=instructions // 8,
                    start=rng.randrange(check.size),
                )
                builder.add_task(
                    task_type,
                    instructions=instructions,
                    memory_events=events,
                    depends_on=barrier,
                )


class Cholesky(Workload):
    """cholesky: blocked Cholesky factorisation (potrf/trsm/syrk/gemm)."""

    name = "cholesky"
    category = "application"
    paper_task_types = 4
    paper_task_instances = 19600
    properties = "Decomposition of Hermitian positive-definite matrices"

    def build(self, builder: TraceBuilder, num_instances: int, rng: random.Random) -> None:
        matrix = builder.allocator.allocate(512 * 1024 * 1024)
        block_bytes = 512 * 1024
        # Task count of a blocked Cholesky is ~ n^3 / 6 for an n x n grid.
        dimension = max(4, round((6.0 * num_instances) ** (1.0 / 3.0)))
        last_writer: Dict[Tuple[int, int], int] = {}

        def events_for(row: int, col: int, instructions: int, reuse: bool) -> list:
            offset = ((row * dimension + col) * block_bytes) % matrix.size
            region = matrix.slice(offset, block_bytes)
            if reuse:
                return self.reuse_events(
                    rng, region, events=8, accesses=instructions // 8,
                    hot_lines=40, write_fraction=0.4,
                )
            return self.streaming_events(
                rng, region, events=8, accesses=instructions // 10,
                start=0, write_fraction=0.3,
            )

        def add(task_type: str, row: int, col: int, instructions: int,
                deps: List[int], reuse: bool = True) -> int:
            instance = builder.add_task(
                task_type,
                instructions=instructions,
                memory_events=events_for(row, col, instructions, reuse),
                depends_on=sorted(set(deps)),
            )
            last_writer[(row, col)] = instance
            return instance

        for k in range(dimension):
            if builder.num_instances >= num_instances:
                break
            deps = [last_writer[(k, k)]] if (k, k) in last_writer else []
            potrf = add("potrf", k, k, self.jittered(rng, 42_000, jitter=0.03), deps)
            for i in range(k + 1, dimension):
                deps = [potrf] + ([last_writer[(i, k)]] if (i, k) in last_writer else [])
                add("trsm", i, k, self.jittered(rng, 36_000, jitter=0.03), deps)
            for i in range(k + 1, dimension):
                if builder.num_instances >= num_instances:
                    break
                deps = [last_writer[(i, k)]]
                if (i, i) in last_writer:
                    deps.append(last_writer[(i, i)])
                add("syrk", i, i, self.jittered(rng, 34_000, jitter=0.03), deps)
                for j in range(k + 1, i):
                    if builder.num_instances >= num_instances:
                        break
                    deps = [last_writer[(i, k)], last_writer[(j, k)]]
                    if (i, j) in last_writer:
                        deps.append(last_writer[(i, j)])
                    add("gemm", i, j, self.jittered(rng, 38_000, jitter=0.03), deps)


class KMeans(Workload):
    """kmeans: Lloyd's algorithm with per-iteration assignment and reduction."""

    name = "kmeans"
    category = "application"
    paper_task_types = 6
    paper_task_instances = 16337
    properties = "Clustering based on Lloyd's algorithm"

    def build(self, builder: TraceBuilder, num_instances: int, rng: random.Random) -> None:
        points = builder.allocator.allocate(512 * 1024 * 1024)
        centroids = builder.allocator.allocate(64 * 1024, shared=True)
        partials = builder.allocator.allocate(256 * 1024)
        iterations = max(2, num_instances // 160)
        per_iteration = max(8, num_instances // iterations)
        assign_share = int(per_iteration * 0.82)
        partial_share = max(1, int(per_iteration * 0.12))
        chunk_bytes = 32 * 1024

        init_id = builder.add_task(
            "init_centroids",
            instructions=self.jittered(rng, 10_000, jitter=0.05),
            memory_events=self.streaming_events(
                rng, centroids, events=12, accesses=2_000, write_fraction=1.0
            ),
        )
        previous_update = init_id
        created = 1
        iteration = 0
        while created < num_instances:
            iteration += 1
            assign_ids: List[int] = []
            for index in range(min(assign_share, num_instances - created)):
                instructions = self.jittered(rng, 26_000, jitter=0.04)
                events = self.combine(
                    self.streaming_events(
                        rng, points, events=24, accesses=instructions // 6,
                        start=(builder.num_instances * chunk_bytes) % points.size,
                    ),
                    self.reuse_events(
                        rng, centroids, events=14, accesses=instructions // 10,
                        hot_lines=24,
                    ),
                )
                assign_ids.append(
                    builder.add_task(
                        "assign_points",
                        instructions=instructions,
                        memory_events=events,
                        depends_on=[previous_update],
                    )
                )
                created += 1
            partial_ids: List[int] = []
            for index in range(min(partial_share, num_instances - created)):
                instructions = self.jittered(rng, 9_000, jitter=0.06)
                events = self.reuse_events(
                    rng, partials, events=10, accesses=instructions // 12,
                    hot_lines=12, write_fraction=0.6,
                )
                group = assign_ids[index::partial_share][:6] if assign_ids else []
                partial_ids.append(
                    builder.add_task(
                        "partial_sums",
                        instructions=instructions,
                        memory_events=events,
                        depends_on=group,
                    )
                )
                created += 1
            if created >= num_instances:
                break
            update_id = builder.add_task(
                "update_centroids",
                instructions=self.jittered(rng, 12_000, jitter=0.05),
                memory_events=self.streaming_events(
                    rng, centroids, events=14, accesses=3_000, write_fraction=0.9
                ),
                depends_on=partial_ids or assign_ids[-1:],
            )
            created += 1
            check_id = builder.add_task(
                "convergence_check",
                instructions=self.jittered(rng, 4_000, jitter=0.08),
                memory_events=self.reuse_events(
                    rng, centroids, events=6, accesses=800, hot_lines=8
                ),
                depends_on=[update_id],
            )
            created += 1
            previous_update = check_id
        builder.add_task(
            "write_output",
            instructions=self.jittered(rng, 8_000, jitter=0.05),
            memory_events=self.streaming_events(
                rng, points, events=16, accesses=4_000, write_fraction=1.0
            ),
            depends_on=[previous_update],
        )


class KNearestNeighbours(Workload):
    """knn: distance computation blocks plus per-query selection tasks."""

    name = "knn"
    category = "application"
    paper_task_types = 2
    paper_task_instances = 18400
    properties = "Instance-based machine learning algorithm"

    def build(self, builder: TraceBuilder, num_instances: int, rng: random.Random) -> None:
        training = builder.allocator.allocate(512 * 1024 * 1024)
        queries = builder.allocator.allocate(1024 * 1024)
        distance_share = int(num_instances * 0.9)
        select_share = num_instances - distance_share
        block_bytes = 48 * 1024
        distance_ids: List[int] = []
        for index in range(distance_share):
            instructions = self.jittered(rng, 32_000, jitter=0.03)
            events = self.combine(
                self.streaming_events(
                    rng, training, events=30, accesses=instructions // 5,
                    start=(index * block_bytes) % training.size,
                ),
                self.reuse_events(
                    rng, queries, events=12, accesses=instructions // 12, hot_lines=16
                ),
            )
            distance_ids.append(
                builder.add_task(
                    "distance_block", instructions=instructions, memory_events=events
                )
            )
        group = max(1, distance_share // max(1, select_share))
        for index in range(select_share):
            instructions = self.jittered(rng, 11_000, jitter=0.05)
            events = self.irregular_events(
                rng, queries, events=14, accesses=instructions // 8, write_fraction=0.4
            )
            deps = distance_ids[index * group : (index + 1) * group][:8]
            builder.add_task(
                "select_neighbours",
                instructions=instructions,
                memory_events=events,
                depends_on=deps,
            )
