"""Multi-host dispatch transport for the experiment orchestrator.

This module turns :class:`~repro.exp.distributed.AsyncWorkerBackend` into a
cluster supervisor.  The moving parts:

* :class:`HostPool` — a supervisor-side TCP listener.  Workers are launched
  with ``--connect HOST PORT --token TOKEN`` and *connect back*; the pool
  matches each inbound connection to the launch that created it by the
  token echoed in the worker's ``hello`` frame.  Connections that send no
  (or a malformed, truncated or oversized) hello, or an unknown token, are
  dropped — a rogue peer cannot occupy a worker slot.
* **Launchers** — :class:`LocalLauncher` starts connect-back workers as
  local subprocesses (so the whole transport is testable without SSH);
  :class:`SSHLauncher` starts them as ``ssh host python -m
  repro.exp.worker --connect ...``.  Both return a local process handle the
  supervisor can kill and reap.
* :class:`HostSpec` / :func:`parse_hosts` — per-host worker budgets, parsed
  from the CLI syntax ``host1:4,host2:8``.  Host names beginning with
  ``local`` (``local``, ``localhost``, ``local0`` ...) launch via
  subprocess; anything else launches via SSH.
* :class:`HostState` — host-level health accounting shared by every slot of
  one machine: worker deaths count against the *host* as well as the slot,
  and a host whose workers crash-loop (``host_quarantine_retries``
  consecutive deaths with no completed job in between) is **quarantined** —
  its slots retire, requeueing any spec in hand, and the healthy hosts
  drain the queue.
* **Compression** — the worker advertises zlib support in its ``hello`` and
  the supervisor's ``hello_ack`` answers with the negotiated setting
  (``compress=`` on the backend), so spec and result frames shrink on
  high-latency links while pings stay raw and old workers keep working.

Results are byte-identical to a serial run at the :class:`ResultStore`
level: workers funnel through the same :func:`repro.exp.runner.run_spec`,
payloads are normalised before persistence, and ``put_if_absent`` makes
concurrent writers converge (``tests/test_exp_multihost.py`` asserts all of
this under network-fault injection).
"""

from __future__ import annotations

import asyncio
import os
import secrets
import shlex
import signal
import socket
import sys
from dataclasses import dataclass, field
from functools import partial
from typing import (
    Callable,
    Coroutine,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.exp import protocol
from repro.exp.backends import Outcome
from repro.exp.distributed import (
    AsyncWorkerBackend,
    SpawnError,
    _Job,
    _Worker,
    worker_environment,
)

#: Seconds a launched worker gets to connect back before the launch is
#: declared failed (interpreter + import startup on a loaded host, plus the
#: worker's own connect retries).
DEFAULT_CONNECT_TIMEOUT = 60.0

#: Seconds a new inbound connection gets to produce its ``hello`` frame.
HELLO_TIMEOUT = 10.0


def _is_local_name(name: str) -> bool:
    return name == "127.0.0.1" or name.startswith("local")


@dataclass(frozen=True)
class HostSpec:
    """Static description of one execution host.

    Parameters
    ----------
    name:
        Host name.  Names starting with ``local`` (or ``127.0.0.1``) run
        workers as local subprocesses; anything else is an SSH destination
        (``user@host`` works).  Distinct local names (``local0``,
        ``local1``) simulate distinct hosts for tests and demos.
    workers:
        Worker budget: how many concurrent workers this host runs.
    via:
        Transport override: ``"auto"`` (from the name), ``"local"`` or
        ``"ssh"``.
    python:
        Interpreter to start workers with on this host (default: the
        backend's ``python`` locally, ``python3`` over SSH).
    env:
        Extra environment variables for this host's workers (fault
        injection in tests, per-host tuning in deployments).
    """

    name: str
    workers: int = 1
    via: str = "auto"
    python: Optional[str] = None
    env: Optional[Dict[str, str]] = field(default=None)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("host name must be non-empty")
        if self.workers < 1:
            raise ValueError(f"host {self.name!r} needs a worker budget >= 1")
        if self.via not in ("auto", "local", "ssh"):
            raise ValueError(f"unknown transport {self.via!r}")

    @property
    def is_local(self) -> bool:
        """Whether workers launch as local subprocesses (no SSH)."""
        if self.via == "auto":
            return _is_local_name(self.name)
        return self.via == "local"


def parse_hosts(raw: Union[str, Sequence[Union[str, HostSpec]]]) -> List[HostSpec]:
    """Parse the CLI host syntax ``host1:4,host2:8`` into :class:`HostSpec`\\ s.

    Accepts a comma-separated string, a sequence of ``name[:workers]``
    strings, or ready-made :class:`HostSpec` objects (passed through).  A
    bare name gets a budget of one worker.
    """
    parts: List[Union[str, HostSpec]]
    if isinstance(raw, str):
        parts = [part.strip() for part in raw.split(",")]
    else:
        parts = list(raw)
    specs: List[HostSpec] = []
    for part in parts:
        if isinstance(part, HostSpec):
            specs.append(part)
            continue
        if not part:
            continue
        name, sep, count = part.rpartition(":")
        if not sep:
            name, count = part, "1"
        try:
            workers = int(count)
        except ValueError as exc:
            raise ValueError(
                f"malformed host entry {part!r} (expected NAME[:WORKERS])"
            ) from exc
        specs.append(HostSpec(name=name, workers=workers))
    if not specs:
        raise ValueError(f"no hosts in {raw!r}")
    return specs


def parse_listen(raw: Union[None, int, str]) -> Tuple[str, int]:
    """Parse ``--listen`` (``PORT`` or ``HOST:PORT``) into a bind address.

    ``None`` means an ephemeral port on the loopback interface — the right
    default when every host is local.  Cluster deployments pass
    ``0.0.0.0:PORT`` (and a reachable ``connect_host``) so remote workers
    can dial in.
    """
    if raw is None:
        return ("127.0.0.1", 0)
    text = str(raw)
    if ":" in text:
        host, _, port = text.rpartition(":")
        return (host or "0.0.0.0", int(port))
    return ("127.0.0.1", int(text))


class LocalLauncher:
    """Starts connect-back workers as subprocesses of the supervisor."""

    def __init__(self, python: Optional[str] = None) -> None:
        self.python = python

    async def launch(
        self,
        *,
        connect_host: str,
        port: int,
        token: str,
        env: Optional[Dict[str, str]] = None,
    ) -> "asyncio.subprocess.Process":
        return await asyncio.create_subprocess_exec(
            self.python or sys.executable,
            "-m", "repro.exp.worker",
            "--connect", connect_host, str(port),
            "--token", token,
            stdin=asyncio.subprocess.DEVNULL,
            env=worker_environment(env),
        )


class SSHLauncher:
    """Starts connect-back workers over SSH.

    The returned handle is the local ``ssh`` client process: killing it
    tears down the channel (the remote worker sees its socket close and
    exits after the current job).  Extra environment variables travel as an
    ``env KEY=VALUE ...`` prefix on the remote command line, since SSH does
    not forward arbitrary client environment.
    """

    def __init__(
        self,
        host: str,
        python: str = "python3",
        ssh_command: Sequence[str] = ("ssh", "-o", "BatchMode=yes"),
    ) -> None:
        self.host = host
        self.python = python
        self.ssh_command = tuple(ssh_command)

    async def launch(
        self,
        *,
        connect_host: str,
        port: int,
        token: str,
        env: Optional[Dict[str, str]] = None,
    ) -> "asyncio.subprocess.Process":
        remote: List[str] = []
        if env:
            remote.append("env")
            remote.extend(
                f"{key}={shlex.quote(value)}" for key, value in sorted(env.items())
            )
        remote += [
            self.python, "-m", "repro.exp.worker",
            "--connect", connect_host, str(port),
            "--token", token,
        ]
        return await asyncio.create_subprocess_exec(
            *self.ssh_command, self.host, " ".join(remote),
            stdin=asyncio.subprocess.DEVNULL,
        )


class HostState:
    """Runtime health accounting of one host, shared by all its slots."""

    def __init__(self, spec: HostSpec, launcher, quarantine_after: int) -> None:
        self.spec = spec
        self.launcher = launcher
        self.quarantine_after = quarantine_after
        self.consecutive_deaths = 0
        self.completed = 0
        self.spawns = 0
        self.quarantined = False

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def budget(self) -> int:
        return self.spec.workers

    def record_death(self) -> bool:
        """Count one worker death; ``True`` when this newly quarantines."""
        self.consecutive_deaths += 1
        if not self.quarantined and self.consecutive_deaths > self.quarantine_after:
            self.quarantined = True
            return True
        return False

    def record_success(self) -> None:
        self.consecutive_deaths = 0
        self.completed += 1


class HostPool:
    """TCP listener matching connect-back workers to pending launches."""

    def __init__(self, listen_host: str = "127.0.0.1", listen_port: int = 0) -> None:
        self.listen_host = listen_host
        self.listen_port = listen_port
        self.port: Optional[int] = None
        self.rejected = 0
        self._server: Optional["asyncio.AbstractServer"] = None
        self._pending: Dict[str, "asyncio.Future"] = {}

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._accept, self.listen_host, self.listen_port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    def expect(self, token: str) -> "asyncio.Future":
        """Future resolving to ``(reader, writer, hello)`` for ``token``."""
        future = asyncio.get_running_loop().create_future()
        self._pending[token] = future
        return future

    def forget(self, token: str) -> None:
        self._pending.pop(token, None)

    async def _accept(
        self, reader: "asyncio.StreamReader", writer: "asyncio.StreamWriter"
    ) -> None:
        """Validate one inbound connection's hello; reject everything else."""
        try:
            hello = await asyncio.wait_for(
                protocol.read_frame_async(reader), HELLO_TIMEOUT
            )
        except (
            asyncio.TimeoutError,
            asyncio.IncompleteReadError,
            protocol.ProtocolError,
            ConnectionResetError,
            OSError,
        ):
            hello = None
        # Validate *before* consuming the pending future: a malformed frame
        # carrying a real token must not eat the launch's future (the real
        # worker would then be rejected and the slot stall out the full
        # connect timeout).
        valid = isinstance(hello, dict) and hello.get("type") == "hello"
        token = hello.get("token") if valid else None
        future = self._pending.pop(token, None) if isinstance(token, str) else None
        if not valid or future is None or future.done():
            self.rejected += 1
            try:
                writer.close()
            except OSError:  # pragma: no cover - already torn down
                pass
            return
        future.set_result((reader, writer, hello))

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            try:
                await self._server.wait_closed()
            except (OSError, RuntimeError):  # pragma: no cover
                pass
            self._server = None
        for future in self._pending.values():
            if not future.done():
                future.cancel()
        self._pending.clear()


class MultiHostBackend(AsyncWorkerBackend):
    """Cluster supervisor dispatching experiments to connect-back workers.

    The dispatch loop, heartbeats, retry/requeue, streaming store and
    determinism guarantees are inherited from
    :class:`~repro.exp.distributed.AsyncWorkerBackend`; this subclass only
    changes *where workers come from*: each of the ``sum(budgets)`` slots is
    bound to a host, acquires workers by launching them there
    (:class:`LocalLauncher` / :class:`SSHLauncher`) and waits for the
    connect-back on the :class:`HostPool` listener.

    Parameters (beyond the base class)
    ----------------------------------
    hosts:
        ``"host1:4,host2:8"``, or a sequence of such strings /
        :class:`HostSpec` objects.  Budgets replace ``num_workers``.
    listen_host / listen_port:
        Bind address of the connect-back listener.  Port ``0`` (default)
        picks an ephemeral port; cluster deployments bind a fixed
        ``0.0.0.0:PORT``.
    connect_host:
        Address workers dial back to.  Defaults to ``127.0.0.1`` for local
        hosts and this machine's hostname for SSH hosts.
    compress:
        Negotiate zlib frame compression with each worker (on by default;
        frames below the protocol's size floor always stay raw).
    host_quarantine_retries:
        Consecutive worker deaths (without a completed job in between) a
        *host* tolerates before it is quarantined; defaults to
        ``spawn_retries``.
    connect_timeout:
        Seconds a launched worker gets to connect back.
    ssh_command:
        SSH client argv prefix for SSH hosts.
    """

    def __init__(
        self,
        hosts: Union[str, Sequence[Union[str, HostSpec]]],
        *,
        listen_host: str = "127.0.0.1",
        listen_port: int = 0,
        connect_host: Optional[str] = None,
        connect_timeout: float = DEFAULT_CONNECT_TIMEOUT,
        compress: bool = True,
        host_quarantine_retries: Optional[int] = None,
        ssh_command: Sequence[str] = ("ssh", "-o", "BatchMode=yes"),
        remote_python: str = "python3",
        **kwargs,
    ) -> None:
        self.host_specs = parse_hosts(hosts)
        super().__init__(
            num_workers=sum(spec.workers for spec in self.host_specs), **kwargs
        )
        self.listen_host = listen_host
        self.listen_port = listen_port
        self.connect_host = connect_host
        self.connect_timeout = connect_timeout
        self.compress = compress
        self.host_quarantine_retries = (
            host_quarantine_retries
            if host_quarantine_retries is not None
            else self.spawn_retries
        )
        self.ssh_command = tuple(ssh_command)
        self.remote_python = remote_python
        self.host_stats: Dict[str, Dict[str, object]] = {}
        self._hosts: List[HostState] = []
        self._pool: Optional[HostPool] = None
        self._handles: List["asyncio.subprocess.Process"] = []
        self._token_counter = 0

    # ------------------------------------------------------------------
    def _launcher_for(self, spec: HostSpec):
        if spec.is_local:
            return LocalLauncher(python=spec.python or self.python)
        return SSHLauncher(
            spec.name,
            python=spec.python or self.remote_python,
            ssh_command=self.ssh_command,
        )

    def _connect_host_for(self, host: HostState) -> str:
        if self.connect_host:
            return self.connect_host
        if host.spec.is_local:
            return "127.0.0.1"
        return socket.gethostname()

    # ------------------------------------------------------------------
    async def _startup(self) -> None:
        self._pool = HostPool(self.listen_host, self.listen_port)
        await self._pool.start()
        self._hosts = [
            HostState(spec, self._launcher_for(spec), self.host_quarantine_retries)
            for spec in self.host_specs
        ]
        self._handles = []
        self._token_counter = 0
        self.host_stats = {}

    async def _teardown(self) -> None:
        if self._pool is not None:
            await self._pool.close()
            self._pool = None
        for handle in self._handles:
            if handle.returncode is None:
                try:
                    handle.kill()
                except (OSError, ProcessLookupError):
                    pass
            try:
                await asyncio.wait_for(handle.wait(), timeout=5.0)
            except BaseException:  # pragma: no cover - unreapable child
                pass
        self._handles = []
        self.host_stats = {
            host.name: {
                "spawns": host.spawns,
                "completed": host.completed,
                "quarantined": host.quarantined,
            }
            for host in self._hosts
        }

    def host_snapshot(self) -> Dict[str, Dict[str, object]]:
        """Live per-host health accounting (the service's ``stats`` frame).

        ``host_stats`` is only written at :meth:`_teardown`, which a
        persistent service never reaches while serving; this reads the same
        numbers from the live :class:`HostState` objects instead.
        """
        return {
            host.name: {
                "budget": host.budget,
                "spawns": host.spawns,
                "completed": host.completed,
                "consecutive_deaths": host.consecutive_deaths,
                "quarantined": host.quarantined,
            }
            for host in self._hosts
        }

    def _slot_coroutines(
        self,
        queue: "asyncio.Queue[_Job]",
        finish: Callable[[_Job, Outcome], None],
        num_jobs: int,
    ) -> List[Coroutine]:
        coroutines: List[Coroutine] = []
        for host in self._hosts:
            for _ in range(host.budget):
                coroutines.append(
                    self._worker_slot(
                        queue,
                        finish,
                        spawn=partial(self._spawn_host_worker, host),
                        host=host,
                    )
                )
        return coroutines

    async def _spawn_host_worker(self, host: HostState) -> _Worker:
        """Launch one worker on ``host`` and wait for its connect-back."""
        # The random suffix makes the token unguessable: on a listener bound
        # beyond loopback, a peer must not be able to claim a worker slot
        # (and feed forged results into the store) by predicting tokens.
        # The host#counter prefix is for humans reading logs.
        token = (
            f"{host.name}#{self._token_counter}#{secrets.token_hex(16)}"
        )
        self._token_counter += 1
        future = self._pool.expect(token)
        extra_env = dict(self.worker_env)
        if host.spec.env:
            extra_env.update(host.spec.env)
        try:
            handle = await host.launcher.launch(
                connect_host=self._connect_host_for(host),
                port=self._pool.port,
                token=token,
                env=extra_env,
            )
        except (OSError, ValueError) as exc:
            self._pool.forget(token)
            raise SpawnError(
                f"cannot launch a worker on host {host.name!r}: {exc}"
            ) from exc
        self._handles.append(handle)
        try:
            reader, writer, hello = await asyncio.wait_for(
                future, self.connect_timeout
            )
        except BaseException as exc:
            self._pool.forget(token)
            try:
                handle.kill()
            except (OSError, ProcessLookupError):
                pass
            if isinstance(exc, asyncio.TimeoutError):
                raise SpawnError(
                    f"worker launched on host {host.name!r} never connected back"
                ) from exc
            raise  # cancellation during shutdown must propagate

        compress_frames = self.compress and bool(hello.get("compress"))
        try:
            writer.write(
                protocol.encode_frame(
                    {"type": "hello_ack", "compress": compress_frames}
                )
            )
            await writer.drain()
        except (OSError, ConnectionResetError) as exc:
            try:
                handle.kill()
            except (OSError, ProcessLookupError):
                pass
            raise SpawnError(
                f"worker on host {host.name!r} hung up during negotiation"
            ) from exc

        def kill_process(handle=handle, writer=writer):
            # Close the channel first so the remote end sees EOF even when
            # only the local ssh client dies, then kill the local handle.
            try:
                writer.close()
            except (OSError, RuntimeError):
                pass
            handle.kill()

        worker = _Worker.from_connection(
            reader,
            writer,
            pid=int(hello.get("pid") or 0),
            kill_process=kill_process,
            wait_process=handle.wait,
            host=host.name,
            compress_out=compress_frames,
            hello=hello,
        )
        self._register_worker(worker)
        host.spawns += 1
        return worker

    def _kill_leftovers(self) -> None:
        """Kill launcher handles by local pid; remote pids are not ours."""
        for handle in self._handles:
            if handle.returncode is None:
                try:
                    os.kill(handle.pid, getattr(signal, "SIGKILL", signal.SIGTERM))
                except (OSError, ProcessLookupError):
                    pass
        self._handles = []
        self._pids.clear()
        self._workers.clear()
