"""Experiment worker process (``python -m repro.exp.worker``).

A worker speaks the length-prefixed JSON protocol of
:mod:`repro.exp.protocol` over its stdin/stdout pipes (default) or over a TCP
socket (``--connect HOST PORT``), which is what will let the same entrypoint
run on a remote host behind ``ssh host python -m repro.exp.worker`` without a
new protocol.

Two threads cooperate:

* the **reader thread** parses incoming frames: ``ping`` is answered with
  ``pong`` immediately — even while a simulation is running, so supervisor
  heartbeats measure process liveness rather than job length — while ``run``
  jobs are handed to the main thread and ``shutdown``/EOF ends the process;
* the **main thread** executes jobs one at a time through
  :func:`repro.exp.runner.run_spec` (sharing its per-process trace memo, so a
  worker that receives many specs of one benchmark generates the trace once)
  and answers each with exactly one ``result`` or ``error`` frame.  A spec
  that raises produces an ``error`` frame and the worker stays alive.

Stray ``print`` calls anywhere in the simulation stack cannot corrupt the
frame stream: in stdio mode ``sys.stdout`` is rebound to stderr before any
job runs, and all frame writes go through one lock-guarded writer.

Fault injection (tests only): the ``REPRO_EXP_WORKER_FAULT`` environment
variable, formatted ``<key-prefix>:<flag-file>``, makes the worker SIGKILL
itself the first time it receives a spec whose content key starts with the
prefix — the flag file is created first (with ``O_EXCL``, so exactly one
worker dies once per flag file), letting the test suite deterministically
exercise the supervisor's requeue path.
"""

from __future__ import annotations

import argparse
import os
import queue
import signal
import socket
import sys
import threading
from typing import BinaryIO, Dict, Optional, Sequence

from repro.exp import protocol
from repro.exp.runner import run_spec
from repro.exp.spec import ExperimentFailure, ExperimentSpec

#: Test-only fault hook; see the module docstring.
FAULT_ENV = "REPRO_EXP_WORKER_FAULT"


class _FrameWriter:
    """Serialises frame writes from the main and reader threads."""

    def __init__(self, stream: BinaryIO) -> None:
        self._stream = stream
        self._lock = threading.Lock()

    def send(self, message: Dict[str, object]) -> None:
        with self._lock:
            protocol.write_frame(self._stream, message)


def _maybe_inject_fault(spec_key: str) -> None:
    raw = os.environ.get(FAULT_ENV)
    if not raw:
        return
    prefix, _, flag_file = raw.partition(":")
    if not flag_file or not spec_key.startswith(prefix):
        return
    try:
        fd = os.open(flag_file, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return  # some worker already died on this spec; run it normally
    os.close(fd)
    os.kill(os.getpid(), signal.SIGKILL)


def serve(reader_stream: BinaryIO, writer_stream: BinaryIO) -> None:
    """Serve the worker protocol until ``shutdown`` or EOF."""
    out = _FrameWriter(writer_stream)
    out.send({
        "type": "hello",
        "pid": os.getpid(),
        "protocol": protocol.PROTOCOL_VERSION,
    })
    jobs: "queue.Queue[Optional[Dict[str, object]]]" = queue.Queue()

    def read_loop() -> None:
        while True:
            try:
                message = protocol.read_frame(reader_stream)
            except (protocol.ProtocolError, OSError):
                message = None
            if message is None:  # EOF or torn stream: drain and exit
                jobs.put(None)
                return
            kind = message.get("type")
            if kind == "ping":
                try:
                    out.send({"type": "pong", "seq": message.get("seq")})
                except OSError:
                    jobs.put(None)
                    return
            elif kind == "run":
                jobs.put(message)
            elif kind == "shutdown":
                jobs.put(None)
                return
            # unknown frame types are ignored (forward compatibility)

    threading.Thread(target=read_loop, daemon=True).start()
    while True:
        job = jobs.get()
        if job is None:
            return
        job_id = job.get("job")
        spec_key = ""
        try:
            spec = ExperimentSpec.from_dict(job["spec"])
            spec_key = spec.content_key()
            _maybe_inject_fault(spec_key)
            result = run_spec(spec)
            out.send({"type": "result", "job": job_id, "result": result.to_dict()})
        except Exception as error:
            failure = ExperimentFailure.from_exception(spec_key, error)
            out.send({"type": "error", "job": job_id, "error": failure.to_dict()})


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Worker entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro.exp.worker",
        description="experiment worker speaking the repro.exp frame protocol",
    )
    parser.add_argument(
        "--connect", nargs=2, metavar=("HOST", "PORT"), default=None,
        help="connect to a supervisor socket instead of using stdin/stdout",
    )
    args = parser.parse_args(argv)

    if args.connect is not None:
        host, port = args.connect
        with socket.create_connection((host, int(port))) as connection:
            with connection.makefile("rb") as reader_stream, \
                    connection.makefile("wb") as writer_stream:
                serve(reader_stream, writer_stream)
        return 0

    reader_stream = sys.stdin.buffer
    writer_stream = sys.stdout.buffer
    # Frames own the real stdout; reroute stray prints to stderr.
    sys.stdout = sys.stderr
    serve(reader_stream, writer_stream)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised in subprocesses
    sys.exit(main())
