"""Experiment worker process (``python -m repro.exp.worker``).

A worker speaks the length-prefixed JSON protocol of
:mod:`repro.exp.protocol` over its stdin/stdout pipes (default) or over a TCP
socket (``--connect HOST PORT``), which is what lets the same entrypoint run
on a remote host behind ``ssh host python -m repro.exp.worker`` without a new
protocol.  In connect mode the initial TCP connect is retried with
exponential backoff (``--connect-retries`` / ``--connect-backoff``), so
workers launched before the supervisor's listener is up still join instead of
dying on the first refused connection; ``--token`` is echoed in the ``hello``
frame so a multi-host supervisor can match the inbound connection to the
launch that created it.

Two threads cooperate:

* the **reader thread** parses incoming frames: ``ping`` is answered with
  ``pong`` immediately — even while a simulation is running, so supervisor
  heartbeats measure process liveness rather than job length; each pong
  carries the worker's trace-memo counters as a ``memo`` field —
  ``hello_ack``
  records whether the supervisor negotiated compressed frames, ``run`` jobs
  (and the jobs of a ``run_batch`` frame, unpacked in order) are handed to
  the main thread and ``shutdown``/EOF ends the process;
* the **main thread** executes jobs one at a time through
  :func:`repro.exp.runner.run_spec` (sharing its per-process trace memo, so a
  worker that receives many specs of one benchmark generates the trace once)
  and answers each with exactly one ``result`` or ``error`` frame.  A spec
  that raises produces an ``error`` frame and the worker stays alive.

Stray ``print`` calls anywhere in the simulation stack cannot corrupt the
frame stream: in stdio mode ``sys.stdout`` is rebound to stderr before any
job runs, and all frame writes go through one lock-guarded writer.

Fault injection (tests only): the ``REPRO_EXP_WORKER_FAULT`` environment
variable, formatted ``<key-prefix>:<flag-file>[:<mode>]``, makes the worker
SIGKILL itself when it receives a spec whose content key starts with the
prefix.  In the default (die-once) mode the flag file is created first with
``O_EXCL``, so exactly one worker dies once per flag file — the supervisor's
requeue path.  With mode ``always`` every worker holding a matching spec
dies every time (the flag file is still touched, without exclusivity) — the
crash-looping-host path that exercises quarantine.

Three more test/benchmark-only hooks share that spirit:

* ``REPRO_EXP_WORKER_EXECLOG=<path>`` appends one ``<content-key>`` line to
  the file whenever a spec *starts executing* (``O_APPEND``, so concurrent
  workers interleave whole lines).  The batching suite counts these lines to
  prove that acknowledged specs are never executed twice.
* ``REPRO_EXP_WORKER_DELAY=<seconds>`` sleeps before every frame write and
  after every frame read — a simulated per-frame link latency, which is what
  makes round-trip amortisation measurable on a loopback pipe.
* ``REPRO_EXP_WORKER_COMPAT=<version>`` caps the protocol version the worker
  speaks: ``2`` makes it behave as a pre-batching peer (no ``batch``
  capability in the hello, ``run_batch`` frames ignored), which is how the
  negotiation-fallback tests fake an old worker without keeping one around.
"""

from __future__ import annotations

import argparse
import os
import queue
import signal
import socket
import sys
import threading
import time
from typing import BinaryIO, Dict, Optional, Sequence

from repro.exp import protocol
from repro.exp.runner import run_spec, trace_memo_stats
from repro.exp.spec import ExperimentFailure, ExperimentSpec

#: Test-only fault hook; see the module docstring.
FAULT_ENV = "REPRO_EXP_WORKER_FAULT"

#: Test-only execution-count probe; see the module docstring.
EXEC_LOG_ENV = "REPRO_EXP_WORKER_EXECLOG"

#: Test/benchmark-only simulated per-frame link latency (seconds).
DELAY_ENV = "REPRO_EXP_WORKER_DELAY"

#: Test-only protocol downgrade (fake an old peer); see the module docstring.
COMPAT_ENV = "REPRO_EXP_WORKER_COMPAT"

#: Default bounded-retry budget for ``--connect`` (first attempt excluded).
DEFAULT_CONNECT_RETRIES = 12

#: Initial backoff between connect attempts; doubles per attempt, capped.
DEFAULT_CONNECT_BACKOFF = 0.2

_CONNECT_BACKOFF_CAP = 2.0


class _FrameWriter:
    """Serialises frame writes from the main and reader threads.

    ``compress`` starts off (stdio links never negotiate compression) and is
    flipped by the reader thread when a ``hello_ack`` grants it; a plain bool
    assignment is atomic under the GIL, and frame ordering guarantees the ack
    is processed before any job whose answer could be compressed.
    """

    def __init__(self, stream: BinaryIO, delay: float = 0.0) -> None:
        self._stream = stream
        self._lock = threading.Lock()
        self._delay = delay
        self.compress = False

    def send(self, message: Dict[str, object]) -> None:
        with self._lock:
            if self._delay:
                time.sleep(self._delay)
            protocol.write_frame(self._stream, message, compress=self.compress)


def _frame_delay() -> float:
    """Simulated per-frame link latency (0 outside tests/benchmarks)."""
    try:
        return max(0.0, float(os.environ.get(DELAY_ENV, "") or 0.0))
    except ValueError:
        return 0.0


def _protocol_version() -> int:
    """Protocol version to speak (capped by the compat downgrade hook)."""
    raw = os.environ.get(COMPAT_ENV)
    try:
        capped = int(raw) if raw else protocol.PROTOCOL_VERSION
    except ValueError:
        return protocol.PROTOCOL_VERSION
    return min(max(capped, 1), protocol.PROTOCOL_VERSION)


def _log_execution(spec_key: str) -> None:
    """Append one started-execution line to the probe file, if configured."""
    path = os.environ.get(EXEC_LOG_ENV)
    if not path:
        return
    fd = os.open(path, os.O_CREAT | os.O_APPEND | os.O_WRONLY, 0o644)
    try:
        os.write(fd, (spec_key + "\n").encode("utf-8"))
    finally:
        os.close(fd)


def _maybe_inject_fault(spec_key: str) -> None:
    raw = os.environ.get(FAULT_ENV)
    if not raw:
        return
    prefix, _, rest = raw.partition(":")
    flag_file, _, mode = rest.partition(":")
    if not flag_file or not spec_key.startswith(prefix):
        return
    if mode == "always":
        with open(flag_file, "a", encoding="utf-8"):
            pass
        os.kill(os.getpid(), signal.SIGKILL)
    try:
        fd = os.open(flag_file, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return  # some worker already died on this spec; run it normally
    os.close(fd)
    os.kill(os.getpid(), signal.SIGKILL)


def serve(
    reader_stream: BinaryIO,
    writer_stream: BinaryIO,
    token: Optional[str] = None,
) -> None:
    """Serve the worker protocol until ``shutdown`` or EOF."""
    version = _protocol_version()
    delay = _frame_delay()
    out = _FrameWriter(writer_stream, delay=delay)
    hello: Dict[str, object] = {
        "type": "hello",
        "pid": os.getpid(),
        "protocol": version,
        "compress": True,
    }
    if version >= 3:
        hello["batch"] = True
    if token is not None:
        hello["token"] = token
    out.send(hello)
    jobs: "queue.Queue[Optional[Dict[str, object]]]" = queue.Queue()
    # Set on shutdown/EOF: the main thread stops *before* the next job, so
    # a worker holding a deep run_batch queue exits after the job in hand
    # instead of grinding through work whose answers nobody wants anymore.
    closing = threading.Event()

    def read_loop() -> None:
        while True:
            try:
                message = protocol.read_frame(reader_stream)
            except (protocol.ProtocolError, OSError):
                message = None
            if message is None:  # EOF or torn stream: drain and exit
                closing.set()
                jobs.put(None)
                return
            if delay:
                time.sleep(delay)
            kind = message.get("type")
            if kind == "ping":
                try:
                    # Heartbeat answers double as a status channel: the
                    # worker's trace-memo counters ride along, so a
                    # supervisor can observe cache behaviour (hit rate,
                    # evictions) without a dedicated stats frame.  Old
                    # supervisors ignore unknown pong keys.
                    out.send({
                        "type": "pong",
                        "seq": message.get("seq"),
                        "memo": trace_memo_stats(),
                    })
                except OSError:
                    jobs.put(None)
                    return
            elif kind == "run":
                jobs.put(message)
            elif kind == "run_batch" and version >= 3:
                # One queue entry per job, in batch order; the main thread
                # answers each with its own result/error frame, which is
                # what lets the supervisor requeue only unacknowledged
                # specs when this process dies mid-batch.
                for entry in message.get("jobs") or []:
                    if isinstance(entry, dict):
                        jobs.put({"job": entry.get("job"),
                                  "spec": entry.get("spec")})
            elif kind == "hello_ack":
                out.compress = bool(message.get("compress"))
            elif kind == "shutdown":
                closing.set()
                jobs.put(None)
                return
            # unknown frame types are ignored (forward compatibility)

    threading.Thread(target=read_loop, daemon=True).start()
    while True:
        job = jobs.get()
        if job is None or closing.is_set():
            return
        job_id = job.get("job")
        spec_key = ""
        try:
            spec = ExperimentSpec.from_dict(job["spec"])
            spec_key = spec.content_key()
            _log_execution(spec_key)
            _maybe_inject_fault(spec_key)
            result = run_spec(spec)
            out.send({"type": "result", "job": job_id, "result": result.to_dict()})
        except Exception as error:
            failure = ExperimentFailure.from_exception(spec_key, error)
            out.send({"type": "error", "job": job_id, "error": failure.to_dict()})


def connect_with_retry(
    host: str,
    port: int,
    retries: int = DEFAULT_CONNECT_RETRIES,
    backoff: float = DEFAULT_CONNECT_BACKOFF,
) -> socket.socket:
    """Connect to the supervisor, retrying refused/unreachable attempts.

    A connect-back worker routinely races its supervisor's listener (the
    launcher fires before ``asyncio.start_server`` finished binding, or an
    SSH session comes up faster than the supervisor), so a failed TCP
    connect is retried ``retries`` times with exponential backoff
    (``backoff``, ``2*backoff``, ... capped at 2 s) before giving up.
    """
    attempt = 0
    while True:
        try:
            connection = socket.create_connection((host, port), timeout=10.0)
            # The 10s deadline is for the *connect* only.  It must not leak
            # into the connection's lifetime: reads block between frames for
            # arbitrarily long (pings only arrive every heartbeat interval,
            # and a supervisor stalled on a slow store write sends nothing),
            # and a socket.timeout is an OSError the reader would mistake
            # for EOF, silently killing every idle worker.
            connection.settimeout(None)
            return connection
        except OSError:
            if attempt >= retries:
                raise
            time.sleep(min(backoff * (2.0 ** attempt), _CONNECT_BACKOFF_CAP))
            attempt += 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Worker entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro.exp.worker",
        description="experiment worker speaking the repro.exp frame protocol",
    )
    parser.add_argument(
        "--connect", nargs=2, metavar=("HOST", "PORT"), default=None,
        help="connect to a supervisor socket instead of using stdin/stdout",
    )
    parser.add_argument(
        "--connect-retries", type=int, default=DEFAULT_CONNECT_RETRIES,
        help="failed TCP connects tolerated before giving up "
             f"(default {DEFAULT_CONNECT_RETRIES})",
    )
    parser.add_argument(
        "--connect-backoff", type=float, default=DEFAULT_CONNECT_BACKOFF,
        help="initial sleep between connect attempts, doubled per attempt "
             f"(default {DEFAULT_CONNECT_BACKOFF}s, capped at "
             f"{_CONNECT_BACKOFF_CAP}s)",
    )
    parser.add_argument(
        "--token", default=None,
        help="opaque launch token echoed in the hello frame (multi-host "
             "supervisors use it to match connections to launches)",
    )
    args = parser.parse_args(argv)

    if args.connect is not None:
        host, port = args.connect
        try:
            connection = connect_with_retry(
                host, int(port),
                retries=max(0, args.connect_retries),
                backoff=max(0.0, args.connect_backoff),
            )
        except OSError as exc:
            print(f"repro.exp.worker: cannot reach supervisor "
                  f"{host}:{port}: {exc}", file=sys.stderr)
            return 1
        with connection:
            with connection.makefile("rb") as reader_stream, \
                    connection.makefile("wb") as writer_stream:
                serve(reader_stream, writer_stream, token=args.token)
        return 0

    reader_stream = sys.stdin.buffer
    writer_stream = sys.stdout.buffer
    # Frames own the real stdout; reroute stray prints to stderr.
    sys.stdout = sys.stderr
    serve(reader_stream, writer_stream, token=args.token)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised in subprocesses
    sys.exit(main())
