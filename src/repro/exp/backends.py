"""Pluggable execution backends and the ``run_experiments`` driver.

A backend executes a list of *unique* :class:`ExperimentSpec` objects and
returns their results in the same order.  :func:`run_experiments` is the
entry point every consumer goes through: it deduplicates the submitted specs
by content key (so the detailed baselines a grid shares are simulated exactly
once no matter how many sampled experiments reference them), satisfies what
it can from an optional result store, dispatches only the misses to the
backend, persists the fresh results and returns them in submission order.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Protocol, Sequence, Union

from repro.exp.runner import run_spec
from repro.exp.spec import ExperimentResult, ExperimentSpec
from repro.exp.store import MemoryResultStore, ResultStore

Store = Union[ResultStore, MemoryResultStore]


class ExecutionBackend(Protocol):
    """Executes unique experiment specs; results in submission order."""

    def run(self, specs: Sequence[ExperimentSpec]) -> List[ExperimentResult]:
        """Execute ``specs`` and return one result per spec, in order."""
        ...


class SerialBackend:
    """Runs every experiment in the calling process, one after another."""

    def run(self, specs: Sequence[ExperimentSpec]) -> List[ExperimentResult]:
        return [run_spec(spec) for spec in specs]


class ProcessPoolBackend:
    """Shards experiments across worker processes.

    Each spec is one unit of work; ``concurrent.futures`` maps them over the
    pool and returns results in submission order, so the output is
    deterministic and identical to :class:`SerialBackend` regardless of the
    worker count or completion order.  Specs are self-contained (workers
    regenerate traces from the spec), so nothing but the spec crosses the
    process boundary on the way in.

    Parameters
    ----------
    max_workers:
        Size of the process pool; defaults to the host's CPU count.
    chunksize:
        Number of specs handed to a worker per dispatch; larger chunks
        amortise IPC for big grids of small experiments.
    """

    def __init__(self, max_workers: Optional[int] = None, chunksize: int = 1) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if chunksize < 1:
            raise ValueError("chunksize must be >= 1")
        self.max_workers = max_workers
        self.chunksize = chunksize

    def run(self, specs: Sequence[ExperimentSpec]) -> List[ExperimentResult]:
        if not specs:
            return []
        # Defensive dedup: run_experiments already submits unique specs, but
        # a directly-driven backend must still simulate shared baselines once.
        unique: Dict[str, ExperimentSpec] = {}
        for spec in specs:
            unique.setdefault(spec.content_key(), spec)
        with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
            results = list(
                pool.map(run_spec, list(unique.values()), chunksize=self.chunksize)
            )
        by_key = dict(zip(unique.keys(), results))
        return [by_key[spec.content_key()] for spec in specs]


def make_backend(jobs: Optional[int]) -> ExecutionBackend:
    """Backend for ``jobs`` parallel workers (``None``/``0``/``1`` = serial)."""
    if jobs is None or jobs <= 1:
        return SerialBackend()
    return ProcessPoolBackend(max_workers=jobs)


def run_experiments(
    specs: Sequence[ExperimentSpec],
    backend: Optional[ExecutionBackend] = None,
    store: Optional[Store] = None,
) -> List[ExperimentResult]:
    """Execute ``specs`` and return their results in submission order.

    Parameters
    ----------
    specs:
        Experiments to run.  Duplicates (by content key) are executed once
        and their shared result is returned at every submission position.
    backend:
        Execution backend; defaults to :class:`SerialBackend`.
    store:
        Optional result store consulted before execution and updated after;
        a warm store turns an unchanged grid into a pure cache hit.
    """
    backend = backend if backend is not None else SerialBackend()
    keys = [spec.content_key() for spec in specs]
    unique: Dict[str, ExperimentSpec] = {}
    for spec, key in zip(specs, keys):
        unique.setdefault(key, spec)

    results: Dict[str, ExperimentResult] = {}
    missing: List[ExperimentSpec] = []
    for key, spec in unique.items():
        cached = store.get(spec) if store is not None else None
        if cached is not None:
            results[key] = cached
        else:
            missing.append(spec)

    if missing:
        fresh = backend.run(missing)
        for spec, result in zip(missing, fresh):
            key = spec.content_key()
            results[key] = result
            if store is not None:
                store.put(spec, result)

    return [results[key] for key in keys]
