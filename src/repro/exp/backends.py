"""Pluggable execution backends and the ``run_experiments`` driver.

A backend executes a list of *unique* :class:`ExperimentSpec` objects and
returns their results in the same order.  :func:`run_experiments` is the
entry point every consumer goes through: it deduplicates the submitted specs
by content key (so the detailed baselines a grid shares are simulated exactly
once no matter how many sampled experiments reference them), satisfies what
it can from an optional result store, dispatches only the misses to the
backend, persists the fresh results and returns them in submission order.

Failure isolation: a spec whose workload raises does not poison its batch.
Every backend runs the remaining specs to completion and reports the broken
one as an :class:`~repro.exp.spec.ExperimentFailure`; ``run_experiments``
records failures in the store (as ``<key>.error.json`` diagnostics) and then
either raises one aggregated :class:`ExperimentExecutionError` (default) or,
with ``on_error="record"``, returns ``None`` at the failed positions.

Three backends ship with the repository:

* :class:`SerialBackend` — in-process, one spec after another,
* :class:`ProcessPoolBackend` — ``concurrent.futures`` process pool,
* :class:`~repro.exp.distributed.AsyncWorkerBackend` — asyncio supervisor
  over worker subprocesses speaking the length-prefixed JSON protocol, with
  heartbeats, retry/requeue on worker death and graceful cancellation.

All three are result-identical: the same spec grid produces bit-identical
results (and byte-identical store entries) regardless of the backend, worker
count or completion order.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Dict, List, Optional, Protocol, Sequence, Union

from repro.exp.runner import run_spec
from repro.exp.spec import ExperimentFailure, ExperimentResult, ExperimentSpec
from repro.exp.store import MemoryResultStore, ResultStore

Store = Union[ResultStore, MemoryResultStore]

#: What a backend produces per spec: a result, or a failure record.
Outcome = Union[ExperimentResult, ExperimentFailure]

#: Backend names accepted by :func:`make_named_backend` and the CLI.
BACKEND_NAMES = ("auto", "serial", "pool", "async", "multihost")


class ExperimentExecutionError(RuntimeError):
    """One or more specs of a batch failed (after the rest completed)."""

    def __init__(self, failures: Sequence[ExperimentFailure]) -> None:
        self.failures = list(failures)
        lines = [failure.describe() for failure in self.failures[:5]]
        if len(self.failures) > 5:
            lines.append(f"... and {len(self.failures) - 5} more")
        super().__init__(
            f"{len(self.failures)} experiment(s) failed:\n  " + "\n  ".join(lines)
        )


def run_spec_outcome(spec: ExperimentSpec) -> Outcome:
    """Execute one spec, condensing any exception into a failure record.

    Module-level so process-pool workers can pickle it by reference.
    """
    try:
        return run_spec(spec)
    except Exception as error:
        return ExperimentFailure.from_exception(spec.content_key(), error)


def _raise_on_failure(outcomes: Sequence[Outcome]) -> List[ExperimentResult]:
    failures = [o for o in outcomes if isinstance(o, ExperimentFailure)]
    if failures:
        raise ExperimentExecutionError(failures)
    return list(outcomes)


def map_unique(
    specs: Sequence[ExperimentSpec],
    runner: "Callable[[List[ExperimentSpec]], Sequence[Outcome]]",
) -> List[Outcome]:
    """Run ``runner`` over the unique specs, remapped to submission positions.

    The defensive dedup shared by the parallel backends: run_experiments
    already submits unique specs, but a directly-driven backend must still
    simulate shared baselines once.
    """
    unique: Dict[str, ExperimentSpec] = {}
    for spec in specs:
        unique.setdefault(spec.content_key(), spec)
    outcomes = runner(list(unique.values()))
    by_key = dict(zip(unique.keys(), outcomes))
    return [by_key[spec.content_key()] for spec in specs]


class ExecutionBackend(Protocol):
    """Executes unique experiment specs; results in submission order."""

    def run(self, specs: Sequence[ExperimentSpec]) -> List[ExperimentResult]:
        """Execute ``specs`` and return one result per spec, in order."""
        ...


class SerialBackend:
    """Runs every experiment in the calling process, one after another."""

    def run_outcomes(self, specs: Sequence[ExperimentSpec]) -> List[Outcome]:
        """Per-spec outcomes; a raising spec does not stop the batch."""
        return [run_spec_outcome(spec) for spec in specs]

    def run(self, specs: Sequence[ExperimentSpec]) -> List[ExperimentResult]:
        return _raise_on_failure(self.run_outcomes(specs))


class ProcessPoolBackend:
    """Shards experiments across worker processes.

    Each spec is one unit of work; ``concurrent.futures`` maps them over the
    pool and returns results in submission order, so the output is
    deterministic and identical to :class:`SerialBackend` regardless of the
    worker count or completion order.  Specs are self-contained (workers
    regenerate traces from the spec), so nothing but the spec crosses the
    process boundary on the way in.

    Parameters
    ----------
    max_workers:
        Size of the process pool; defaults to the host's CPU count.
    chunksize:
        Number of specs handed to a worker per dispatch; larger chunks
        amortise IPC for big grids of small experiments.  Per batch the
        effective chunk is additionally capped at the workers' fair share
        of the specs, so a large chunksize cannot serialise a small grid
        onto a fraction of the pool.
    """

    def __init__(self, max_workers: Optional[int] = None, chunksize: int = 1) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if chunksize < 1:
            raise ValueError("chunksize must be >= 1")
        self.max_workers = max_workers
        self.chunksize = chunksize

    def run_outcomes(self, specs: Sequence[ExperimentSpec]) -> List[Outcome]:
        """Per-spec outcomes; a raising spec does not poison the pool batch."""
        if not specs:
            return []

        def runner(unique_specs: List[ExperimentSpec]) -> List[Outcome]:
            workers = self.max_workers or os.cpu_count() or 1
            share = -(-len(unique_specs) // workers)  # ceil division
            chunksize = max(1, min(self.chunksize, share))
            with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
                return list(
                    pool.map(run_spec_outcome, unique_specs,
                             chunksize=chunksize)
                )

        return map_unique(specs, runner)

    def run(self, specs: Sequence[ExperimentSpec]) -> List[ExperimentResult]:
        return _raise_on_failure(self.run_outcomes(specs))


def make_backend(jobs: Optional[int], chunksize: int = 1) -> ExecutionBackend:
    """Backend for ``jobs`` parallel workers (``None``/``0``/``1`` = serial).

    ``chunksize`` is forwarded to the pool (specs per dispatch); it has no
    meaning for the serial fallback.
    """
    if jobs is None or jobs <= 1:
        return SerialBackend()
    return ProcessPoolBackend(max_workers=jobs, chunksize=chunksize)


def make_named_backend(
    name: str,
    workers: Optional[int] = None,
    store: Optional[Store] = None,
    hosts: Optional[str] = None,
    listen: Optional[str] = None,
    connect_host: Optional[str] = None,
    batch: Union[None, int, str] = None,
) -> ExecutionBackend:
    """Backend selected by name: ``auto``, ``serial``, ``pool``, ``async``
    or ``multihost``.

    ``auto`` preserves the historical ``--jobs`` semantics (a pool when
    ``workers`` > 1, serial otherwise) — unless ``hosts`` is given, which
    selects ``multihost``.  ``async`` builds an
    :class:`~repro.exp.distributed.AsyncWorkerBackend`; ``multihost`` builds
    a :class:`~repro.exp.hosts.MultiHostBackend` from the ``hosts`` budget
    string (``"host1:4,host2:8"``) and the optional ``listen`` bind address
    (``"PORT"`` or ``"HOST:PORT"``).  For both, when ``store`` is an on-disk
    :class:`ResultStore` it is attached so completed experiments are
    streamed into it as they finish (and survive a cancelled run).

    ``batch`` (``N``, ``"adaptive"`` or ``"adaptive:N"``) bounds how many
    specs one dispatch carries.  For ``async``/``multihost`` it is the
    protocol-level ``run_batch`` frame size (adaptive sizing grows it from 1
    as specs prove cheap); for ``pool`` the cap maps onto the executor's
    ``chunksize`` (its native amortisation knob, with no adaptivity); a
    serial backend executes in-process, where there is no round-trip to
    amortise, so the knob is accepted and ignored.
    """
    from repro.exp.distributed import parse_batch

    batch_cap, batch_adaptive = parse_batch(batch)  # validate for every name
    if name == "auto" and hosts:
        name = "multihost"
    if name != "multihost" and (hosts or listen or connect_host):
        # Silently dropping a host list would run single-host while the
        # caller (e.g. REPRO_BENCH_BACKEND=async REPRO_BENCH_HOSTS=...)
        # believes the grid fanned out across machines.
        raise ValueError(
            "hosts/listen/connect_host only apply to the multihost backend "
            f"(got backend {name!r})"
        )
    if name == "auto":
        return make_backend(workers, chunksize=batch_cap)
    if name == "serial":
        return SerialBackend()  # in-process: no round-trip, batch is moot
    if name == "pool":
        return ProcessPoolBackend(max_workers=workers, chunksize=batch_cap)
    streaming = store if isinstance(store, ResultStore) else None
    if name == "async":
        from repro.exp.distributed import AsyncWorkerBackend

        # None defaults to 2; anything else (including 0) goes through the
        # backend's own validation instead of being silently reinterpreted.
        return AsyncWorkerBackend(
            num_workers=2 if workers is None else workers,
            batch=batch,
            store=streaming,
        )
    if name == "multihost":
        from repro.exp.hosts import MultiHostBackend, parse_listen

        if not hosts:
            raise ValueError(
                "the multihost backend needs a host list "
                "(--hosts host1:4,host2:8)"
            )
        listen_host, listen_port = parse_listen(listen)
        return MultiHostBackend(
            hosts,
            listen_host=listen_host,
            listen_port=listen_port,
            connect_host=connect_host,
            batch=batch,
            store=streaming,
        )
    raise ValueError(f"unknown backend {name!r} (choose from {BACKEND_NAMES})")


def _backend_outcomes(
    backend: ExecutionBackend, specs: Sequence[ExperimentSpec]
) -> List[Outcome]:
    """Run ``specs``, preferring the failure-isolating ``run_outcomes`` hook."""
    run_outcomes = getattr(backend, "run_outcomes", None)
    if run_outcomes is not None:
        return run_outcomes(specs)
    return list(backend.run(specs))


def run_experiments(
    specs: Sequence[ExperimentSpec],
    backend: Optional[ExecutionBackend] = None,
    store: Optional[Store] = None,
    on_error: str = "raise",
) -> List[Optional[ExperimentResult]]:
    """Execute ``specs`` and return their results in submission order.

    Parameters
    ----------
    specs:
        Experiments to run.  Duplicates (by content key) are executed once
        and their shared result is returned at every submission position.
    backend:
        Execution backend; defaults to :class:`SerialBackend`.
    store:
        Optional result store consulted before execution and updated after;
        a warm store turns an unchanged grid into a pure cache hit.  Failed
        specs are recorded as ``<key>.error.json`` diagnostics (never served
        as cached results, so a re-run retries them).
    on_error:
        ``"raise"`` (default) raises one :class:`ExperimentExecutionError`
        aggregating every failure — after all other specs completed and were
        persisted.  ``"record"`` returns ``None`` at the failed positions
        instead.
    """
    if on_error not in ("raise", "record"):
        raise ValueError("on_error must be 'raise' or 'record'")
    backend = backend if backend is not None else SerialBackend()
    keys = [spec.content_key() for spec in specs]
    unique: Dict[str, ExperimentSpec] = {}
    for spec, key in zip(specs, keys):
        unique.setdefault(key, spec)

    results: Dict[str, Optional[ExperimentResult]] = {}
    missing: List[ExperimentSpec] = []
    for key, spec in unique.items():
        cached = store.get(spec) if store is not None else None
        if cached is not None:
            results[key] = cached
        else:
            missing.append(spec)

    failures: List[ExperimentFailure] = []
    if missing:
        outcomes = _backend_outcomes(backend, missing)
        # A backend with this store attached (e.g. a streaming
        # AsyncWorkerBackend) already persisted each outcome on completion;
        # put_if_absent then only pays a validation read instead of
        # re-serialising and rewriting every entry.
        streamed = getattr(backend, "store", None) is store and store is not None
        for spec, outcome in zip(missing, outcomes):
            key = spec.content_key()
            if isinstance(outcome, ExperimentFailure):
                failures.append(outcome)
                results[key] = None
                if store is not None and not streamed:
                    store.record_failure(spec, outcome)
            else:
                results[key] = outcome
                if store is not None:
                    if streamed:
                        store.put_if_absent(spec, outcome)
                    else:
                        store.put(spec, outcome)

    if failures and on_error == "raise":
        raise ExperimentExecutionError(failures)
    return [results[key] for key in keys]
