"""Unified experiment orchestration.

Every evaluation in this repository — accuracy grids, parameter sweeps,
variation analyses, benchmark harnesses, the CLI — is a set of independent
experiments: simulate one workload on one architecture with one thread count
under one sampling configuration.  This package is the single substrate that
describes, schedules, executes and caches those experiments:

* :mod:`repro.exp.spec` — :class:`ExperimentSpec`, a frozen, hashable,
  JSON-serialisable experiment descriptor with a stable content key, and
  :class:`ExperimentResult`, its serialisable outcome,
* :mod:`repro.exp.backends` — pluggable execution backends
  (:class:`SerialBackend`, :class:`ProcessPoolBackend`) and the
  :func:`run_experiments` driver with automatic baseline deduplication,
* :mod:`repro.exp.store` — the persistent on-disk :class:`ResultStore`
  (keyed by spec content hash) and its in-memory sibling.

Typical use::

    from repro.exp import ExperimentSpec, ProcessPoolBackend, ResultStore, run_experiments
    from repro.core.config import lazy_config

    specs = [
        ExperimentSpec("cholesky", num_threads=t, scale=0.05, config=lazy_config())
        for t in (8, 16, 32, 64)
    ]
    specs += [spec.baseline() for spec in specs]       # shared detailed runs
    results = run_experiments(
        specs,
        backend=ProcessPoolBackend(max_workers=4),
        store=ResultStore("~/.cache/repro"),
    )
"""

from repro.exp.backends import (
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    make_backend,
    run_experiments,
)
from repro.exp.runner import get_trace, run_spec
from repro.exp.spec import ExperimentResult, ExperimentSpec
from repro.exp.store import (
    CACHE_DIR_ENV,
    MemoryResultStore,
    ResultStore,
    default_store,
)

__all__ = [
    "ExperimentSpec",
    "ExperimentResult",
    "ExecutionBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "make_backend",
    "run_experiments",
    "run_spec",
    "get_trace",
    "ResultStore",
    "MemoryResultStore",
    "default_store",
    "CACHE_DIR_ENV",
]
