"""Unified experiment orchestration.

Every evaluation in this repository — accuracy grids, parameter sweeps,
variation analyses, benchmark harnesses, the CLI — is a set of independent
experiments: simulate one workload on one architecture with one thread count
under one sampling configuration.  This package is the single substrate that
describes, schedules, executes and caches those experiments:

* :mod:`repro.exp.spec` — :class:`ExperimentSpec`, a frozen, hashable,
  JSON-serialisable experiment descriptor with a stable content key,
  :class:`ExperimentResult`, its serialisable outcome, and
  :class:`ExperimentFailure`, the serialisable record of a spec that raised,
* :mod:`repro.exp.backends` — pluggable execution backends
  (:class:`SerialBackend`, :class:`ProcessPoolBackend`) and the
  :func:`run_experiments` driver with automatic baseline deduplication and
  per-spec failure isolation,
* :mod:`repro.exp.distributed` — :class:`AsyncWorkerBackend`, an asyncio
  supervisor dispatching specs to ``repro.exp.worker`` subprocesses over a
  length-prefixed JSON frame protocol (:mod:`repro.exp.protocol`), with
  heartbeats, bounded retry/requeue on worker death, graceful cancellation
  and batched dispatch (``batch=``: several specs per protocol-v3
  ``run_batch`` frame, per-spec result acks, adaptive sizing via
  :class:`AdaptiveBatchSizer`),
* :mod:`repro.exp.hosts` — :class:`MultiHostBackend`, the multi-host
  transport on top of it: a TCP listener (:class:`HostPool`) accepting
  connect-back workers launched locally or via SSH, per-host worker
  budgets, host-level quarantine of crash-looping machines and negotiated
  zlib frame compression for high-latency links,
* :mod:`repro.exp.store` — the persistent on-disk :class:`ResultStore`
  (content-hash keyed, shard-per-key-prefix, advisory file locking for
  concurrent multi-process writers; pluggable directory/object-store
  layouts, size-bounded LRU compaction with pinning and hit/miss/eviction
  counters for the service daemon) and its in-memory sibling.

Typical use::

    from repro.exp import AsyncWorkerBackend, ExperimentSpec, ResultStore, run_experiments
    from repro.core.config import lazy_config

    specs = [
        ExperimentSpec("cholesky", num_threads=t, scale=0.05, config=lazy_config())
        for t in (8, 16, 32, 64)
    ]
    specs += [spec.baseline() for spec in specs]       # shared detailed runs
    results = run_experiments(
        specs,
        backend=AsyncWorkerBackend(num_workers=4),
        store=ResultStore("~/.cache/repro"),
    )
"""

from repro.exp.backends import (
    BACKEND_NAMES,
    ExecutionBackend,
    ExperimentExecutionError,
    ProcessPoolBackend,
    SerialBackend,
    make_backend,
    make_named_backend,
    run_experiments,
)
from repro.exp.distributed import (
    AdaptiveBatchSizer,
    AsyncWorkerBackend,
    parse_batch,
)
from repro.exp.hosts import (
    HostPool,
    HostSpec,
    MultiHostBackend,
    parse_hosts,
    parse_listen,
)
from repro.exp.runner import get_trace, run_spec
from repro.exp.spec import ExperimentFailure, ExperimentResult, ExperimentSpec
from repro.exp.store import (
    CACHE_DIR_ENV,
    LAYOUT_NAMES,
    DirectoryLayout,
    MemoryResultStore,
    ObjectStoreLayout,
    ResultStore,
    default_store,
    make_layout,
)

__all__ = [
    "ExperimentSpec",
    "ExperimentResult",
    "ExperimentFailure",
    "ExperimentExecutionError",
    "ExecutionBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "AsyncWorkerBackend",
    "AdaptiveBatchSizer",
    "parse_batch",
    "MultiHostBackend",
    "HostPool",
    "HostSpec",
    "parse_hosts",
    "parse_listen",
    "BACKEND_NAMES",
    "make_backend",
    "make_named_backend",
    "run_experiments",
    "run_spec",
    "get_trace",
    "ResultStore",
    "MemoryResultStore",
    "DirectoryLayout",
    "ObjectStoreLayout",
    "LAYOUT_NAMES",
    "make_layout",
    "default_store",
    "CACHE_DIR_ENV",
]
