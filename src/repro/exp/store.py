"""Persistent and in-memory experiment result stores.

The :class:`ResultStore` is an on-disk JSON cache keyed by the spec content
key.  Entries are sharded by the first two hex digits of the key
(``<dir>/<ab>/<key>.json``) so a store written by many concurrent hosts never
funnels every writer through one directory, and every write happens
atomically (temp file + ``os.replace``) under a per-shard advisory file lock
(``fcntl.flock``), so concurrent multi-process — and, via a shared
filesystem, multi-host — writers cannot corrupt entries or interleave
half-written JSON.  Re-running a figure or sweep with unchanged parameters is
then a pure cache hit across processes and sessions.

Two properties keep concurrent stores byte-identical to a serial run:

* stored payloads are *normalised* — the host wall-clock time (the only
  nondeterministic result field) is dropped before serialisation, so the same
  spec produces the same bytes no matter which backend, process or host ran
  it, and
* :meth:`ResultStore.put_if_absent` lets racing writers deduplicate at the
  store level: the first writer wins and later ones leave the entry alone.

Failed specs are recorded as ``<key>.error.json`` diagnostics
(:meth:`ResultStore.record_failure`); they are never served as cached
results, so a re-run retries the spec instead of replaying the failure.

:class:`MemoryResultStore` implements the same interface in memory; the
benchmark harnesses use it to share detailed baselines between figures within
one pytest session without persisting anything.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Iterator, Optional, Union

try:  # advisory locking is POSIX-only; elsewhere the store degrades to
    import fcntl  # atomic-rename-only safety (no cross-process mutual exclusion)
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

from repro.exp.spec import ExperimentFailure, ExperimentResult, ExperimentSpec

#: Environment variable selecting a default on-disk cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Number of leading hex digits of the content key used as the shard name.
SHARD_DIGITS = 2

_ERROR_SUFFIX = ".error.json"


def _normalised_payload(spec: ExperimentSpec, result: ExperimentResult) -> str:
    """Canonical store entry text: spec + result minus host wall-clock time.

    Wall time is the only field of a result that depends on the executing
    host rather than on the spec; dropping it makes store entries
    byte-identical across backends, processes and machines (and
    :meth:`ResultStore.get` never served it anyway).
    """
    result_dict = result.to_dict()
    result_dict["wall_seconds"] = None
    payload = {"spec": spec.to_dict(), "result": result_dict}
    return json.dumps(payload, sort_keys=True, indent=1)


class MemoryResultStore:
    """In-memory result store (shared baselines within one process)."""

    def __init__(self) -> None:
        self._results: Dict[str, ExperimentResult] = {}
        self._failures: Dict[str, ExperimentFailure] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._results)

    def get(self, spec: ExperimentSpec) -> Optional[ExperimentResult]:
        """Return the cached result of ``spec``, or ``None``."""
        result = self._results.get(spec.content_key())
        if result is None:
            self.misses += 1
        else:
            self.hits += 1
        return result

    def put(self, spec: ExperimentSpec, result: ExperimentResult) -> None:
        """Cache ``result`` under ``spec``'s content key."""
        key = spec.content_key()
        self._results[key] = result
        self._failures.pop(key, None)

    def put_if_absent(self, spec: ExperimentSpec, result: ExperimentResult) -> bool:
        """Cache ``result`` unless the key is present; ``True`` if written.

        Either way the spec is now known to succeed, so any stale failure
        record from an earlier attempt is dropped.
        """
        key = spec.content_key()
        if key in self._results:
            self._failures.pop(key, None)
            return False
        self.put(spec, result)
        return True

    def record_failure(self, spec: ExperimentSpec, failure: ExperimentFailure) -> None:
        """Keep the latest failure of ``spec`` for diagnosis (never served)."""
        self._failures[spec.content_key()] = failure

    def get_failure(self, spec: ExperimentSpec) -> Optional[ExperimentFailure]:
        """Return the recorded failure of ``spec``, or ``None``."""
        return self._failures.get(spec.content_key())

    def clear(self) -> None:
        """Drop all cached results and failures (counters are kept)."""
        self._results.clear()
        self._failures.clear()


class ResultStore:
    """On-disk JSON result cache keyed by spec content hash.

    Parameters
    ----------
    directory:
        Cache directory; created on first write.  Every entry is a single
        ``<shard>/<content-key>.json`` file holding the spec (for provenance
        and debugging) and the result, where ``<shard>`` is the first
        :data:`SHARD_DIGITS` hex digits of the key.  Entries written by older
        (pre-sharding) versions directly in ``directory`` are still found.
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory).expanduser()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    @staticmethod
    def shard(key: str) -> str:
        """Shard (subdirectory) name of content key ``key``."""
        return key[:SHARD_DIGITS]

    def _path(self, spec: ExperimentSpec) -> Path:
        key = spec.content_key()
        return self.directory / self.shard(key) / f"{key}.json"

    def _legacy_path(self, spec: ExperimentSpec) -> Path:
        return self.directory / f"{spec.content_key()}.json"

    def _failure_path(self, spec: ExperimentSpec) -> Path:
        key = spec.content_key()
        return self.directory / self.shard(key) / f"{key}{_ERROR_SUFFIX}"

    def _entry_files(self) -> Iterator[Path]:
        """All result entry files, excluding temp and failure files."""
        if not self.directory.is_dir():
            return
        # pathlib's glob matches dotfiles, so exclude the ".tmp-*.json" files
        # an interrupted put() may leave behind, and the ".locks" directory.
        for pattern in ("*.json", "[0-9a-f]" * SHARD_DIGITS + "/*.json"):
            for path in self.directory.glob(pattern):
                if path.name.startswith(".") or path.name.endswith(_ERROR_SUFFIX):
                    continue
                yield path

    def __len__(self) -> int:
        return sum(1 for _ in self._entry_files())

    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def lock(self, key: str) -> Iterator[None]:
        """Hold the advisory exclusive lock of ``key``'s shard.

        The lock serialises writers of one shard across processes (and across
        hosts sharing the filesystem, where the filesystem supports ``flock``
        semantics).  Readers never take it: entries are only ever replaced
        atomically, so a reader sees either the old or the new complete file.
        On platforms without ``fcntl`` this is a no-op.
        """
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            yield
            return
        lock_dir = self.directory / ".locks"
        lock_dir.mkdir(parents=True, exist_ok=True)
        lock_path = lock_dir / f"{self.shard(key)}.lock"
        with open(lock_path, "w", encoding="utf-8") as handle:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)

    def _write_atomically(self, path: Path, text: str) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    def get(self, spec: ExperimentSpec) -> Optional[ExperimentResult]:
        """Return the stored result of ``spec``, or ``None`` on a miss.

        Unreadable or corrupt entries count as misses (and are overwritten by
        the next :meth:`put`), so a damaged cache degrades to recomputation
        instead of failing the run.

        Host wall-clock time is dropped from served results: a stored entry
        may come from another session or machine, and pairing its wall time
        with a run timed here would produce a meaningless wall speedup.  The
        deterministic cost model is unaffected.
        """
        for path in (self._path(spec), self._legacy_path(spec)):
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
                result = ExperimentResult.from_dict(payload["result"])
            except (OSError, ValueError, KeyError, TypeError):
                continue
            result.wall_seconds = None
            self.hits += 1
            return result
        self.misses += 1
        return None

    def put(self, spec: ExperimentSpec, result: ExperimentResult) -> None:
        """Persist ``result`` atomically under ``spec``'s content key.

        The write happens under the shard's advisory lock and a stale
        ``<key>.error.json`` diagnostic from an earlier failed attempt is
        removed, so the store converges to one normalised entry per spec no
        matter how many processes retried it.
        """
        key = spec.content_key()
        text = _normalised_payload(spec, result)
        with self.lock(key):
            self._write_atomically(self._path(spec), text)
            self._failure_path(spec).unlink(missing_ok=True)
            # A pre-sharding flat entry would otherwise shadow-count forever.
            self._legacy_path(spec).unlink(missing_ok=True)

    @staticmethod
    def _entry_is_valid(path: Path) -> bool:
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            ExperimentResult.from_dict(payload["result"])
            return True
        except (OSError, ValueError, KeyError, TypeError):
            return False

    def put_if_absent(self, spec: ExperimentSpec, result: ExperimentResult) -> bool:
        """Persist ``result`` unless a valid entry exists; ``True`` if written.

        This is the store-level deduplication primitive for concurrent
        writers: the check and the write happen under the shard lock, so of N
        racing processes exactly one writes the entry.  A corrupt existing
        entry (which :meth:`get` treats as a miss) counts as absent and is
        replaced, so the store never wedges on a damaged file; entries in the
        legacy flat layout count as present.

        The spec's stale ``<key>.error.json`` diagnostic (if any) is removed
        on *both* paths: the spec demonstrably succeeds now, and without the
        clean-up a spec that failed once — and was then recomputed by a
        sibling writer that won the race — would advertise its old failure
        forever next to a perfectly valid entry.
        """
        key = spec.content_key()
        path = self._path(spec)
        with self.lock(key):
            if self._entry_is_valid(path) or self._entry_is_valid(
                self._legacy_path(spec)
            ):
                self._failure_path(spec).unlink(missing_ok=True)
                return False
            self._write_atomically(path, _normalised_payload(spec, result))
            self._failure_path(spec).unlink(missing_ok=True)
            self._legacy_path(spec).unlink(missing_ok=True)
            return True

    # ------------------------------------------------------------------
    def record_failure(self, spec: ExperimentSpec, failure: ExperimentFailure) -> None:
        """Persist a ``<key>.error.json`` diagnostic for a failed spec.

        Failure records are write-only from the orchestrator's point of view:
        :meth:`get` never serves them, so the spec is retried on the next
        run; they exist so a crashed grid can be diagnosed post-mortem.
        """
        key = spec.content_key()
        payload = {"spec": spec.to_dict(), "error": failure.to_dict()}
        text = json.dumps(payload, sort_keys=True, indent=1)
        with self.lock(key):
            self._write_atomically(self._failure_path(spec), text)

    def get_failure(self, spec: ExperimentSpec) -> Optional[ExperimentFailure]:
        """Return the recorded failure of ``spec``, or ``None``."""
        try:
            payload = json.loads(self._failure_path(spec).read_text(encoding="utf-8"))
            return ExperimentFailure.from_dict(payload["error"])
        except (OSError, ValueError, KeyError, TypeError):
            return None

    # ------------------------------------------------------------------
    def clear(self) -> int:
        """Delete all cache entries; return how many results were removed.

        Failure diagnostics and leftover temp files are removed as well but
        not counted.
        """
        removed = 0
        if not self.directory.is_dir():
            return 0
        for pattern in ("*.json", "*/*.json"):
            for path in self.directory.glob(pattern):
                is_entry = (
                    not path.name.startswith(".")
                    and not path.name.endswith(_ERROR_SUFFIX)
                )
                path.unlink(missing_ok=True)
                if is_entry:
                    removed += 1
        return removed


def default_store() -> Optional[ResultStore]:
    """Store selected by the ``REPRO_CACHE_DIR`` environment variable."""
    directory = os.environ.get(CACHE_DIR_ENV)
    return ResultStore(directory) if directory else None
