"""Persistent and in-memory experiment result stores.

The :class:`ResultStore` is an on-disk JSON cache keyed by the spec content
key: one ``<key>.json`` file per experiment, written atomically so concurrent
processes (e.g. the workers of two simultaneous sweeps sharing a cache
directory) never observe half-written entries.  Re-running a figure or sweep
with unchanged parameters is then a pure cache hit across processes and
sessions.

:class:`MemoryResultStore` implements the same interface in memory; the
benchmark harnesses use it to share detailed baselines between figures within
one pytest session without persisting anything.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Optional, Union

from repro.exp.spec import ExperimentResult, ExperimentSpec

#: Environment variable selecting a default on-disk cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


class MemoryResultStore:
    """In-memory result store (shared baselines within one process)."""

    def __init__(self) -> None:
        self._results: Dict[str, ExperimentResult] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._results)

    def get(self, spec: ExperimentSpec) -> Optional[ExperimentResult]:
        """Return the cached result of ``spec``, or ``None``."""
        result = self._results.get(spec.content_key())
        if result is None:
            self.misses += 1
        else:
            self.hits += 1
        return result

    def put(self, spec: ExperimentSpec, result: ExperimentResult) -> None:
        """Cache ``result`` under ``spec``'s content key."""
        self._results[spec.content_key()] = result

    def clear(self) -> None:
        """Drop all cached results (counters are kept)."""
        self._results.clear()


class ResultStore:
    """On-disk JSON result cache keyed by spec content hash.

    Parameters
    ----------
    directory:
        Cache directory; created on first write.  Every entry is a single
        ``<content-key>.json`` file holding the spec (for provenance and
        debugging) and the result.
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory).expanduser()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def _path(self, spec: ExperimentSpec) -> Path:
        return self.directory / f"{spec.content_key()}.json"

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        # pathlib's glob matches dotfiles, so exclude the ".tmp-*.json" files
        # an interrupted put() may leave behind.
        return sum(
            1 for path in self.directory.glob("*.json")
            if not path.name.startswith(".")
        )

    def get(self, spec: ExperimentSpec) -> Optional[ExperimentResult]:
        """Return the stored result of ``spec``, or ``None`` on a miss.

        Unreadable or corrupt entries count as misses (and are overwritten by
        the next :meth:`put`), so a damaged cache degrades to recomputation
        instead of failing the run.

        Host wall-clock time is dropped from served results: a stored entry
        may come from another session or machine, and pairing its wall time
        with a run timed here would produce a meaningless wall speedup.  The
        deterministic cost model is unaffected.
        """
        path = self._path(spec)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            result = ExperimentResult.from_dict(payload["result"])
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        result.wall_seconds = None
        self.hits += 1
        return result

    def put(self, spec: ExperimentSpec, result: ExperimentResult) -> None:
        """Persist ``result`` atomically under ``spec``'s content key."""
        self.directory.mkdir(parents=True, exist_ok=True)
        payload = {"spec": spec.to_dict(), "result": result.to_dict()}
        text = json.dumps(payload, sort_keys=True, indent=1)
        fd, tmp_name = tempfile.mkstemp(
            dir=self.directory, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(tmp_name, self._path(spec))
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def clear(self) -> int:
        """Delete all cache entries; return how many were removed."""
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.json"):
                path.unlink(missing_ok=True)
                removed += 1
        return removed


def default_store() -> Optional[ResultStore]:
    """Store selected by the ``REPRO_CACHE_DIR`` environment variable."""
    directory = os.environ.get(CACHE_DIR_ENV)
    return ResultStore(directory) if directory else None
