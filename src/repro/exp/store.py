"""Persistent and in-memory experiment result stores.

The :class:`ResultStore` is an on-disk JSON cache keyed by the spec content
key.  Entries are written atomically (temp file + ``os.replace``) under a
per-shard advisory file lock (``fcntl.flock``), so concurrent multi-process —
and, via a shared filesystem, multi-host — writers cannot corrupt entries or
interleave half-written JSON.  Re-running a figure or sweep with unchanged
parameters is then a pure cache hit across processes and sessions.

Two properties keep concurrent stores byte-identical to a serial run:

* stored payloads are *normalised* — the host wall-clock time (the only
  nondeterministic result field) is dropped before serialisation, so the same
  spec produces the same bytes no matter which backend, process or host ran
  it, and
* :meth:`ResultStore.put_if_absent` lets racing writers deduplicate at the
  store level: the first writer wins and later ones leave the entry alone.

Failed specs are recorded as ``<key>.error.json`` diagnostics
(:meth:`ResultStore.record_failure`); they are never served as cached
results, so a re-run retries the spec instead of replaying the failure.

Layouts
-------
*Where* entries live on disk is pluggable (``layout=``):

* :class:`DirectoryLayout` (default) — the historical sharded layout,
  ``<dir>/<ab>/<key>.json`` with per-shard ``flock`` advisory locking and a
  fallback to pre-sharding flat entries directly in ``<dir>``.
* :class:`ObjectStoreLayout` — an object-store-shaped keyspace,
  ``<dir>/objects/<ab>/<cd>/<key>.json``.  Object stores have neither
  ``flock`` nor a legacy flat namespace, so this layout takes no advisory
  locks (writes are still atomic whole-object replacements, and racing
  ``put_if_absent`` writers converge because payloads are normalised — the
  last write is byte-identical to the first) and never consults a flat
  fallback.  It is the on-disk shape a future remote object-store backend
  serialises to, which is why the simulation service can point read replicas
  at it without workers in the loop.

Serving-grade accounting
------------------------
Both stores count ``hits``/``misses`` (:meth:`get`), ``evictions`` and
``compactions``, surfaced as one JSON-friendly dict by :meth:`stats` — the
simulation service daemon reports these through its ``stats`` frame.  A
``max_bytes`` budget turns the disk store into a size-bounded LRU:
:meth:`get` refreshes an entry's mtime, :meth:`compact` evicts
least-recently-used entries until the budget holds, and a write-side
accumulator triggers compaction automatically once puts overflow the budget.
Compaction never touches failure diagnostics and never evicts a **pinned**
entry (:meth:`pin`/:meth:`unpin`, refcounted) — the daemon pins every key of
an in-flight job, so a result an active job is about to serve cannot vanish
between its write and its read.

:class:`MemoryResultStore` implements the same interface in memory; the
benchmark harnesses use it to share detailed baselines between figures within
one pytest session without persisting anything.
"""

from __future__ import annotations

import collections
import contextlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Iterator, Optional, Union

try:  # advisory locking is POSIX-only; elsewhere the store degrades to
    import fcntl  # atomic-rename-only safety (no cross-process mutual exclusion)
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

from repro.exp.spec import ExperimentFailure, ExperimentResult, ExperimentSpec

#: Environment variable selecting a default on-disk cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Number of leading hex digits of the content key used as the shard name.
SHARD_DIGITS = 2

_ERROR_SUFFIX = ".error.json"


def _normalised_payload(spec: ExperimentSpec, result: ExperimentResult) -> str:
    """Canonical store entry text: spec + result minus host wall-clock time.

    Wall time is the only field of a result that depends on the executing
    host rather than on the spec; dropping it makes store entries
    byte-identical across backends, processes and machines (and
    :meth:`ResultStore.get` never served it anyway).
    """
    result_dict = result.to_dict()
    result_dict["wall_seconds"] = None
    payload = {"spec": spec.to_dict(), "result": result_dict}
    return json.dumps(payload, sort_keys=True, indent=1)


# ----------------------------------------------------------------------
class DirectoryLayout:
    """The historical sharded directory layout: ``<ab>/<key>.json``.

    Uses per-shard ``flock`` advisory locks and falls back to pre-sharding
    flat entries written directly into the store directory.
    """

    name = "directory"
    #: Whether writers serialise through per-shard advisory locks.
    uses_locks = True
    #: Whether pre-sharding flat entries in the root are consulted.
    legacy_flat = True

    def entry_relpath(self, key: str) -> str:
        return f"{key[:SHARD_DIGITS]}/{key}.json"

    def failure_relpath(self, key: str) -> str:
        return f"{key[:SHARD_DIGITS]}/{key}{_ERROR_SUFFIX}"

    def lock_name(self, key: str) -> str:
        return key[:SHARD_DIGITS]

    def iter_entries(self, directory: Path) -> Iterator[Path]:
        """All result entry files, excluding temp and failure files."""
        # pathlib's glob matches dotfiles, so exclude the ".tmp-*.json" files
        # an interrupted put() may leave behind, and the ".locks" directory.
        for pattern in ("*.json", "[0-9a-f]" * SHARD_DIGITS + "/*.json"):
            for path in directory.glob(pattern):
                if path.name.startswith(".") or path.name.endswith(_ERROR_SUFFIX):
                    continue
                yield path


class ObjectStoreLayout:
    """Object-store-shaped keyspace: ``objects/<ab>/<cd>/<key>.json``.

    Object stores offer atomic whole-object PUTs but no advisory locks and
    no legacy flat namespace, so this layout takes none: ``put_if_absent``
    degrades to check-then-write, which still converges because entry
    payloads are normalised (every winner writes the same bytes).
    """

    name = "object"
    uses_locks = False
    legacy_flat = False

    def entry_relpath(self, key: str) -> str:
        return f"objects/{key[:2]}/{key[2:4]}/{key}.json"

    def failure_relpath(self, key: str) -> str:
        return f"objects/{key[:2]}/{key[2:4]}/{key}{_ERROR_SUFFIX}"

    def lock_name(self, key: str) -> str:  # pragma: no cover - never locked
        return key[:2]

    def iter_entries(self, directory: Path) -> Iterator[Path]:
        for path in directory.glob("objects/*/*/*.json"):
            if path.name.startswith(".") or path.name.endswith(_ERROR_SUFFIX):
                continue
            yield path


#: Layout names accepted by :class:`ResultStore` and the CLI.
LAYOUT_NAMES = ("directory", "object")


def make_layout(layout: Union[None, str, DirectoryLayout, ObjectStoreLayout]):
    """Resolve a layout argument (name, instance or ``None``) to an instance."""
    if layout is None:
        return DirectoryLayout()
    if isinstance(layout, str):
        if layout == "directory":
            return DirectoryLayout()
        if layout == "object":
            return ObjectStoreLayout()
        raise ValueError(
            f"unknown store layout {layout!r} (choose from {LAYOUT_NAMES})"
        )
    return layout


class MemoryResultStore:
    """In-memory result store (shared baselines within one process).

    ``max_entries`` bounds the store to an LRU of that many results —
    :meth:`get` refreshes recency, overflowing :meth:`put` evicts the least
    recently used entry (never a pinned one) and counts it in ``evictions``.
    """

    def __init__(self, max_entries: Optional[int] = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._results: "collections.OrderedDict[str, ExperimentResult]" = (
            collections.OrderedDict()
        )
        self._failures: Dict[str, ExperimentFailure] = {}
        self._pins: Dict[str, int] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.compactions = 0

    def __len__(self) -> int:
        return len(self._results)

    def pin(self, key: str) -> None:
        """Protect ``key`` from eviction (refcounted)."""
        self._pins[key] = self._pins.get(key, 0) + 1

    def unpin(self, key: str) -> None:
        """Drop one pin of ``key``; eviction applies again at refcount 0."""
        count = self._pins.get(key, 0) - 1
        if count <= 0:
            self._pins.pop(key, None)
        else:
            self._pins[key] = count

    def get(self, spec: ExperimentSpec) -> Optional[ExperimentResult]:
        """Return the cached result of ``spec``, or ``None``."""
        key = spec.content_key()
        result = self._results.get(key)
        if result is None:
            self.misses += 1
        else:
            self.hits += 1
            self._results.move_to_end(key)
        return result

    def _evict_overflow(self) -> None:
        if self.max_entries is None:
            return
        while len(self._results) > self.max_entries:
            victim = next(
                (k for k in self._results if k not in self._pins), None
            )
            if victim is None:
                return  # everything left is pinned; the budget yields
            del self._results[victim]
            self.evictions += 1

    def put(self, spec: ExperimentSpec, result: ExperimentResult) -> None:
        """Cache ``result`` under ``spec``'s content key."""
        key = spec.content_key()
        self._results[key] = result
        self._results.move_to_end(key)
        self._failures.pop(key, None)
        self._evict_overflow()

    def put_if_absent(self, spec: ExperimentSpec, result: ExperimentResult) -> bool:
        """Cache ``result`` unless the key is present; ``True`` if written.

        Either way the spec is now known to succeed, so any stale failure
        record from an earlier attempt is dropped.
        """
        key = spec.content_key()
        if key in self._results:
            self._failures.pop(key, None)
            return False
        self.put(spec, result)
        return True

    def record_failure(self, spec: ExperimentSpec, failure: ExperimentFailure) -> None:
        """Keep the latest failure of ``spec`` for diagnosis (never served)."""
        self._failures[spec.content_key()] = failure

    def get_failure(self, spec: ExperimentSpec) -> Optional[ExperimentFailure]:
        """Return the recorded failure of ``spec``, or ``None``."""
        return self._failures.get(spec.content_key())

    def stats(self) -> Dict[str, object]:
        """JSON-friendly counter snapshot (the daemon's ``stats`` frame)."""
        return {
            "layout": "memory",
            "entries": len(self._results),
            "failures": len(self._failures),
            "pinned": len(self._pins),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "compactions": self.compactions,
            "max_entries": self.max_entries,
        }

    def clear(self) -> None:
        """Drop all cached results and failures (counters are kept)."""
        self._results.clear()
        self._failures.clear()


class ResultStore:
    """On-disk JSON result cache keyed by spec content hash.

    Parameters
    ----------
    directory:
        Cache directory; created on first write.
    layout:
        Where entries live under ``directory``: ``"directory"`` (default,
        the sharded ``<ab>/<key>.json`` layout with per-shard locking and
        the pre-sharding flat fallback) or ``"object"`` (an object-store
        keyspace, lock-free).  A layout instance is accepted too.
    max_bytes:
        Optional LRU byte budget over the result entries.  :meth:`get`
        refreshes recency (mtime), :meth:`compact` evicts least recently
        used unpinned entries until the budget holds, and puts trigger
        compaction automatically once the accumulated writes overflow it.
        Failure diagnostics and pinned keys are never evicted.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        *,
        layout: Union[None, str, DirectoryLayout, ObjectStoreLayout] = None,
        max_bytes: Optional[int] = None,
    ) -> None:
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        self.directory = Path(directory).expanduser()
        self.layout = make_layout(layout)
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.compactions = 0
        self._pins: Dict[str, int] = {}
        #: Bytes written since the last budget check; ``None`` until the
        #: first budgeted put forces a directory scan.
        self._approx_bytes: Optional[int] = None

    # ------------------------------------------------------------------
    @staticmethod
    def shard(key: str) -> str:
        """Shard (subdirectory) name of content key ``key``."""
        return key[:SHARD_DIGITS]

    def _path(self, spec: ExperimentSpec) -> Path:
        return self.directory / self.layout.entry_relpath(spec.content_key())

    def _key_path(self, key: str) -> Path:
        return self.directory / self.layout.entry_relpath(key)

    def _legacy_path(self, spec: ExperimentSpec) -> Path:
        return self.directory / f"{spec.content_key()}.json"

    def _failure_path(self, spec: ExperimentSpec) -> Path:
        return self.directory / self.layout.failure_relpath(spec.content_key())

    def _entry_files(self) -> Iterator[Path]:
        """All result entry files, excluding temp and failure files."""
        if not self.directory.is_dir():
            return
        for path in self.layout.iter_entries(self.directory):
            yield path

    def __len__(self) -> int:
        return sum(1 for _ in self._entry_files())

    # ------------------------------------------------------------------
    def pin(self, key: str) -> None:
        """Protect ``key``'s entry from compaction (refcounted).

        The simulation service pins every key of an in-flight job: a result
        written moments ago must still be there when the job's watcher reads
        it back, whatever the LRU budget says.
        """
        self._pins[key] = self._pins.get(key, 0) + 1

    def unpin(self, key: str) -> None:
        """Drop one pin of ``key``; compaction applies again at refcount 0."""
        count = self._pins.get(key, 0) - 1
        if count <= 0:
            self._pins.pop(key, None)
        else:
            self._pins[key] = count

    def pinned_keys(self) -> "set[str]":
        """Currently pinned content keys (diagnostics and tests)."""
        return set(self._pins)

    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def lock(self, key: str) -> Iterator[None]:
        """Hold the advisory exclusive lock of ``key``'s shard.

        The lock serialises writers of one shard across processes (and across
        hosts sharing the filesystem, where the filesystem supports ``flock``
        semantics).  Readers never take it: entries are only ever replaced
        atomically, so a reader sees either the old or the new complete file.
        On platforms without ``fcntl``, and under the lock-free object-store
        layout, this is a no-op.
        """
        if fcntl is None or not self.layout.uses_locks:
            yield
            return
        lock_dir = self.directory / ".locks"
        lock_dir.mkdir(parents=True, exist_ok=True)
        lock_path = lock_dir / f"{self.layout.lock_name(key)}.lock"
        with open(lock_path, "w", encoding="utf-8") as handle:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)

    def _write_atomically(self, path: Path, text: str) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    def get(self, spec: ExperimentSpec) -> Optional[ExperimentResult]:
        """Return the stored result of ``spec``, or ``None`` on a miss.

        Unreadable or corrupt entries count as misses (and are overwritten by
        the next :meth:`put`), so a damaged cache degrades to recomputation
        instead of failing the run.

        Host wall-clock time is dropped from served results: a stored entry
        may come from another session or machine, and pairing its wall time
        with a run timed here would produce a meaningless wall speedup.  The
        deterministic cost model is unaffected.

        Under a ``max_bytes`` budget a hit refreshes the entry's mtime, which
        is the recency signal :meth:`compact` evicts by — a warm entry the
        daemon keeps serving stays resident while cold ones age out.
        """
        paths = [self._path(spec)]
        if self.layout.legacy_flat:
            paths.append(self._legacy_path(spec))
        for path in paths:
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
                result = ExperimentResult.from_dict(payload["result"])
            except (OSError, ValueError, KeyError, TypeError):
                continue
            result.wall_seconds = None
            self.hits += 1
            if self.max_bytes is not None:
                try:
                    os.utime(path)
                except OSError:  # pragma: no cover - raced with eviction
                    pass
            return result
        self.misses += 1
        return None

    def put(self, spec: ExperimentSpec, result: ExperimentResult) -> None:
        """Persist ``result`` atomically under ``spec``'s content key.

        The write happens under the shard's advisory lock and a stale
        ``<key>.error.json`` diagnostic from an earlier failed attempt is
        removed, so the store converges to one normalised entry per spec no
        matter how many processes retried it.
        """
        key = spec.content_key()
        text = _normalised_payload(spec, result)
        with self.lock(key):
            self._write_atomically(self._path(spec), text)
            self._failure_path(spec).unlink(missing_ok=True)
            if self.layout.legacy_flat:
                # A pre-sharding flat entry would otherwise shadow-count forever.
                self._legacy_path(spec).unlink(missing_ok=True)
        self._note_written(len(text))

    @staticmethod
    def _entry_is_valid(path: Path) -> bool:
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            ExperimentResult.from_dict(payload["result"])
            return True
        except (OSError, ValueError, KeyError, TypeError):
            return False

    def put_if_absent(self, spec: ExperimentSpec, result: ExperimentResult) -> bool:
        """Persist ``result`` unless a valid entry exists; ``True`` if written.

        This is the store-level deduplication primitive for concurrent
        writers: the check and the write happen under the shard lock, so of N
        racing processes exactly one writes the entry.  A corrupt existing
        entry (which :meth:`get` treats as a miss) counts as absent and is
        replaced, so the store never wedges on a damaged file; entries in the
        legacy flat layout count as present.

        The spec's stale ``<key>.error.json`` diagnostic (if any) is removed
        on *both* paths: the spec demonstrably succeeds now, and without the
        clean-up a spec that failed once — and was then recomputed by a
        sibling writer that won the race — would advertise its old failure
        forever next to a perfectly valid entry.
        """
        key = spec.content_key()
        path = self._path(spec)
        with self.lock(key):
            present = self._entry_is_valid(path) or (
                self.layout.legacy_flat
                and self._entry_is_valid(self._legacy_path(spec))
            )
            if present:
                self._failure_path(spec).unlink(missing_ok=True)
                return False
            text = _normalised_payload(spec, result)
            self._write_atomically(path, text)
            self._failure_path(spec).unlink(missing_ok=True)
            if self.layout.legacy_flat:
                self._legacy_path(spec).unlink(missing_ok=True)
        self._note_written(len(text))
        return True

    # ------------------------------------------------------------------
    def record_failure(self, spec: ExperimentSpec, failure: ExperimentFailure) -> None:
        """Persist a ``<key>.error.json`` diagnostic for a failed spec.

        Failure records are write-only from the orchestrator's point of view:
        :meth:`get` never serves them, so the spec is retried on the next
        run; they exist so a crashed grid can be diagnosed post-mortem.
        They live outside the LRU byte budget and are never compacted away.
        """
        key = spec.content_key()
        payload = {"spec": spec.to_dict(), "error": failure.to_dict()}
        text = json.dumps(payload, sort_keys=True, indent=1)
        with self.lock(key):
            self._write_atomically(self._failure_path(spec), text)

    def get_failure(self, spec: ExperimentSpec) -> Optional[ExperimentFailure]:
        """Return the recorded failure of ``spec``, or ``None``."""
        try:
            payload = json.loads(self._failure_path(spec).read_text(encoding="utf-8"))
            return ExperimentFailure.from_dict(payload["error"])
        except (OSError, ValueError, KeyError, TypeError):
            return None

    # ------------------------------------------------------------------
    def _note_written(self, size: int) -> None:
        """Account one entry write towards the auto-compaction trigger."""
        if self.max_bytes is None:
            return
        if self._approx_bytes is None:
            self._approx_bytes = sum(
                self._entry_size(path) for path in self._entry_files()
            )
        else:
            self._approx_bytes += size
        if self._approx_bytes > self.max_bytes:
            self.compact()

    @staticmethod
    def _entry_size(path: Path) -> int:
        try:
            return path.stat().st_size
        except OSError:
            return 0

    def total_bytes(self) -> int:
        """Total bytes of all result entries (failure diagnostics excluded)."""
        return sum(self._entry_size(path) for path in self._entry_files())

    def compact(self, max_bytes: Optional[int] = None) -> int:
        """Evict least-recently-used entries until the byte budget holds.

        Returns the number of evicted entries.  Entries are ordered by mtime
        (which :meth:`get` refreshes under a budget, making this an LRU);
        pinned keys and failure diagnostics are never candidates, so the
        budget yields when only pinned entries remain.  Each eviction
        re-checks the victim's mtime under the shard lock — an entry a
        concurrent reader just refreshed (or a writer just replaced) is
        spared this round rather than dropped on stale information.
        """
        budget = self.max_bytes if max_bytes is None else max_bytes
        if budget is None:
            return 0
        entries = []
        total = 0
        for path in self._entry_files():
            try:
                stat = path.stat()
            except OSError:
                continue
            total += stat.st_size
            key = path.name[: -len(".json")]
            if key in self._pins:
                continue
            entries.append((stat.st_mtime, stat.st_size, path, key))
        entries.sort(key=lambda item: (item[0], item[2].name))
        evicted = 0
        for mtime, size, path, key in entries:
            if total <= budget:
                break
            with self.lock(key):
                try:
                    if path.stat().st_mtime > mtime:
                        continue  # refreshed since the scan: spare it
                    path.unlink()
                except OSError:
                    continue  # already gone (racing compactor or clear)
            total -= size
            evicted += 1
        self.evictions += evicted
        self.compactions += 1
        self._approx_bytes = total
        return evicted

    def stats(self) -> Dict[str, object]:
        """JSON-friendly counter snapshot (the daemon's ``stats`` frame).

        ``entries``/``bytes`` scan the directory, so this is a monitoring
        call, not a hot-path one.
        """
        entries = 0
        total = 0
        for path in self._entry_files():
            entries += 1
            total += self._entry_size(path)
        return {
            "layout": self.layout.name,
            "entries": entries,
            "bytes": total,
            "pinned": len(self._pins),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "compactions": self.compactions,
            "max_bytes": self.max_bytes,
        }

    # ------------------------------------------------------------------
    def clear(self) -> int:
        """Delete all cache entries; return how many results were removed.

        Failure diagnostics and leftover temp files are removed as well but
        not counted.
        """
        removed = 0
        if not self.directory.is_dir():
            return 0
        for path in self.directory.rglob("*.json"):
            if ".locks" in path.parts:
                continue
            is_entry = (
                not path.name.startswith(".")
                and not path.name.endswith(_ERROR_SUFFIX)
            )
            path.unlink(missing_ok=True)
            if is_entry:
                removed += 1
        self._approx_bytes = 0 if self.max_bytes is not None else None
        return removed


def default_store() -> Optional[ResultStore]:
    """Store selected by the ``REPRO_CACHE_DIR`` environment variable."""
    directory = os.environ.get(CACHE_DIR_ENV)
    return ResultStore(directory) if directory else None
