"""Execution of a single :class:`~repro.exp.spec.ExperimentSpec`.

This module is the one place that turns a spec into simulator calls.  Both
execution backends (and the worker processes of the process-pool backend)
funnel through :func:`run_spec`, so serial and parallel execution are
guaranteed to run byte-identical experiments.

Trace generation is memoised per process: grids typically reuse the same
(benchmark, scale, seed) trace across many thread counts and sampling
configurations, and regenerating it for every spec would dominate the run
time.  The memo replaces the ad-hoc trace dictionaries the analysis layer
and the benchmark harnesses used to carry around.
"""

from __future__ import annotations

from functools import lru_cache

from repro.core.controller import TaskPointController
from repro.exp.spec import ExperimentResult, ExperimentSpec
from repro.sim.simulator import TaskSimSimulator
from repro.trace.trace import ApplicationTrace
from repro.workloads.registry import get_workload

#: Traces kept per process; large enough for the full 19-benchmark grids.
_TRACE_CACHE_SIZE = 64


@lru_cache(maxsize=_TRACE_CACHE_SIZE)
def get_trace(benchmark: str, scale: float, seed: int) -> ApplicationTrace:
    """Return (generating once per process) the trace of ``benchmark``.

    Trace generation is deterministic in (benchmark, scale, seed), which is
    what makes specs self-contained: a worker process can regenerate exactly
    the trace the submitting process described.
    """
    return get_workload(benchmark).generate(scale=scale, seed=seed)


def run_spec(spec: ExperimentSpec) -> ExperimentResult:
    """Execute one experiment and return its condensed result."""
    trace = get_trace(spec.benchmark, spec.scale, spec.trace_seed)
    simulator = TaskSimSimulator(
        architecture=spec.architecture,
        scheduler=spec.scheduler,
        scheduler_seed=spec.scheduler_seed,
    )
    if spec.is_detailed:
        result = simulator.run(trace, num_threads=spec.num_threads, controller=None)
        return ExperimentResult.from_simulation(spec, result)
    controller = TaskPointController(config=spec.config)
    result = simulator.run(trace, num_threads=spec.num_threads, controller=controller)
    return ExperimentResult.from_simulation(spec, result, stats=controller.stats)
