"""Execution of a single :class:`~repro.exp.spec.ExperimentSpec`.

This module is the one place that turns a spec into simulator calls.  Both
execution backends (and the worker processes of the process-pool backend)
funnel through :func:`run_spec`, so serial and parallel execution are
guaranteed to run byte-identical experiments.

Trace generation is memoised per process: grids typically reuse the same
(benchmark, scale, seed) trace across many thread counts and sampling
configurations, and regenerating it for every spec would dominate the run
time.  The memo replaces the ad-hoc trace dictionaries the analysis layer
and the benchmark harnesses used to carry around.

The memo is worth more than the generation it skips: the returned trace
object carries its ``TraceColumns``, and the columns carry every lazily
built simulation artefact — the batched executor's ``ExecutionPlan`` and
the runtime's static instance lists, both memoised in
``columns.plan_cache`` keyed by model geometry.  A worker process that
receives many specs of one workload (the normal shape of a ``run_batch``
frame, and of consecutive frames of one grid) therefore pays trace
generation *and* plan construction once, and every later spec starts on a
fully warmed trace.  The memo is an explicit bounded LRU
(:class:`TraceMemo`) rather than an ``lru_cache``: long-lived worker
processes serving many differently-scaled grids would otherwise accumulate
traces without limit, and the workers report the memo's hit/eviction
counters in their ``pong`` status frames so a supervisor can see cache
behaviour.  Set ``REPRO_EXP_TRACE_MEMO=0`` to disable the memo — every
spec then regenerates (and re-warms) its trace from scratch, which is how
``scripts/dispatch_bench.py`` measures the per-spec warm-up cost the memo
removes.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Dict, Tuple

from repro.core.controller import TaskPointController
from repro.core.fidelity import FidelityConfig, FidelityController
from repro.core.stratified import StratifiedConfig, StratifiedController
from repro.exp.spec import ExperimentResult, ExperimentSpec
from repro.sim.simulator import TaskSimSimulator
from repro.trace.trace import ApplicationTrace
from repro.workloads.registry import get_workload

#: Traces kept per process; large enough for the full 19-benchmark grids.
_TRACE_CACHE_SIZE = 64

#: Set to ``0`` to disable the per-process warmed-trace memo (measurement
#: hook for the dispatch benchmark; the default is always-on).
TRACE_MEMO_ENV = "REPRO_EXP_TRACE_MEMO"


class TraceMemo:
    """Bounded LRU memo of generated traces with observable statistics.

    Keyed by (benchmark, scale, seed); holds at most ``capacity`` traces and
    evicts the least recently used one beyond that.  Unlike the former
    ``functools.lru_cache`` it exposes its hit/miss/eviction counters, which
    the pool workers ship home in their ``pong`` frames.
    """

    def __init__(self, capacity: int = _TRACE_CACHE_SIZE) -> None:
        if capacity < 1:
            raise ValueError("trace memo capacity must be >= 1")
        self.capacity = capacity
        self._traces: "OrderedDict[Tuple[str, float, int], ApplicationTrace]" = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, benchmark: str, scale: float, seed: int) -> ApplicationTrace:
        """Return the memoised trace, generating (and possibly evicting)."""
        key = (benchmark, scale, seed)
        trace = self._traces.get(key)
        if trace is not None:
            self.hits += 1
            self._traces.move_to_end(key)
            return trace
        self.misses += 1
        trace = get_workload(benchmark).generate(scale=scale, seed=seed)
        self._traces[key] = trace
        if len(self._traces) > self.capacity:
            self._traces.popitem(last=False)
            self.evictions += 1
        return trace

    def __len__(self) -> int:
        return len(self._traces)

    def clear(self) -> None:
        """Drop all memoised traces (counters are kept)."""
        self._traces.clear()

    def stats(self) -> Dict[str, int]:
        """JSON-friendly snapshot of the memo counters."""
        return {
            "capacity": self.capacity,
            "entries": len(self._traces),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


#: The per-process memo instance behind :func:`get_trace`.
_TRACE_MEMO = TraceMemo()


def trace_memo_stats() -> Dict[str, int]:
    """Counters of the per-process trace memo (for worker status frames)."""
    return _TRACE_MEMO.stats()


def get_trace(benchmark: str, scale: float, seed: int) -> ApplicationTrace:
    """Return (generating once per process) the trace of ``benchmark``.

    Trace generation is deterministic in (benchmark, scale, seed), which is
    what makes specs self-contained: a worker process can regenerate exactly
    the trace the submitting process described.  The returned object is the
    process-wide memoised instance (see the module docstring for why that
    also carries warmed plan-cache state) unless ``REPRO_EXP_TRACE_MEMO=0``
    opts out.
    """
    if os.environ.get(TRACE_MEMO_ENV, "") == "0":
        return get_workload(benchmark).generate(scale=scale, seed=seed)
    return _TRACE_MEMO.get(benchmark, scale, seed)


def run_spec(spec: ExperimentSpec) -> ExperimentResult:
    """Execute one experiment and return its condensed result."""
    trace = get_trace(spec.benchmark, spec.scale, spec.trace_seed)
    simulator = TaskSimSimulator(
        architecture=spec.architecture,
        scheduler=spec.scheduler,
        scheduler_seed=spec.scheduler_seed,
    )
    if spec.is_detailed:
        result = simulator.run(trace, num_threads=spec.num_threads, controller=None)
        return ExperimentResult.from_simulation(spec, result)
    if isinstance(spec.config, StratifiedConfig):
        controller = StratifiedController(trace, config=spec.config)
    elif isinstance(spec.config, FidelityConfig):
        controller = FidelityController(trace, config=spec.config)
    else:
        controller = TaskPointController(config=spec.config)
    result = simulator.run(trace, num_threads=spec.num_threads, controller=controller)
    return ExperimentResult.from_simulation(spec, result, stats=controller.stats)
