"""Experiment descriptors and their persistent result records.

An :class:`ExperimentSpec` fully describes one simulation experiment — which
workload trace to generate, which architecture to simulate it on, with how
many threads, under which sampling configuration (or none, for the detailed
baseline) and which scheduler.  Specs are frozen, hashable and round-trip
through JSON, and every spec has a stable *content key* (a SHA-256 digest of
its canonical JSON form) used for deduplication and as the key of the
persistent :class:`repro.exp.store.ResultStore`.

An :class:`ExperimentResult` is the serialisable outcome of running one spec:
the simulated execution time, the deterministic simulation-cost counters, the
per-task-type IPC samples needed by the variation analysis, and — for sampled
runs — the TaskPoint controller statistics.  It deliberately stores only what
the analysis layer consumes, not the per-instance records, so a cached grid
of hundreds of experiments stays small on disk.
"""

from __future__ import annotations

import hashlib
import json
import traceback as traceback_module
from dataclasses import asdict, dataclass, field, replace
from typing import Dict, List, Optional, Union

from repro.arch.config import (
    ArchitectureConfig,
    CacheConfig,
    CoreConfig,
    MemoryConfig,
    high_performance_config,
)
from repro.core.config import TaskPointConfig
from repro.core.controller import TaskPointStatistics
from repro.core.fidelity import FidelityConfig
from repro.core.stratified import StratifiedConfig

#: The sampling configurations a spec can carry.  ``None`` marks a detailed
#: baseline run.
SamplingConfig = Union[TaskPointConfig, StratifiedConfig, FidelityConfig]
from repro.sim.cost import SimulationCost
from repro.sim.results import SimulationResult

#: Version tag mixed into every content key.  Bump it whenever the semantics
#: of a spec field or of the stored result change, so stale on-disk caches
#: can never be mistaken for current results.
SPEC_SCHEMA_VERSION = 1


def _architecture_to_dict(architecture: ArchitectureConfig) -> Dict[str, object]:
    return asdict(architecture)


def _architecture_from_dict(data: Dict[str, object]) -> ArchitectureConfig:
    def cache(level: Optional[Dict[str, object]]) -> Optional[CacheConfig]:
        return CacheConfig(**level) if level is not None else None

    return ArchitectureConfig(
        name=data["name"],
        core=CoreConfig(**data["core"]),
        l1=cache(data["l1"]),
        l2=cache(data["l2"]),
        l3=cache(data.get("l3")),
        memory=MemoryConfig(**data["memory"]),
    )


@dataclass(frozen=True)
class ExperimentSpec:
    """Frozen, hashable description of one simulation experiment.

    Attributes
    ----------
    benchmark:
        Workload name (a Table I name, see ``repro list``).
    scale:
        Workload scale passed to the trace generator.
    trace_seed:
        Trace-generation seed.
    architecture:
        Architecture configuration; ``None`` selects the paper's
        high-performance configuration and is normalised to it, so the two
        spellings produce the same content key.
    num_threads:
        Number of simulated worker threads.
    config:
        Sampling configuration — a :class:`TaskPointConfig` (periodic/lazy
        sampling) or a :class:`StratifiedConfig` (two-phase stratified
        sampling) — or ``None`` to mark the experiment as a full **detailed
        baseline** run.
    scheduler:
        Dynamic scheduler name (``"fifo"``, ``"locality"`` or ``"random"``).
    scheduler_seed:
        Seed of randomised schedulers.
    """

    benchmark: str
    num_threads: int
    scale: float = 0.08
    trace_seed: int = 1
    architecture: Optional[ArchitectureConfig] = None
    config: Optional[SamplingConfig] = None
    scheduler: str = "fifo"
    scheduler_seed: int = 0

    def __post_init__(self) -> None:
        if self.num_threads < 1:
            raise ValueError("num_threads must be >= 1")
        if self.scale <= 0:
            raise ValueError("scale must be positive")
        if self.architecture is None:
            object.__setattr__(self, "architecture", high_performance_config())

    # ------------------------------------------------------------------
    @property
    def is_detailed(self) -> bool:
        """``True`` when the spec describes a detailed baseline run."""
        return self.config is None

    def baseline(self) -> "ExperimentSpec":
        """The detailed-baseline spec this sampled experiment compares against.

        Sampled experiments of one (benchmark, architecture, threads, ...)
        point all share the same baseline, which is what lets the orchestrator
        simulate each baseline exactly once per grid.
        """
        return replace(self, config=None)

    def sampled(self, config: SamplingConfig) -> "ExperimentSpec":
        """A copy of this spec running under ``config`` instead."""
        return replace(self, config=config)

    # ------------------------------------------------------------------
    def _config_to_dict(self) -> Optional[Dict[str, object]]:
        """Serialise the sampling config with a ``kind`` discriminator.

        TaskPoint configs serialise as a plain field dict — exactly the bytes
        they always produced, so every pre-stratified content key (and with
        it the on-disk result cache) is unchanged.  Stratified configs add a
        ``"kind": "stratified"`` discriminator, which also guarantees their
        keys can never collide with a TaskPoint config's.
        """
        if self.config is None:
            return None
        if isinstance(self.config, StratifiedConfig):
            return {"kind": "stratified", **asdict(self.config)}
        if isinstance(self.config, FidelityConfig):
            return {"kind": "fidelity", **asdict(self.config)}
        return asdict(self.config)

    @staticmethod
    def _config_from_dict(data: Optional[Dict[str, object]]) -> Optional[SamplingConfig]:
        if data is None:
            return None
        kind = data.get("kind")
        if kind == "stratified":
            fields = {key: value for key, value in data.items() if key != "kind"}
            return StratifiedConfig(**fields)
        if kind == "fidelity":
            fields = {key: value for key, value in data.items() if key != "kind"}
            return FidelityConfig(**fields)
        if kind is not None:
            raise ValueError(f"unknown sampling config kind: {kind!r}")
        return TaskPointConfig(**data)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable canonical form."""
        return {
            "schema": SPEC_SCHEMA_VERSION,
            "benchmark": self.benchmark,
            "num_threads": self.num_threads,
            "scale": self.scale,
            "trace_seed": self.trace_seed,
            "architecture": _architecture_to_dict(self.architecture),
            "config": self._config_to_dict(),
            "scheduler": self.scheduler,
            "scheduler_seed": self.scheduler_seed,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ExperimentSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        return cls(
            benchmark=data["benchmark"],
            num_threads=data["num_threads"],
            scale=data["scale"],
            trace_seed=data["trace_seed"],
            architecture=_architecture_from_dict(data["architecture"]),
            config=cls._config_from_dict(data.get("config")),
            scheduler=data.get("scheduler", "fifo"),
            scheduler_seed=data.get("scheduler_seed", 0),
        )

    def content_key(self) -> str:
        """Stable SHA-256 content key of this spec.

        Two specs have equal keys iff they describe the same experiment, so
        the key doubles as the deduplication key of the execution backends
        and as the filename of the persistent result store.  The digest is
        memoised on the instance (safe: the dataclass is frozen) because the
        orchestrator and the store consult it many times per spec.
        """
        cached = self.__dict__.get("_content_key")
        if cached is None:
            canonical = json.dumps(
                self.to_dict(), sort_keys=True, separators=(",", ":")
            )
            cached = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
            object.__setattr__(self, "_content_key", cached)
        return cached

    def label(self) -> str:
        """Short human-readable description (for logs and progress output)."""
        if self.is_detailed:
            mode = "detailed"
        elif isinstance(self.config, StratifiedConfig):
            mode = "stratified"
        elif isinstance(self.config, FidelityConfig):
            mode = "fidelity"
        else:
            mode = "sampled"
        return (
            f"{self.benchmark}@{self.architecture.name}"
            f" x{self.num_threads} [{mode}]"
        )


@dataclass
class ExperimentFailure:
    """Serialisable record of one spec that raised instead of completing.

    Execution backends return a failure (rather than poisoning the whole
    batch) when a spec's workload raises, and the distributed backend
    additionally returns one when a worker process died repeatedly while
    holding the spec.  Failures are recorded in the result store as
    ``<key>.error.json`` diagnostics but never served as cached results, so a
    re-run retries the spec.
    """

    spec_key: str
    error_type: str
    message: str
    traceback: str = ""
    attempts: int = 1

    @classmethod
    def from_exception(
        cls, spec_key: str, error: BaseException, attempts: int = 1
    ) -> "ExperimentFailure":
        """Condense a caught exception into a serialisable failure record."""
        return cls(
            spec_key=spec_key,
            error_type=type(error).__name__,
            message=str(error),
            traceback="".join(
                traceback_module.format_exception(type(error), error, error.__traceback__)
            ),
            attempts=attempts,
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form (inverse of :meth:`from_dict`)."""
        return {
            "schema": SPEC_SCHEMA_VERSION,
            "spec_key": self.spec_key,
            "error_type": self.error_type,
            "message": self.message,
            "traceback": self.traceback,
            "attempts": self.attempts,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ExperimentFailure":
        """Rebuild a failure from :meth:`to_dict` output."""
        return cls(
            spec_key=data.get("spec_key", ""),
            error_type=data.get("error_type", "Exception"),
            message=data.get("message", ""),
            traceback=data.get("traceback", ""),
            attempts=data.get("attempts", 1),
        )

    def describe(self) -> str:
        """One-line human-readable summary (for error aggregation)."""
        key = self.spec_key[:12] or "<unknown-spec>"
        return f"{key}: {self.error_type}: {self.message} (attempts={self.attempts})"


@dataclass
class ExperimentResult:
    """Serialisable outcome of one :class:`ExperimentSpec` run."""

    benchmark: str
    architecture: str
    num_threads: int
    total_cycles: float
    cost: SimulationCost = field(default_factory=SimulationCost)
    wall_seconds: Optional[float] = None
    num_instances: int = 0
    total_instructions: int = 0
    ipc_samples: Dict[str, List[float]] = field(default_factory=dict)
    taskpoint: Optional[Dict[str, object]] = None
    spec_key: str = ""

    # ------------------------------------------------------------------
    @classmethod
    def from_simulation(
        cls,
        spec: ExperimentSpec,
        result: SimulationResult,
        stats: Optional[TaskPointStatistics] = None,
    ) -> "ExperimentResult":
        """Condense a full :class:`SimulationResult` into a storable record."""
        taskpoint: Optional[Dict[str, object]] = None
        if stats is not None:
            taskpoint = {
                "warmup_instances": stats.warmup_instances,
                "valid_samples": stats.valid_samples,
                "invalid_samples": stats.invalid_samples,
                "fast_forwarded": stats.fast_forwarded,
                "transitions_to_fast": stats.transitions_to_fast,
                "resamples": stats.resamples,
                # Keyed by the enum *value* (a string) and sorted: the result
                # must round-trip through JSON — worker frames, the on-disk
                # store — and produce canonical bytes everywhere.
                "resample_reasons": {
                    reason.value: count
                    for reason, count in sorted(
                        stats.resample_reasons.items(),
                        key=lambda item: item[0].value,
                    )
                },
                "fallback_estimates": stats.fallback_estimates,
            }
            # Statistics objects that can quantify their estimation
            # uncertainty (the stratified engine's) contribute a confidence
            # block; plain TaskPoint statistics leave the dict untouched, so
            # legacy result records stay byte-identical.
            confidence = getattr(stats, "confidence_summary", None)
            if callable(confidence):
                taskpoint["confidence"] = confidence(result.total_cycles)
            # The fidelity controller additionally records its budget and
            # commit/re-open counters, which the accuracy tables report as
            # achieved-error-versus-budget columns.
            fidelity = getattr(stats, "fidelity_summary", None)
            if callable(fidelity):
                taskpoint["fidelity"] = fidelity()
        return cls(
            benchmark=result.benchmark,
            architecture=result.architecture,
            num_threads=result.num_threads,
            total_cycles=result.total_cycles,
            cost=result.cost,
            wall_seconds=result.wall_seconds,
            num_instances=result.num_instances,
            total_instructions=result.total_instructions,
            ipc_samples={
                task_type: list(values)
                for task_type, values in sorted(result.ipc_by_type(detailed_only=True).items())
            },
            taskpoint=taskpoint,
            spec_key=spec.content_key(),
        )

    # ------------------------------------------------------------------
    @property
    def resamples(self) -> int:
        """Number of resampling events (0 for detailed baselines)."""
        return int(self.taskpoint["resamples"]) if self.taskpoint else 0

    def ipc_by_type(self, detailed_only: bool = True) -> Dict[str, List[float]]:
        """Per-task-type IPC samples of the measured (detailed) instances.

        Mirrors :meth:`repro.sim.results.SimulationResult.ipc_by_type` so the
        variation analysis accepts either object.  Only detailed-mode samples
        are stored, hence ``detailed_only=False`` is not supported.
        """
        if not detailed_only:
            raise ValueError("ExperimentResult only stores detailed-mode IPC samples")
        return dict(self.ipc_samples)

    def error_versus(self, reference: "ExperimentResult") -> float:
        """Absolute relative execution-time error versus ``reference``."""
        if reference.total_cycles <= 0:
            raise ValueError("reference experiment has non-positive execution time")
        return abs(self.total_cycles - reference.total_cycles) / reference.total_cycles

    def speedup_versus(self, reference: "ExperimentResult") -> float:
        """Deterministic (cost-model) simulation speedup versus ``reference``."""
        return self.cost.speedup_over(reference.cost)

    def wall_speedup_versus(self, reference: "ExperimentResult") -> Optional[float]:
        """Wall-clock speedup versus ``reference``; ``None`` if unmeasured."""
        if not self.wall_seconds or not reference.wall_seconds:
            return None
        if self.wall_seconds <= 0:
            return None
        return reference.wall_seconds / self.wall_seconds

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form (inverse of :meth:`from_dict`)."""
        return {
            "schema": SPEC_SCHEMA_VERSION,
            "benchmark": self.benchmark,
            "architecture": self.architecture,
            "num_threads": self.num_threads,
            "total_cycles": self.total_cycles,
            "cost": asdict(self.cost),
            "wall_seconds": self.wall_seconds,
            "num_instances": self.num_instances,
            "total_instructions": self.total_instructions,
            "ipc_samples": self.ipc_samples,
            "taskpoint": self.taskpoint,
            "spec_key": self.spec_key,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ExperimentResult":
        """Rebuild a result from :meth:`to_dict` output."""
        return cls(
            benchmark=data["benchmark"],
            architecture=data["architecture"],
            num_threads=data["num_threads"],
            total_cycles=data["total_cycles"],
            cost=SimulationCost(**data["cost"]),
            wall_seconds=data.get("wall_seconds"),
            num_instances=data.get("num_instances", 0),
            total_instructions=data.get("total_instructions", 0),
            ipc_samples={
                task_type: [float(v) for v in values]
                for task_type, values in data.get("ipc_samples", {}).items()
            },
            taskpoint=data.get("taskpoint"),
            spec_key=data.get("spec_key", ""),
        )
