"""Length-prefixed JSON framing shared by the async supervisor and workers.

The distributed backend (:mod:`repro.exp.distributed`), the multi-host
transport (:mod:`repro.exp.hosts`) and the worker entrypoint
(:mod:`repro.exp.worker`) exchange *frames*: a 4-byte big-endian header
followed by a UTF-8 JSON object.  The framing is transport-agnostic — the
same bytes flow over subprocess pipes, TCP sockets and SSH channels — which
is why the worker accepts ``--connect HOST PORT`` in addition to its default
stdio mode.

Compression
-----------
The header's most-significant bit marks a zlib-compressed payload; the
remaining 31 bits are the on-wire payload length (well above
:data:`MAX_FRAME_BYTES`, so the bit is free).  Decoders always understand
both forms.  Encoders only compress when asked to (``compress=True``) *and*
the payload is large enough to plausibly win
(:data:`COMPRESS_MIN_BYTES`) *and* compression actually shrinks it —
heartbeat pings therefore always travel uncompressed.  Whether a peer may be
*sent* compressed frames is negotiated once at connection setup: the worker
advertises ``"compress": true`` in its ``hello`` and the supervisor's
``hello_ack`` answers with the negotiated setting, so a peer that predates
this feature simply never receives a compressed frame.

Batching
--------
Protocol version 3 adds *batched dispatch*: a ``run_batch`` frame carries N
jobs in one frame, and the worker answers each job with its own ``result`` or
``error`` frame, in batch order, as it completes.  Those per-job answers
double as **acknowledgements** — a supervisor whose worker dies mid-batch
requeues exactly the jobs whose answer never arrived, so an acknowledged spec
is never executed twice.  The capability is negotiated through the worker's
``hello``: only a worker that advertised ``"batch": true`` is ever sent a
``run_batch`` frame, and a version-2 peer simply keeps receiving one ``run``
frame per spec.

Frame types
-----------
Supervisor to worker:

* ``{"type": "run", "job": <int>, "spec": <ExperimentSpec.to_dict()>}`` —
  execute one experiment; exactly one ``result``/``error`` frame answers it.
* ``{"type": "run_batch", "jobs": [{"job": <int>, "spec": <...>}, ...]}`` —
  execute N experiments in order; each is answered by its own
  ``result``/``error`` frame (protocol >= 3, and only after the worker's
  ``hello`` advertised ``"batch": true``).
* ``{"type": "ping", "seq": <int>}`` — heartbeat probe; answered immediately
  by the worker's reader thread even while a simulation is running.
* ``{"type": "hello_ack", "compress": <bool>}`` — answers a connect-back
  worker's ``hello``; ``compress`` tells the worker whether it may compress
  the frames it sends.  (Not sent on the stdio transport, where links are
  local pipes and compression never pays.)
* ``{"type": "shutdown"}`` — finish the current job (if any) and exit.

Worker to supervisor:

* ``{"type": "hello", "pid": <int>, "protocol": <int>, "compress": <bool>,
  "batch": <bool>[, "token": <str>]}`` — sent once on startup.  The
  ``token`` echoes ``--token`` and lets a multi-host supervisor match the
  inbound TCP connection to the launch that created it; ``batch`` advertises
  ``run_batch`` support (absent on version-2 peers, which therefore keep
  being dispatched one spec per frame).
* ``{"type": "result", "job": <int>, "result": <ExperimentResult.to_dict()>}``
* ``{"type": "error", "job": <int>, "error": <ExperimentFailure.to_dict()>}``
  — the spec raised; the worker stays alive and takes the next job.
* ``{"type": "pong", "seq": <int>}``

Service frames (protocol version 4)
-----------------------------------
The same framing carries the client API of the persistent simulation
service (:mod:`repro.serve`).  These frames flow between a *client* (the
``repro submit``/``status``/``watch``/``cancel`` subcommands, or
:class:`repro.serve.ServiceClient`) and the *daemon* (``repro serve``) —
never to workers, whose vocabulary above is unchanged; version 4 is
therefore wire-compatible with version-3 workers.

Client to daemon:

* ``{"type": "submit", "tenant": <str>, "specs": [<ExperimentSpec.to_dict()>,
  ...][, "priority": <int>]}`` — enqueue a job (a batch of specs) under a
  tenant's fair-share queue; answered by one ``submitted`` frame.
  Submitting a spec set whose job id is already active re-attaches to the
  running job instead of duplicating it.
* ``{"type": "status"[, "job": <str>]}`` — answered by ``job_status`` (or
  ``error_reply`` for an unknown id); without ``job``, by ``service_status``
  listing all known jobs.
* ``{"type": "watch", "job": <str>}`` — subscribe to a job's progress; the
  daemon streams ``job_update`` frames and finishes with ``job_done``.
* ``{"type": "cancel", "job": <str>}`` — cancel a job's queued specs
  (running specs finish and their results are kept); answered by
  ``cancel_ack``.
* ``{"type": "stats"}`` — answered by ``stats_report``.
* ``{"type": "stop"}`` — gracefully shut the daemon down (drains nothing:
  queued work stays journalled for the next start); answered by
  ``stopping``.

Daemon to client:

* ``{"type": "submitted", "job": <str>, "total": <int>, "cached": <int>,
  "attached": <bool>}`` — job accepted; ``cached`` specs were served from
  the store without executing, ``attached`` marks a re-attach to an
  already-active identical job.
* ``{"type": "job_status", ...}`` — one job's snapshot: per-state unit
  counts, terminal flag and overall status.
* ``{"type": "service_status", "jobs": [...]}`` — snapshots of all jobs.
* ``{"type": "job_update", "job": <str>, "seq": <int>, "key": <str>,
  "state": <str>, "cached": <bool>, ...}`` — one spec of a watched job
  reached a terminal state; ``seq`` is the daemon-wide completion sequence
  number (it totally orders completions across tenants).
* ``{"type": "job_done", "job": <str>, "status": <str>, "digest": <str>,
  "results": [...], "failures": [...]}`` — final watch frame; ``digest`` is
  the SHA-256 over the sorted normalised result payloads, byte-comparable
  with a serial run's store.
* ``{"type": "cancel_ack", "job": <str>, "cancelled": <int>}``
* ``{"type": "stats_report", "queue": {...}, "store": {...}, ...}`` —
  fair-share queue depths per tenant, store hit/miss/eviction counters,
  worker/host dispatch stats and daemon uptime.
* ``{"type": "error_reply", "error": <str>}`` — the request was malformed
  or referenced an unknown job; the connection stays usable.
* ``{"type": "stopping"}``
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import BinaryIO, Dict, Optional

#: Protocol version announced in the ``hello`` frame.  Bump on any
#: incompatible change to the frame vocabulary above.  Version 2 added the
#: compressed-frame header bit and the ``hello_ack`` negotiation (both
#: backward compatible: uncompressed frames are unchanged on the wire).
#: Version 3 added the ``run_batch`` frame and the ``batch`` hello
#: capability (backward compatible: the frame is only sent to workers that
#: advertised it).  Version 4 added the client/daemon service vocabulary
#: (``submit``/``status``/``watch``/``cancel``/``stats`` and their answers)
#: for :mod:`repro.serve`; the supervisor/worker vocabulary is untouched, so
#: version-3 workers interoperate unchanged.
PROTOCOL_VERSION = 4

#: Upper bound on a single frame payload (compressed or decompressed); a
#: frame header exceeding it means the stream is desynchronised (or hostile)
#: and the connection is torn down.
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Payloads below this size are never compressed: the zlib header plus the
#: CPU time would cost more than the handful of bytes saved.
COMPRESS_MIN_BYTES = 512

#: Header bit marking a zlib-compressed payload.
_COMPRESSED_BIT = 0x80000000

_HEADER = struct.Struct(">I")


class ProtocolError(RuntimeError):
    """The byte stream does not contain a well-formed frame."""


def encode_frame(message: Dict[str, object], *, compress: bool = False) -> bytes:
    """Serialise ``message`` to one length-prefixed frame.

    With ``compress=True`` the payload is zlib-compressed when it is at
    least :data:`COMPRESS_MIN_BYTES` long and compression actually shrinks
    it; the header's top bit records which form was sent, so decoders need
    no out-of-band signal.
    """
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(payload)} bytes exceeds the maximum")
    if compress and len(payload) >= COMPRESS_MIN_BYTES:
        squeezed = zlib.compress(payload, 6)
        if len(squeezed) < len(payload):
            return _HEADER.pack(len(squeezed) | _COMPRESSED_BIT) + squeezed
    return _HEADER.pack(len(payload)) + payload


def _unpack_header(header: bytes) -> "tuple[int, bool]":
    (word,) = _HEADER.unpack(header)
    compressed = bool(word & _COMPRESSED_BIT)
    length = word & ~_COMPRESSED_BIT
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame header announces {length} bytes")
    return length, compressed


def _decompress_payload(payload: bytes) -> bytes:
    """Inflate a compressed payload, capped at :data:`MAX_FRAME_BYTES`."""
    inflater = zlib.decompressobj()
    try:
        data = inflater.decompress(payload, MAX_FRAME_BYTES + 1)
    except zlib.error as exc:
        raise ProtocolError(f"undecompressable frame payload: {exc}") from exc
    if len(data) > MAX_FRAME_BYTES or not inflater.eof:
        raise ProtocolError("compressed frame inflates past the maximum")
    return data


def decode_payload(payload: bytes, *, compressed: bool = False) -> Dict[str, object]:
    """Parse a frame payload back into a message dictionary."""
    if compressed:
        payload = _decompress_payload(payload)
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame payload: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("frame payload is not a JSON object")
    return message


def _read_exactly(stream: BinaryIO, count: int) -> Optional[bytes]:
    """Read ``count`` bytes; ``None`` on clean EOF, error on a torn frame."""
    chunks = []
    missing = count
    while missing:
        chunk = stream.read(missing)
        if not chunk:
            if missing == count and not chunks:
                return None
            raise ProtocolError("stream closed mid-frame")
        chunks.append(chunk)
        missing -= len(chunk)
    return b"".join(chunks)


def read_frame(stream: BinaryIO) -> Optional[Dict[str, object]]:
    """Read one frame from a blocking binary stream; ``None`` at EOF."""
    header = _read_exactly(stream, _HEADER.size)
    if header is None:
        return None
    length, compressed = _unpack_header(header)
    payload = _read_exactly(stream, length)
    if payload is None:
        raise ProtocolError("stream closed between header and payload")
    return decode_payload(payload, compressed=compressed)


def write_frame(
    stream: BinaryIO, message: Dict[str, object], *, compress: bool = False
) -> None:
    """Write one frame to a blocking binary stream and flush it."""
    stream.write(encode_frame(message, compress=compress))
    stream.flush()


async def read_frame_async(stream) -> Dict[str, object]:
    """Read one frame from an ``asyncio.StreamReader``.

    Raises ``asyncio.IncompleteReadError`` at EOF and :class:`ProtocolError`
    on a desynchronised stream, so the supervisor and the blocking
    :func:`read_frame` share one definition of the wire format.
    """
    header = await stream.readexactly(_HEADER.size)
    length, compressed = _unpack_header(header)
    return decode_payload(await stream.readexactly(length), compressed=compressed)
