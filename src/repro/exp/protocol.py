"""Length-prefixed JSON framing shared by the async supervisor and workers.

The distributed backend (:mod:`repro.exp.distributed`) and the worker
entrypoint (:mod:`repro.exp.worker`) exchange *frames*: a 4-byte big-endian
unsigned payload length followed by a UTF-8 JSON object.  The framing is
transport-agnostic — the same bytes flow over subprocess pipes today and can
flow over a TCP socket or an SSH channel tomorrow, which is why the worker
accepts ``--connect HOST PORT`` in addition to its default stdio mode.

Frame types
-----------
Supervisor to worker:

* ``{"type": "run", "job": <int>, "spec": <ExperimentSpec.to_dict()>}`` —
  execute one experiment; exactly one ``result``/``error`` frame answers it.
* ``{"type": "ping", "seq": <int>}`` — heartbeat probe; answered immediately
  by the worker's reader thread even while a simulation is running.
* ``{"type": "shutdown"}`` — finish the current job (if any) and exit.

Worker to supervisor:

* ``{"type": "hello", "pid": <int>, "protocol": <int>}`` — sent once on
  startup.
* ``{"type": "result", "job": <int>, "result": <ExperimentResult.to_dict()>}``
* ``{"type": "error", "job": <int>, "error": <ExperimentFailure.to_dict()>}``
  — the spec raised; the worker stays alive and takes the next job.
* ``{"type": "pong", "seq": <int>}``
"""

from __future__ import annotations

import json
import struct
from typing import BinaryIO, Dict, Optional

#: Protocol version announced in the ``hello`` frame.  Bump on any
#: incompatible change to the frame vocabulary above.
PROTOCOL_VERSION = 1

#: Upper bound on a single frame payload; a frame header exceeding it means
#: the stream is desynchronised (or hostile) and the connection is torn down.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_HEADER = struct.Struct(">I")


class ProtocolError(RuntimeError):
    """The byte stream does not contain a well-formed frame."""


def encode_frame(message: Dict[str, object]) -> bytes:
    """Serialise ``message`` to one length-prefixed frame."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(payload)} bytes exceeds the maximum")
    return _HEADER.pack(len(payload)) + payload


def decode_payload(payload: bytes) -> Dict[str, object]:
    """Parse a frame payload back into a message dictionary."""
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame payload: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("frame payload is not a JSON object")
    return message


def _read_exactly(stream: BinaryIO, count: int) -> Optional[bytes]:
    """Read ``count`` bytes; ``None`` on clean EOF, error on a torn frame."""
    chunks = []
    missing = count
    while missing:
        chunk = stream.read(missing)
        if not chunk:
            if missing == count and not chunks:
                return None
            raise ProtocolError("stream closed mid-frame")
        chunks.append(chunk)
        missing -= len(chunk)
    return b"".join(chunks)


def read_frame(stream: BinaryIO) -> Optional[Dict[str, object]]:
    """Read one frame from a blocking binary stream; ``None`` at EOF."""
    header = _read_exactly(stream, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame header announces {length} bytes")
    payload = _read_exactly(stream, length)
    if payload is None:
        raise ProtocolError("stream closed between header and payload")
    return decode_payload(payload)


def write_frame(stream: BinaryIO, message: Dict[str, object]) -> None:
    """Write one frame to a blocking binary stream and flush it."""
    stream.write(encode_frame(message))
    stream.flush()


async def read_frame_async(stream) -> Dict[str, object]:
    """Read one frame from an ``asyncio.StreamReader``.

    Raises ``asyncio.IncompleteReadError`` at EOF and :class:`ProtocolError`
    on a desynchronised stream, so the supervisor and the blocking
    :func:`read_frame` share one definition of the wire format.
    """
    header = await stream.readexactly(_HEADER.size)
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame header announces {length} bytes")
    return decode_payload(await stream.readexactly(length))
