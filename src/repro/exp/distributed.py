"""Distributed async execution backend for the experiment orchestrator.

:class:`AsyncWorkerBackend` dispatches :class:`~repro.exp.spec.ExperimentSpec`
batches over an asyncio work queue to ``repro.exp.worker`` subprocesses
speaking the length-prefixed JSON protocol of :mod:`repro.exp.protocol` over
their stdin/stdout pipes.  The supervisor is transport-agnostic: a
:class:`_Worker` is just a pair of asyncio streams plus kill/wait handles, so
the same dispatch loop drives local pipe workers here and connect-back TCP
workers on other machines in :class:`repro.exp.hosts.MultiHostBackend`,
which subclasses this backend and overrides only how workers are acquired.

Fault model
-----------
* **Poison specs** — a spec that raises inside the worker comes back as an
  ``error`` frame; the worker stays alive, the failure is recorded as an
  :class:`~repro.exp.spec.ExperimentFailure` and the queue keeps draining.
  Deterministic failures are *not* retried.
* **Worker death** — a worker that exits or is killed mid-job has its job
  requeued (``max_retries`` times, then recorded as a failure) and the slot
  respawns a fresh worker.  A slot whose workers die repeatedly without ever
  completing a job gives up; when every slot has given up the remaining jobs
  are failed instead of waiting forever.  (The multi-host backend adds a
  second, host-level layer of this accounting: a *host* whose workers
  crash-loop is quarantined and its slots retire, leaving its jobs to the
  healthy hosts.)
* **Hung workers** — the supervisor pings every worker on a heartbeat
  interval; the worker's reader thread pongs even while a simulation is
  running, so a silence longer than ``heartbeat_timeout`` means the process
  is stopped or deadlocked (not merely busy) and it is killed, which routes
  into the worker-death path above.
* **Cancellation** — SIGINT (or cancelling the supervising task) shuts the
  pool down gracefully: workers are terminated and reaped, no orphan
  processes remain, and — with a streaming ``store`` attached — every
  experiment that finished before the interrupt is already persisted.

Batched dispatch
----------------
At cluster scale the sampled simulations themselves are cheap — TaskPoint's
whole premise — so the per-spec dispatch round-trip becomes the bottleneck.
``batch=`` bounds how many specs one dispatch frame may carry: a slot drains
up to that many jobs from the queue (never blocking to fill a batch) and
ships them in a single protocol-v3 ``run_batch`` frame; the worker answers
each with its own ``result``/``error`` frame, in order, as it completes.
Those per-spec answers double as acknowledgements: when a worker dies
mid-batch, exactly the unacknowledged jobs are requeued and the acknowledged
ones keep their outcomes, so nothing runs twice and the result store stays
byte-identical to a serial run.  ``batch="adaptive"`` starts every batch at
one spec and grows toward a cap based on the observed per-spec wall-time
(:class:`AdaptiveBatchSizer`), so sub-second specs amortise round-trips
while long specs keep one-spec retry granularity.  Workers that never
advertised the ``batch`` hello capability (protocol <= 2 peers) are
dispatched one ``run`` frame per spec, pipelined, so mixed fleets keep
working.

Determinism: results are collected by job index and returned in submission
order, and the workers funnel through the same
:func:`~repro.exp.runner.run_spec` as every other backend, so the output is
bit-identical to :class:`~repro.exp.backends.SerialBackend` regardless of
worker count, batch size, scheduling or retries (see
``tests/test_exp_distributed.py``, ``tests/test_exp_multihost.py`` and
``tests/test_exp_batching.py``).
"""

from __future__ import annotations

import asyncio
import os
import signal
import sys
from pathlib import Path
from typing import (
    Awaitable,
    Callable,
    Coroutine,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.exp import protocol
from repro.exp.backends import Outcome, Store, _raise_on_failure, map_unique
from repro.exp.spec import ExperimentFailure, ExperimentResult, ExperimentSpec


#: Minimum time a freshly spawned worker gets to send its ``hello`` frame
#: before the heartbeat monitor may declare it wedged — interpreter startup
#: plus importing the simulation stack can take seconds on a loaded host.
_STARTUP_GRACE = 30.0

#: Batch cap used when ``batch="adaptive"`` names no explicit cap.
DEFAULT_BATCH_CAP = 16

#: Adaptive sizing aims for batches of roughly this much work: sub-second
#: specs are packed until a batch is worth a couple of seconds (amortising
#: the dispatch round-trip), while specs at or above it stay unbatched so a
#: worker death never forfeits more than one spec's worth of progress.
ADAPTIVE_TARGET_SECONDS = 2.0


def parse_batch(raw: "Union[None, int, str]") -> "tuple[int, bool]":
    """Parse a batch knob into ``(cap, adaptive)``.

    Accepts ``None``/``1`` (no batching — one spec per dispatch frame, the
    historical behaviour), a positive integer (fixed batch size), or the
    strings ``"adaptive"`` / ``"adaptive:CAP"`` (grow from 1 toward the cap
    based on observed per-spec wall-time).
    """
    if raw is None:
        return 1, False
    if isinstance(raw, bool):  # bool is an int subclass; reject it explicitly
        raise ValueError(f"invalid batch size {raw!r}")
    if not isinstance(raw, int):
        text = str(raw).strip()
        if text.startswith("adaptive"):
            name, sep, cap_text = text.partition(":")
            try:
                if name != "adaptive":
                    raise ValueError(text)
                cap = int(cap_text) if sep else DEFAULT_BATCH_CAP
            except ValueError as exc:
                raise ValueError(
                    f"invalid batch spec {text!r} "
                    "(expected N, 'adaptive' or 'adaptive:N')"
                ) from exc
            if cap < 1:
                raise ValueError("adaptive batch cap must be >= 1")
            return cap, True
        try:
            raw = int(text)
        except ValueError as exc:
            raise ValueError(
                f"invalid batch spec {text!r} "
                "(expected N, 'adaptive' or 'adaptive:N')"
            ) from exc
    if raw < 1:
        raise ValueError("batch size must be >= 1")
    return raw, False


class AdaptiveBatchSizer:
    """Grows the dispatch batch size from 1 toward a cap as specs prove cheap.

    The sizer keeps an exponentially weighted mean of the observed per-spec
    wall-time and targets batches worth :data:`ADAPTIVE_TARGET_SECONDS` of
    work.  Growth is bounded to doubling per observation so a single
    misleading sample cannot jump straight to the cap, while shrinking (specs
    turned out slow) takes effect immediately — retry granularity is the
    side that must never lag behind reality.
    """

    def __init__(
        self,
        cap: int = DEFAULT_BATCH_CAP,
        target_seconds: float = ADAPTIVE_TARGET_SECONDS,
    ) -> None:
        if cap < 1:
            raise ValueError("cap must be >= 1")
        if target_seconds <= 0:
            raise ValueError("target_seconds must be positive")
        self.cap = cap
        self.target_seconds = target_seconds
        self._mean: Optional[float] = None
        self._size = 1

    @property
    def size(self) -> int:
        """Batch size the next dispatch should use."""
        return self._size

    def record(self, per_spec_seconds: float) -> None:
        """Feed one observed per-spec wall-time into the sizer."""
        per_spec_seconds = max(per_spec_seconds, 1e-6)
        if self._mean is None:
            self._mean = per_spec_seconds
        else:
            self._mean = 0.5 * self._mean + 0.5 * per_spec_seconds
        ideal = int(self.target_seconds / self._mean)
        self._size = max(1, min(self.cap, ideal, self._size * 2))


class WorkerDied(RuntimeError):
    """The worker process holding a job exited before answering it."""


class SpawnError(OSError):
    """A worker could not be brought up (spawn or connect-back failed)."""


def worker_environment(extra: Optional[Dict[str, str]] = None) -> Dict[str, str]:
    """Environment for a worker process that can import this repro package.

    Workers must import the same ``repro`` as the supervisor even when it
    only lives on the supervisor's ``sys.path`` (src checkouts), so the
    package root is prepended to ``PYTHONPATH``.  Shared by the local
    subprocess transport here and the launchers of :mod:`repro.exp.hosts`.
    """
    env = dict(os.environ)
    import repro

    package_root = str(Path(repro.__file__).resolve().parent.parent)
    existing = env.get("PYTHONPATH")
    if package_root not in (existing or "").split(os.pathsep):
        env["PYTHONPATH"] = (
            package_root + (os.pathsep + existing if existing else "")
        )
    if extra:
        env.update(extra)
    return env


class _Job:
    __slots__ = ("index", "spec", "key", "attempts")

    def __init__(self, index: int, spec: ExperimentSpec, key: str) -> None:
        self.index = index
        self.spec = spec
        self.key = key
        self.attempts = 0  # completed dispatch attempts that ended in death


class _Worker:
    """One live worker and its supervisor-side state, transport-agnostic.

    A worker is a frame source (``reader``, an ``asyncio.StreamReader``), a
    frame sink (``writer``, anything with ``write``/``drain``/``close``) and
    a pair of process handles (``kill_process``, ``wait_process``).  The
    subprocess transport builds one from a pipe pair
    (:meth:`from_process`); the multi-host transport builds one from an
    accepted TCP connection plus its launcher handle
    (:meth:`from_connection`).
    """

    def __init__(
        self,
        reader: "asyncio.StreamReader",
        writer,
        pid: int,
        kill_process: Callable[[], None],
        wait_process: Callable[[], Awaitable[object]],
        host: Optional[str] = None,
        compress_out: bool = False,
        handshaked: bool = False,
        hello: Optional[Dict[str, object]] = None,
    ) -> None:
        self.reader = reader
        self.writer = writer
        self.pid = pid
        self._kill_process = kill_process
        self._wait_process = wait_process
        self.host = host
        #: Whether frames *to* this worker may be compressed (negotiated).
        self.compress_out = compress_out
        self.alive = True
        self.spawned_at = asyncio.get_running_loop().time()
        self.last_seen = self.spawned_at
        self.handshaked = handshaked  # True once any frame (hello) arrived
        #: The worker's ``hello`` frame (capabilities); set at construction
        #: for connect-back workers (the acceptor consumed it) and by the
        #: reader for pipe workers.  ``hello_seen`` is also set when the
        #: worker dies hello-less, so nobody waits on a corpse.
        self.hello: Dict[str, object] = dict(hello) if hello else {}
        self.hello_seen = asyncio.Event()
        if hello is not None:
            self.hello_seen.set()
        self.pending: Dict[int, "asyncio.Future[Outcome]"] = {}
        self.completed = 0
        self.reader_task: Optional["asyncio.Task"] = None
        self.monitor_task: Optional["asyncio.Task"] = None

    @property
    def supports_batch(self) -> bool:
        """Whether this worker's hello advertised ``run_batch`` support."""
        return bool(self.hello.get("batch"))

    @classmethod
    def from_process(cls, proc: "asyncio.subprocess.Process") -> "_Worker":
        """Worker over a subprocess's stdin/stdout pipe pair."""
        return cls(
            reader=proc.stdout,
            writer=proc.stdin,
            pid=proc.pid,
            kill_process=proc.kill,
            wait_process=proc.wait,
        )

    @classmethod
    def from_connection(
        cls,
        reader: "asyncio.StreamReader",
        writer: "asyncio.StreamWriter",
        pid: int,
        kill_process: Callable[[], None],
        wait_process: Callable[[], Awaitable[object]],
        host: str,
        compress_out: bool = False,
        hello: Optional[Dict[str, object]] = None,
    ) -> "_Worker":
        """Worker over an accepted connect-back TCP stream pair.

        The hello frame was already consumed by the acceptor (and is passed
        in here, carrying the worker's capabilities), so the worker starts
        handshaked: heartbeat staleness applies immediately instead of the
        startup grace.
        """
        return cls(
            reader=reader,
            writer=writer,
            pid=pid,
            kill_process=kill_process,
            wait_process=wait_process,
            host=host,
            compress_out=compress_out,
            handshaked=True,
            hello=hello if hello is not None else {},
        )

    # ------------------------------------------------------------------
    async def send(self, message: Dict[str, object]) -> None:
        if self.writer is None or not self.alive:
            raise WorkerDied(f"worker {self.pid} is gone")
        try:
            self.writer.write(
                protocol.encode_frame(message, compress=self.compress_out)
            )
            await self.writer.drain()
        except (OSError, ConnectionResetError, BrokenPipeError) as exc:
            raise WorkerDied(f"worker {self.pid} pipe closed: {exc}") from exc

    def kill(self) -> None:
        """Forcefully terminate the worker process (best effort)."""
        try:
            self._kill_process()
        except (OSError, ProcessLookupError):
            pass

    async def wait(self) -> None:
        """Reap the worker process (or its launcher)."""
        await self._wait_process()

    def close_gracefully(self) -> None:
        """Ask the worker to exit: shutdown frame, then close its input."""
        if self.writer is None:
            return
        try:
            self.writer.write(protocol.encode_frame({"type": "shutdown"}))
            self.writer.close()
        except (OSError, RuntimeError):
            pass


class AsyncWorkerBackend:
    """Asyncio supervisor sharding experiments over worker subprocesses.

    Parameters
    ----------
    num_workers:
        Number of worker subprocesses (and of concurrent experiments).
    max_retries:
        How many times a job is requeued after the worker holding it died
        before it is recorded as a failure.  Failures *reported* by a live
        worker (the spec raised) are deterministic and never retried.
    heartbeat_interval / heartbeat_timeout:
        Ping cadence and the silence threshold after which a worker is
        declared hung and killed.  The timeout defaults to four intervals.
    spawn_retries:
        Consecutive worker deaths (without a completed job in between) a
        slot tolerates before giving up.
    batch:
        Specs per dispatch frame: ``None``/``1`` (default, one spec at a
        time), a fixed size ``N``, or ``"adaptive"`` / ``"adaptive:N"``
        (grow from 1 toward the cap as observed per-spec wall-times prove
        cheap).  Batches are drained from the queue without blocking — a
        slot never waits for a batch to fill — and a worker death requeues
        only the batch's unacknowledged specs.
    store:
        Optional result store (on-disk or in-memory) that completed
        experiments are streamed into as they finish (via
        ``put_if_absent``, so concurrent supervisors sharing an on-disk
        store do not rewrite each other's entries).  A cancelled run then
        loses only the in-flight experiments.
    worker_env:
        Extra environment variables for the worker processes (tests use
        this for ``PYTHONHASHSEED`` and fault injection).
    python:
        Interpreter to launch workers with; defaults to ``sys.executable``.

    The backend is synchronous to its callers (it owns its event loop via
    ``asyncio.run``), so it drops into :func:`repro.exp.run_experiments`
    exactly like the serial and pool backends.
    """

    def __init__(
        self,
        num_workers: int = 2,
        *,
        max_retries: int = 2,
        heartbeat_interval: float = 5.0,
        heartbeat_timeout: Optional[float] = None,
        spawn_retries: int = 2,
        batch: Union[None, int, str] = None,
        store: Optional[Store] = None,
        worker_env: Optional[Dict[str, str]] = None,
        python: Optional[str] = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if heartbeat_timeout is not None and heartbeat_timeout <= heartbeat_interval:
            # The monitor wakes every interval and checks staleness before
            # pinging; a timeout at or below the interval would kill every
            # healthy worker on its first wakeup.
            raise ValueError("heartbeat_timeout must exceed heartbeat_interval")
        self.num_workers = num_workers
        self.max_retries = max_retries
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = (
            heartbeat_timeout if heartbeat_timeout is not None
            else 4.0 * heartbeat_interval
        )
        self.spawn_retries = spawn_retries
        self.batch_cap, self.batch_adaptive = parse_batch(batch)
        self.store = store
        self.worker_env = dict(worker_env) if worker_env else {}
        self.python = python
        self.stats: Dict[str, int] = {}
        self._pids: set = set()
        self._workers: List[_Worker] = []
        self._sizer: Optional[AdaptiveBatchSizer] = None
        self._live_slots = 0
        #: Service mode (the persistent daemon): slots never give up — a
        #: crash-looping slot backs off and retries instead of retiring,
        #: because an idle service must recover when the machine heals.
        self._service_mode = False
        self._service_tasks: List["asyncio.Task"] = []

    # ------------------------------------------------------------------
    def active_pids(self) -> List[int]:
        """PIDs of the currently live worker processes (for tests/monitoring)."""
        return sorted(self._pids)

    def run_outcomes(self, specs: Sequence[ExperimentSpec]) -> List[Outcome]:
        """Per-spec outcomes; worker deaths and raising specs do not stall."""
        if self._service_mode:
            raise RuntimeError(
                "backend is running as a persistent service; "
                "submit jobs through its queue instead of run_outcomes()"
            )
        if not specs:
            return []

        def runner(unique_specs: List[ExperimentSpec]) -> List[Outcome]:
            try:
                return asyncio.run(self._supervise(unique_specs))
            finally:
                self._kill_leftovers()

        return map_unique(specs, runner)

    def run(self, specs: Sequence[ExperimentSpec]) -> List[ExperimentResult]:
        """Execute ``specs``; raises if any spec ultimately failed."""
        return _raise_on_failure(self.run_outcomes(specs))

    # ------------------------------------------------------------------
    def _kill_leftovers(self) -> None:
        """Last-resort synchronous cleanup once the event loop is gone."""
        for pid in list(self._pids):
            try:
                os.kill(pid, getattr(signal, "SIGKILL", signal.SIGTERM))
            except (OSError, ProcessLookupError):
                pass
            self._pids.discard(pid)
        self._workers.clear()

    def _worker_environment(self) -> Dict[str, str]:
        return worker_environment(self.worker_env)

    async def _spawn_worker(self) -> _Worker:
        proc = await asyncio.create_subprocess_exec(
            self.python or sys.executable,
            "-m", "repro.exp.worker",
            stdin=asyncio.subprocess.PIPE,
            stdout=asyncio.subprocess.PIPE,
            env=self._worker_environment(),
        )
        worker = _Worker.from_process(proc)
        self._register_worker(worker)
        return worker

    def _register_worker(self, worker: _Worker) -> None:
        """Track a freshly acquired worker and start its reader + monitor."""
        self._count("spawns")
        self._pids.add(worker.pid)
        self._workers.append(worker)
        worker.reader_task = asyncio.ensure_future(self._read_worker(worker))
        worker.monitor_task = asyncio.ensure_future(self._monitor_worker(worker))

    def _release_worker(self, worker: _Worker) -> None:
        worker.alive = False
        self._pids.discard(worker.pid)
        if worker in self._workers:
            self._workers.remove(worker)

    async def _read_worker(self, worker: _Worker) -> None:
        """Parse frames from one worker until its stream closes."""
        loop = asyncio.get_running_loop()
        try:
            while True:
                message = await protocol.read_frame_async(worker.reader)
                worker.last_seen = loop.time()
                worker.handshaked = True
                kind = message.get("type")
                if kind == "hello":
                    worker.hello = message
                    worker.hello_seen.set()
                elif kind in ("result", "error"):
                    future = worker.pending.get(message.get("job"))
                    if future is not None and not future.done():
                        if kind == "result":
                            future.set_result(
                                ExperimentResult.from_dict(message["result"])
                            )
                        else:
                            future.set_result(
                                ExperimentFailure.from_dict(message["error"])
                            )
                # hello/pong only refresh last_seen, handled above
        except asyncio.CancelledError:
            pass  # supervisor-initiated shutdown; it owns process cleanup
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
            OSError,
            protocol.ProtocolError,
            KeyError,
            TypeError,
            ValueError,
        ):
            # Torn or malformed stream.  The process may well still be alive
            # (e.g. something wrote to the real stdout and desynchronised the
            # frames); kill it so a requeued job is not silently duplicated
            # by an orphan twin.
            worker.kill()
        finally:
            self._release_worker(worker)
            worker.hello_seen.set()  # a dead worker's capabilities are moot
            for future in list(worker.pending.values()):
                if not future.done():
                    future.set_exception(
                        WorkerDied(f"worker {worker.pid} died mid-job")
                    )

    async def _monitor_worker(self, worker: _Worker) -> None:
        """Heartbeat one worker; kill it when it goes silent."""
        loop = asyncio.get_running_loop()
        sequence = 0
        while worker.alive:
            await asyncio.sleep(self.heartbeat_interval)
            if not worker.alive:
                return
            # Cold start (importing the simulation stack) does not count
            # against the heartbeat; before the hello frame only the far
            # more generous startup deadline applies.
            if worker.handshaked:
                silent = loop.time() - worker.last_seen > self.heartbeat_timeout
            else:
                silent = (
                    loop.time() - worker.spawned_at
                    > max(self.heartbeat_timeout, _STARTUP_GRACE)
                )
            if silent:
                self._count("heartbeat_kills")
                worker.kill()
                return  # the reader's EOF turns this into the death path
            if not worker.handshaked:
                continue
            sequence += 1
            try:
                await worker.send({"type": "ping", "seq": sequence})
            except WorkerDied:
                return

    def _batch_limit(self, available: int) -> int:
        """How many of the ``available`` jobs the next dispatch may carry.

        The configured batch size (or the adaptive sizer's current one) is
        additionally capped at this slot's fair share of the remaining
        work: amortisation must not cost parallelism, and without the cap a
        fixed ``--batch 16`` on a 20-spec grid would let the first slot
        swallow 16 specs while its siblings idle.
        """
        limit = self._sizer.size if self._sizer is not None else self.batch_cap
        if limit <= 1:
            return 1
        # Divide among the slots still running, not the configured total:
        # retired slots (quarantined hosts, crash-looped spawns) must not
        # shrink the survivors' batches for the rest of the run.
        slots = self._live_slots or self.num_workers
        share = -(-available // max(1, slots))  # ceil division
        return max(1, min(limit, share))

    def _count(self, key: str, value: int = 1) -> None:
        self.stats[key] = self.stats.get(key, 0) + value

    async def _execute_batch(
        self,
        worker: _Worker,
        jobs: List[_Job],
        finish: Callable[[_Job, Outcome], None],
        host,
    ) -> "Tuple[List[_Job], bool]":
        """Dispatch ``jobs`` to one live worker; ``(died_jobs, any_completed)``.

        A multi-job dispatch goes out as a single ``run_batch`` frame when
        the worker's hello advertised the capability, and as pipelined
        per-spec ``run`` frames otherwise (old peers answer those in order
        just the same).  Either way the worker's per-spec ``result``/
        ``error`` frames are the acknowledgements, and each job is
        ``finish``\\ ed — persisted, when a streaming store is attached —
        *the moment its answer arrives*, not when the batch completes: a
        cancellation (SIGINT) mid-batch therefore keeps every acknowledged
        result, exactly as unbatched dispatch would.  Jobs whose answer
        never arrives before the worker dies are returned for the caller to
        requeue, in dispatch order (the first was the one executing).
        """
        loop = asyncio.get_running_loop()
        if len(jobs) > 1 and not worker.hello_seen.is_set():
            # The framing choice needs the worker's capabilities.  A healthy
            # worker's hello is its very first frame, so this wait is brief;
            # on timeout fall back to per-spec frames, which any peer
            # understands (and a dead worker fails the sends below).
            try:
                await asyncio.wait_for(worker.hello_seen.wait(), _STARTUP_GRACE)
            except asyncio.TimeoutError:
                pass
        futures: "List[asyncio.Future[Outcome]]" = []
        for job in jobs:
            future: "asyncio.Future[Outcome]" = loop.create_future()
            worker.pending[job.index] = future
            futures.append(future)
        died: List[_Job] = []
        completed = 0
        started = loop.time()
        try:
            try:
                if len(jobs) > 1 and worker.supports_batch:
                    await worker.send({
                        "type": "run_batch",
                        "jobs": [
                            {"job": job.index, "spec": job.spec.to_dict()}
                            for job in jobs
                        ],
                    })
                    self._count("dispatch_frames")
                    self._count("batch_frames")
                else:
                    for job in jobs:
                        await worker.send({
                            "type": "run",
                            "job": job.index,
                            "spec": job.spec.to_dict(),
                        })
                        self._count("dispatch_frames")
                self.stats["max_batch"] = max(
                    self.stats.get("max_batch", 0), len(jobs)
                )
            except WorkerDied as lost:
                # The pipe broke mid-send.  The worker may have answered
                # earlier jobs of this dispatch before dying, and those
                # result frames can still sit unparsed in the reader's
                # buffer — let the reader drain to EOF first (its exit
                # handler fails whatever stays pending), so acknowledged
                # specs keep their outcomes instead of being re-executed.
                worker.kill()
                if worker.reader_task is not None:
                    try:
                        await asyncio.wait_for(
                            asyncio.shield(worker.reader_task), timeout=5.0
                        )
                    except asyncio.TimeoutError:
                        pass
                # Backstop for futures the reader no longer covers (its
                # cleanup may have run before they were registered).
                for future in futures:
                    if not future.done():
                        future.set_exception(
                            WorkerDied(f"worker {worker.pid} died: {lost}")
                        )
            for job, future in zip(jobs, futures):
                try:
                    outcome = await future
                except WorkerDied:
                    died.append(job)
                    continue
                completed += 1
                worker.completed += 1
                if host is not None:
                    host.record_success()
                if isinstance(outcome, ExperimentFailure):
                    outcome.attempts = job.attempts + 1
                finish(job, outcome)
        finally:
            for job in jobs:
                worker.pending.pop(job.index, None)
            if self._sizer is not None and completed:
                self._sizer.record((loop.time() - started) / completed)
        return died, completed > 0

    async def _worker_slot(
        self,
        queue: "asyncio.Queue[_Job]",
        finish: Callable[[_Job, Outcome], None],
        spawn: Optional[Callable[[], Awaitable[_Worker]]] = None,
        host=None,
    ) -> None:
        """One dispatch loop: owns (at most) one live worker at a time.

        ``spawn`` acquires a fresh worker (defaults to the local subprocess
        transport) and ``host`` is the optional host-accounting object of
        the multi-host backend: its ``record_death``/``record_success``
        methods aggregate failures across every slot of one machine, and a
        quarantined host retires its slots (requeueing any job in hand) so
        the remaining hosts drain the queue.
        """
        spawn = spawn if spawn is not None else self._spawn_worker
        try:
            await self._dispatch_loop(queue, finish, spawn, host)
        finally:
            # However this slot ends (retirement, give-up, cancellation),
            # the fair-share denominator follows the surviving slots.
            self._live_slots = max(0, self._live_slots - 1)

    async def _dispatch_loop(
        self,
        queue: "asyncio.Queue[_Job]",
        finish: Callable[[_Job, Outcome], None],
        spawn: Callable[[], Awaitable[_Worker]],
        host,
    ) -> None:
        """The body of one slot: spawn, dispatch batches, handle deaths."""
        worker: Optional[_Worker] = None
        consecutive_deaths = 0
        while True:
            job = await queue.get()
            jobs = [job]
            # Opportunistic batching: drain whatever is already waiting, up
            # to the batch limit, without ever blocking to fill a batch — an
            # emptying queue degrades gracefully to one-spec dispatches.
            limit = self._batch_limit(queue.qsize() + 1)
            while len(jobs) < limit:
                try:
                    jobs.append(queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            if host is not None and host.quarantined:
                for requeued in jobs:
                    queue.put_nowait(requeued)
                # A sibling slot's deaths quarantined the host while this
                # slot's worker was healthy and idle: ask it to exit now
                # rather than hold a process (or SSH channel) until the end
                # of the batch.  Its reader's EOF does the bookkeeping.
                if worker is not None and worker.alive:
                    worker.close_gracefully()
                return
            if worker is None or not worker.alive:
                try:
                    worker = await spawn()
                except (OSError, ValueError) as exc:
                    consecutive_deaths += 1
                    for requeued in jobs:  # spawn failure is not the jobs' fault
                        queue.put_nowait(requeued)
                    if self._record_host_death(host):
                        return
                    if consecutive_deaths > self.spawn_retries:
                        if not self._service_mode:
                            return
                        # A service slot never retires on spawn failures: it
                        # backs off (bounded) and keeps trying, so the pool
                        # heals itself when the machine does.
                        self._count("slot_backoffs")
                        await asyncio.sleep(self._backoff_delay(consecutive_deaths))
                        continue
                    await asyncio.sleep(0.05 * consecutive_deaths)
                    continue
            try:
                died, completed_any = await self._execute_batch(
                    worker, jobs, finish, host
                )
            except Exception as exc:  # supervisor bug: fail the jobs, stay live
                # Jobs already finished before the exception are protected
                # by finish()'s exactly-once guard.  Unserialisable specs
                # cannot land here (content_key() JSON-dumped every spec
                # before it became a job), so this is a genuine-bug backstop
                # where failing the batch beats requeueing it forever.
                for failed in jobs:
                    finish(failed, ExperimentFailure.from_exception(failed.key, exc))
                continue
            if completed_any:
                consecutive_deaths = 0
            if not died:
                continue
            # One worker death, however many unacknowledged jobs it held:
            # host/slot health accounting counts processes, not specs.
            self._count("worker_deaths")
            consecutive_deaths += 1
            worker = None
            # Jobs execute and are acknowledged in dispatch order, so only
            # the *first* unacknowledged job can have been executing when
            # the worker died — it alone consumes retry budget.  The rest
            # of the tail was merely co-batched (possibly never even sent)
            # and requeues with its budget intact, so a poisonous spec
            # cannot burn its batch-mates' max_retries from the head of
            # the queue.
            for position, lost in enumerate(died):
                if position == 0:
                    lost.attempts += 1
                if lost.attempts > self.max_retries:
                    finish(lost, ExperimentFailure(
                        spec_key=lost.key,
                        error_type="WorkerDied",
                        message=(
                            f"worker died {lost.attempts} time(s) while running "
                            f"{lost.spec.label()}"
                        ),
                        attempts=lost.attempts,
                    ))
                else:
                    self._count("requeues")
                    queue.put_nowait(lost)
            if self._record_host_death(host):
                return
            if consecutive_deaths > self.spawn_retries:
                if not self._service_mode:
                    return  # crash-looping; let the remaining slots (if any) work
                # Service mode: back off instead of retiring — queued work
                # must eventually run once workers stop dying, and retry
                # budgets above already bound how often one spec recycles.
                self._count("slot_backoffs")
                await asyncio.sleep(self._backoff_delay(consecutive_deaths))

    def _record_host_death(self, host) -> bool:
        """Feed one worker death into ``host``; True when the slot must retire."""
        if host is None:
            return False
        if host.record_death():
            self._count("hosts_quarantined")
        return host.quarantined

    def _backoff_delay(self, consecutive_deaths: int) -> float:
        """Service-mode retry delay once a slot exceeds its spawn budget.

        Doubles from 0.5 s and saturates at 30 s: fast enough that a healed
        machine resumes promptly, slow enough that a broken interpreter does
        not fork-bomb the host while the daemon idles.
        """
        over = max(0, consecutive_deaths - self.spawn_retries - 1)
        return min(30.0, 0.5 * (2 ** min(over, 6)))

    def absolve_stall(self, started: float, ended: float) -> None:
        """Forgive a supervisor-side event-loop stall of ``ended - started``.

        A synchronous call on the event loop (a shard-locked store write on
        a slow filesystem, say) freezes frame reading: no pongs or hellos
        arrive while it runs.  When the stall exceeded half a heartbeat
        interval, restart every worker's staleness and startup clock so
        healthy workers are not killed for the supervisor's own pause.  Used
        by the streaming ``finish`` here and by the service daemon's.
        """
        if ended - started > self.heartbeat_interval / 2:
            for other in self._workers:
                other.last_seen = max(other.last_seen, ended)
                other.spawned_at = max(other.spawned_at, ended)

    # ------------------------------------------------------------------
    # Service mode: a persistent daemon (repro.serve) runs the pool against
    # an external queue forever instead of supervising one finite spec list.
    # ------------------------------------------------------------------
    async def start_service(
        self,
        queue,
        finish: Callable[[_Job, Outcome], None],
    ) -> None:
        """Start the worker slots against an external (long-lived) queue.

        ``queue`` must offer the ``asyncio.Queue`` surface the dispatch
        loops consume (``get``/``get_nowait``/``put_nowait``/``qsize``) —
        the service's fair-share queue does.  ``finish(job, outcome)`` is
        called exactly once per completed job, on the event loop.  Slots
        run until :meth:`stop_service`; in service mode they back off on
        crash-loops instead of giving up, and ``run_outcomes`` is refused
        while the service owns the pool.
        """
        if self._service_tasks:
            raise RuntimeError("service already started")
        self._service_mode = True
        self.stats = {}
        self._workers = []
        self._pids = set()
        self._sizer = (
            AdaptiveBatchSizer(self.batch_cap) if self.batch_adaptive else None
        )
        await self._startup()
        coroutines = self._slot_coroutines(queue, finish, self.num_workers)
        self._service_tasks = [
            asyncio.ensure_future(coroutine) for coroutine in coroutines
        ]
        self._live_slots = len(self._service_tasks)

    async def stop_service(self) -> None:
        """Stop the slots, reap every worker and release the transport."""
        tasks, self._service_tasks = self._service_tasks, []
        for task in tasks:
            task.cancel()
        for task in tasks:
            try:
                await task
            except BaseException:
                pass
        try:
            await self._shutdown_workers()
            await self._teardown()
        finally:
            self._service_mode = False

    def dispatch_snapshot(self) -> Dict[str, object]:
        """Live dispatch counters for the service's ``stats`` frame."""
        return {
            "live_workers": len(self._workers),
            "live_slots": self._live_slots,
            "counters": dict(self.stats),
        }

    # ------------------------------------------------------------------
    async def _startup(self) -> None:
        """Transport setup before any slot runs (multi-host: the listener)."""

    async def _teardown(self) -> None:
        """Transport cleanup after every worker was reaped."""

    def _slot_coroutines(
        self,
        queue: "asyncio.Queue[_Job]",
        finish: Callable[[_Job, Outcome], None],
        num_jobs: int,
    ) -> List[Coroutine]:
        """Dispatch-loop coroutines to run; one per concurrent worker."""
        return [
            self._worker_slot(queue, finish)
            for _ in range(min(self.num_workers, num_jobs))
        ]

    async def _shutdown_workers(self) -> None:
        """Terminate and reap every live worker; tolerate cancellation.

        The reader tasks are deliberately left running until each worker is
        reaped: a worker holding a deep batch may have many unread result
        frames in flight, and with nobody consuming them the stream's flow
        control pauses the pipe transport before its EOF — after which the
        process's ``wait()`` can never resolve.  The readers drain those
        frames (harmlessly: the futures are already settled) and see the
        EOF that lets the transport close.
        """
        workers = list(self._workers)
        for worker in workers:
            worker.alive = False
            if worker.monitor_task is not None:
                worker.monitor_task.cancel()
            worker.close_gracefully()
        for worker in workers:
            try:
                await asyncio.wait_for(worker.wait(), timeout=2.0)
            except BaseException:
                worker.kill()
                try:
                    # Bounded: a SIGKILLed worker's EOF arrives promptly,
                    # but an unreachable transport must not wedge shutdown.
                    await asyncio.wait_for(worker.wait(), timeout=5.0)
                except BaseException:
                    pass
            self._pids.discard(worker.pid)
            if worker.reader_task is not None:
                worker.reader_task.cancel()  # EOF normally ended it already
        self._workers = [w for w in self._workers if w not in workers]

    async def _supervise(self, specs: Sequence[ExperimentSpec]) -> List[Outcome]:
        """Run unique ``specs`` to completion; one outcome per spec, in order."""
        loop = asyncio.get_running_loop()
        self.stats = {}
        self._workers = []
        self._pids = set()
        self._sizer = (
            AdaptiveBatchSizer(self.batch_cap) if self.batch_adaptive else None
        )
        self._live_slots = 0

        queue: "asyncio.Queue[_Job]" = asyncio.Queue()
        jobs = [
            _Job(index, spec, spec.content_key())
            for index, spec in enumerate(specs)
        ]
        for job in jobs:
            queue.put_nowait(job)
        outcomes: List[Optional[Outcome]] = [None] * len(jobs)
        remaining = len(jobs)
        done = asyncio.Event()
        if not jobs:
            done.set()

        def finish(job: _Job, outcome: Outcome) -> None:
            nonlocal remaining
            if outcomes[job.index] is not None:
                return  # defensive: a job finishes exactly once
            outcomes[job.index] = outcome
            remaining -= 1
            self._count("finished_jobs")
            # Streaming is best-effort durability: no store problem may wedge
            # the supervisor (done must always be reachable), and the caller
            # still holds every outcome in memory either way.
            if self.store is not None:
                write_started = loop.time()
                try:
                    if isinstance(outcome, ExperimentFailure):
                        self.store.record_failure(job.spec, outcome)
                    else:
                        self.store.put_if_absent(job.spec, outcome)
                except Exception as exc:
                    print(
                        f"repro.exp.distributed: store write failed: {exc}",
                        file=sys.stderr,
                    )
                # The synchronous write (shard flock on a contended or slow
                # filesystem) freezes the event loop; forgive the stall so
                # healthy workers are not heartbeat-killed for it.
                self.absolve_stall(write_started, loop.time())
            if remaining == 0:
                done.set()

        interrupted = False
        shutting_down = False
        supervise_task = asyncio.current_task()

        def on_sigint() -> None:
            nonlocal interrupted
            interrupted = True
            if supervise_task is not None:
                supervise_task.cancel()

        sigint_installed = False
        try:
            loop.add_signal_handler(signal.SIGINT, on_sigint)
            sigint_installed = True
        except (ValueError, NotImplementedError, RuntimeError):
            pass  # non-main thread or platform without signal support

        slots: List["asyncio.Task"] = []

        def on_slot_done(_task: "asyncio.Task") -> None:
            if shutting_down or done.is_set():
                return  # cancellation, not exhaustion: leave jobs unwritten
            if not all(task.done() for task in slots):
                return
            # Every slot gave up (crash-looping workers): fail what is left.
            while not queue.empty():
                job = queue.get_nowait()
                if outcomes[job.index] is None:
                    finish(job, ExperimentFailure(
                        spec_key=job.key,
                        error_type="WorkerPoolExhausted",
                        message="every worker slot gave up before this spec ran",
                        attempts=job.attempts,
                    ))
            done.set()

        try:
            await self._startup()
            slots.extend(
                asyncio.ensure_future(coroutine)
                for coroutine in self._slot_coroutines(queue, finish, len(jobs))
            )
            self._live_slots = len(slots)
            for slot in slots:
                slot.add_done_callback(on_slot_done)
            await done.wait()
        except asyncio.CancelledError:
            if not interrupted:
                raise
        finally:
            shutting_down = True
            if sigint_installed:
                loop.remove_signal_handler(signal.SIGINT)
            for slot in slots:
                slot.cancel()
            for slot in slots:
                try:
                    await slot
                except BaseException:
                    pass
            await self._shutdown_workers()
            await self._teardown()

        if interrupted:
            raise KeyboardInterrupt
        return [
            outcome if outcome is not None else ExperimentFailure(
                spec_key=job.key,
                error_type="Unexecuted",
                message="supervisor exited before this spec ran",
                attempts=job.attempts,
            )
            for job, outcome in zip(jobs, outcomes)
        ]
