"""Distributed async execution backend for the experiment orchestrator.

:class:`AsyncWorkerBackend` dispatches :class:`~repro.exp.spec.ExperimentSpec`
batches over an asyncio work queue to ``repro.exp.worker`` subprocesses
speaking the length-prefixed JSON protocol of :mod:`repro.exp.protocol` over
their stdin/stdout pipes.  The supervisor is transport-agnostic: a
:class:`_Worker` is just a pair of asyncio streams plus kill/wait handles, so
the same dispatch loop drives local pipe workers here and connect-back TCP
workers on other machines in :class:`repro.exp.hosts.MultiHostBackend`,
which subclasses this backend and overrides only how workers are acquired.

Fault model
-----------
* **Poison specs** — a spec that raises inside the worker comes back as an
  ``error`` frame; the worker stays alive, the failure is recorded as an
  :class:`~repro.exp.spec.ExperimentFailure` and the queue keeps draining.
  Deterministic failures are *not* retried.
* **Worker death** — a worker that exits or is killed mid-job has its job
  requeued (``max_retries`` times, then recorded as a failure) and the slot
  respawns a fresh worker.  A slot whose workers die repeatedly without ever
  completing a job gives up; when every slot has given up the remaining jobs
  are failed instead of waiting forever.  (The multi-host backend adds a
  second, host-level layer of this accounting: a *host* whose workers
  crash-loop is quarantined and its slots retire, leaving its jobs to the
  healthy hosts.)
* **Hung workers** — the supervisor pings every worker on a heartbeat
  interval; the worker's reader thread pongs even while a simulation is
  running, so a silence longer than ``heartbeat_timeout`` means the process
  is stopped or deadlocked (not merely busy) and it is killed, which routes
  into the worker-death path above.
* **Cancellation** — SIGINT (or cancelling the supervising task) shuts the
  pool down gracefully: workers are terminated and reaped, no orphan
  processes remain, and — with a streaming ``store`` attached — every
  experiment that finished before the interrupt is already persisted.

Determinism: results are collected by job index and returned in submission
order, and the workers funnel through the same
:func:`~repro.exp.runner.run_spec` as every other backend, so the output is
bit-identical to :class:`~repro.exp.backends.SerialBackend` regardless of
worker count, scheduling or retries (see ``tests/test_exp_distributed.py``
and ``tests/test_exp_multihost.py``).
"""

from __future__ import annotations

import asyncio
import os
import signal
import sys
from pathlib import Path
from typing import Awaitable, Callable, Coroutine, Dict, List, Optional, Sequence

from repro.exp import protocol
from repro.exp.backends import Outcome, Store, _raise_on_failure, map_unique
from repro.exp.spec import ExperimentFailure, ExperimentResult, ExperimentSpec


#: Minimum time a freshly spawned worker gets to send its ``hello`` frame
#: before the heartbeat monitor may declare it wedged — interpreter startup
#: plus importing the simulation stack can take seconds on a loaded host.
_STARTUP_GRACE = 30.0


class WorkerDied(RuntimeError):
    """The worker process holding a job exited before answering it."""


class SpawnError(OSError):
    """A worker could not be brought up (spawn or connect-back failed)."""


def worker_environment(extra: Optional[Dict[str, str]] = None) -> Dict[str, str]:
    """Environment for a worker process that can import this repro package.

    Workers must import the same ``repro`` as the supervisor even when it
    only lives on the supervisor's ``sys.path`` (src checkouts), so the
    package root is prepended to ``PYTHONPATH``.  Shared by the local
    subprocess transport here and the launchers of :mod:`repro.exp.hosts`.
    """
    env = dict(os.environ)
    import repro

    package_root = str(Path(repro.__file__).resolve().parent.parent)
    existing = env.get("PYTHONPATH")
    if package_root not in (existing or "").split(os.pathsep):
        env["PYTHONPATH"] = (
            package_root + (os.pathsep + existing if existing else "")
        )
    if extra:
        env.update(extra)
    return env


class _Job:
    __slots__ = ("index", "spec", "key", "attempts")

    def __init__(self, index: int, spec: ExperimentSpec, key: str) -> None:
        self.index = index
        self.spec = spec
        self.key = key
        self.attempts = 0  # completed dispatch attempts that ended in death


class _Worker:
    """One live worker and its supervisor-side state, transport-agnostic.

    A worker is a frame source (``reader``, an ``asyncio.StreamReader``), a
    frame sink (``writer``, anything with ``write``/``drain``/``close``) and
    a pair of process handles (``kill_process``, ``wait_process``).  The
    subprocess transport builds one from a pipe pair
    (:meth:`from_process`); the multi-host transport builds one from an
    accepted TCP connection plus its launcher handle
    (:meth:`from_connection`).
    """

    def __init__(
        self,
        reader: "asyncio.StreamReader",
        writer,
        pid: int,
        kill_process: Callable[[], None],
        wait_process: Callable[[], Awaitable[object]],
        host: Optional[str] = None,
        compress_out: bool = False,
        handshaked: bool = False,
    ) -> None:
        self.reader = reader
        self.writer = writer
        self.pid = pid
        self._kill_process = kill_process
        self._wait_process = wait_process
        self.host = host
        #: Whether frames *to* this worker may be compressed (negotiated).
        self.compress_out = compress_out
        self.alive = True
        self.spawned_at = asyncio.get_running_loop().time()
        self.last_seen = self.spawned_at
        self.handshaked = handshaked  # True once any frame (hello) arrived
        self.pending: Dict[int, "asyncio.Future[Outcome]"] = {}
        self.completed = 0
        self.reader_task: Optional["asyncio.Task"] = None
        self.monitor_task: Optional["asyncio.Task"] = None

    @classmethod
    def from_process(cls, proc: "asyncio.subprocess.Process") -> "_Worker":
        """Worker over a subprocess's stdin/stdout pipe pair."""
        return cls(
            reader=proc.stdout,
            writer=proc.stdin,
            pid=proc.pid,
            kill_process=proc.kill,
            wait_process=proc.wait,
        )

    @classmethod
    def from_connection(
        cls,
        reader: "asyncio.StreamReader",
        writer: "asyncio.StreamWriter",
        pid: int,
        kill_process: Callable[[], None],
        wait_process: Callable[[], Awaitable[object]],
        host: str,
        compress_out: bool = False,
    ) -> "_Worker":
        """Worker over an accepted connect-back TCP stream pair.

        The hello frame was already consumed by the acceptor, so the worker
        starts handshaked: heartbeat staleness applies immediately instead of
        the startup grace.
        """
        return cls(
            reader=reader,
            writer=writer,
            pid=pid,
            kill_process=kill_process,
            wait_process=wait_process,
            host=host,
            compress_out=compress_out,
            handshaked=True,
        )

    # ------------------------------------------------------------------
    async def send(self, message: Dict[str, object]) -> None:
        if self.writer is None or not self.alive:
            raise WorkerDied(f"worker {self.pid} is gone")
        try:
            self.writer.write(
                protocol.encode_frame(message, compress=self.compress_out)
            )
            await self.writer.drain()
        except (OSError, ConnectionResetError, BrokenPipeError) as exc:
            raise WorkerDied(f"worker {self.pid} pipe closed: {exc}") from exc

    def kill(self) -> None:
        """Forcefully terminate the worker process (best effort)."""
        try:
            self._kill_process()
        except (OSError, ProcessLookupError):
            pass

    async def wait(self) -> None:
        """Reap the worker process (or its launcher)."""
        await self._wait_process()

    def close_gracefully(self) -> None:
        """Ask the worker to exit: shutdown frame, then close its input."""
        if self.writer is None:
            return
        try:
            self.writer.write(protocol.encode_frame({"type": "shutdown"}))
            self.writer.close()
        except (OSError, RuntimeError):
            pass


class AsyncWorkerBackend:
    """Asyncio supervisor sharding experiments over worker subprocesses.

    Parameters
    ----------
    num_workers:
        Number of worker subprocesses (and of concurrent experiments).
    max_retries:
        How many times a job is requeued after the worker holding it died
        before it is recorded as a failure.  Failures *reported* by a live
        worker (the spec raised) are deterministic and never retried.
    heartbeat_interval / heartbeat_timeout:
        Ping cadence and the silence threshold after which a worker is
        declared hung and killed.  The timeout defaults to four intervals.
    spawn_retries:
        Consecutive worker deaths (without a completed job in between) a
        slot tolerates before giving up.
    store:
        Optional result store (on-disk or in-memory) that completed
        experiments are streamed into as they finish (via
        ``put_if_absent``, so concurrent supervisors sharing an on-disk
        store do not rewrite each other's entries).  A cancelled run then
        loses only the in-flight experiments.
    worker_env:
        Extra environment variables for the worker processes (tests use
        this for ``PYTHONHASHSEED`` and fault injection).
    python:
        Interpreter to launch workers with; defaults to ``sys.executable``.

    The backend is synchronous to its callers (it owns its event loop via
    ``asyncio.run``), so it drops into :func:`repro.exp.run_experiments`
    exactly like the serial and pool backends.
    """

    def __init__(
        self,
        num_workers: int = 2,
        *,
        max_retries: int = 2,
        heartbeat_interval: float = 5.0,
        heartbeat_timeout: Optional[float] = None,
        spawn_retries: int = 2,
        store: Optional[Store] = None,
        worker_env: Optional[Dict[str, str]] = None,
        python: Optional[str] = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if heartbeat_timeout is not None and heartbeat_timeout <= heartbeat_interval:
            # The monitor wakes every interval and checks staleness before
            # pinging; a timeout at or below the interval would kill every
            # healthy worker on its first wakeup.
            raise ValueError("heartbeat_timeout must exceed heartbeat_interval")
        self.num_workers = num_workers
        self.max_retries = max_retries
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = (
            heartbeat_timeout if heartbeat_timeout is not None
            else 4.0 * heartbeat_interval
        )
        self.spawn_retries = spawn_retries
        self.store = store
        self.worker_env = dict(worker_env) if worker_env else {}
        self.python = python
        self.stats: Dict[str, int] = {}
        self._pids: set = set()
        self._workers: List[_Worker] = []

    # ------------------------------------------------------------------
    def active_pids(self) -> List[int]:
        """PIDs of the currently live worker processes (for tests/monitoring)."""
        return sorted(self._pids)

    def run_outcomes(self, specs: Sequence[ExperimentSpec]) -> List[Outcome]:
        """Per-spec outcomes; worker deaths and raising specs do not stall."""
        if not specs:
            return []

        def runner(unique_specs: List[ExperimentSpec]) -> List[Outcome]:
            try:
                return asyncio.run(self._supervise(unique_specs))
            finally:
                self._kill_leftovers()

        return map_unique(specs, runner)

    def run(self, specs: Sequence[ExperimentSpec]) -> List[ExperimentResult]:
        """Execute ``specs``; raises if any spec ultimately failed."""
        return _raise_on_failure(self.run_outcomes(specs))

    # ------------------------------------------------------------------
    def _kill_leftovers(self) -> None:
        """Last-resort synchronous cleanup once the event loop is gone."""
        for pid in list(self._pids):
            try:
                os.kill(pid, getattr(signal, "SIGKILL", signal.SIGTERM))
            except (OSError, ProcessLookupError):
                pass
            self._pids.discard(pid)
        self._workers.clear()

    def _worker_environment(self) -> Dict[str, str]:
        return worker_environment(self.worker_env)

    async def _spawn_worker(self) -> _Worker:
        proc = await asyncio.create_subprocess_exec(
            self.python or sys.executable,
            "-m", "repro.exp.worker",
            stdin=asyncio.subprocess.PIPE,
            stdout=asyncio.subprocess.PIPE,
            env=self._worker_environment(),
        )
        worker = _Worker.from_process(proc)
        self._register_worker(worker)
        return worker

    def _register_worker(self, worker: _Worker) -> None:
        """Track a freshly acquired worker and start its reader + monitor."""
        self.stats["spawns"] = self.stats.get("spawns", 0) + 1
        self._pids.add(worker.pid)
        self._workers.append(worker)
        worker.reader_task = asyncio.ensure_future(self._read_worker(worker))
        worker.monitor_task = asyncio.ensure_future(self._monitor_worker(worker))

    def _release_worker(self, worker: _Worker) -> None:
        worker.alive = False
        self._pids.discard(worker.pid)
        if worker in self._workers:
            self._workers.remove(worker)

    async def _read_worker(self, worker: _Worker) -> None:
        """Parse frames from one worker until its stream closes."""
        loop = asyncio.get_running_loop()
        try:
            while True:
                message = await protocol.read_frame_async(worker.reader)
                worker.last_seen = loop.time()
                worker.handshaked = True
                kind = message.get("type")
                if kind in ("result", "error"):
                    future = worker.pending.get(message.get("job"))
                    if future is not None and not future.done():
                        if kind == "result":
                            future.set_result(
                                ExperimentResult.from_dict(message["result"])
                            )
                        else:
                            future.set_result(
                                ExperimentFailure.from_dict(message["error"])
                            )
                # hello/pong only refresh last_seen, handled above
        except asyncio.CancelledError:
            pass  # supervisor-initiated shutdown; it owns process cleanup
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
            OSError,
            protocol.ProtocolError,
            KeyError,
            TypeError,
            ValueError,
        ):
            # Torn or malformed stream.  The process may well still be alive
            # (e.g. something wrote to the real stdout and desynchronised the
            # frames); kill it so a requeued job is not silently duplicated
            # by an orphan twin.
            worker.kill()
        finally:
            self._release_worker(worker)
            for future in list(worker.pending.values()):
                if not future.done():
                    future.set_exception(
                        WorkerDied(f"worker {worker.pid} died mid-job")
                    )

    async def _monitor_worker(self, worker: _Worker) -> None:
        """Heartbeat one worker; kill it when it goes silent."""
        loop = asyncio.get_running_loop()
        sequence = 0
        while worker.alive:
            await asyncio.sleep(self.heartbeat_interval)
            if not worker.alive:
                return
            # Cold start (importing the simulation stack) does not count
            # against the heartbeat; before the hello frame only the far
            # more generous startup deadline applies.
            if worker.handshaked:
                silent = loop.time() - worker.last_seen > self.heartbeat_timeout
            else:
                silent = (
                    loop.time() - worker.spawned_at
                    > max(self.heartbeat_timeout, _STARTUP_GRACE)
                )
            if silent:
                self.stats["heartbeat_kills"] = (
                    self.stats.get("heartbeat_kills", 0) + 1
                )
                worker.kill()
                return  # the reader's EOF turns this into the death path
            if not worker.handshaked:
                continue
            sequence += 1
            try:
                await worker.send({"type": "ping", "seq": sequence})
            except WorkerDied:
                return

    async def _execute(self, worker: _Worker, job: _Job) -> Outcome:
        """Dispatch one job to a live worker and await its answer."""
        future: "asyncio.Future[Outcome]" = asyncio.get_running_loop().create_future()
        worker.pending[job.index] = future
        try:
            await worker.send(
                {"type": "run", "job": job.index, "spec": job.spec.to_dict()}
            )
            return await future
        finally:
            worker.pending.pop(job.index, None)

    async def _worker_slot(
        self,
        queue: "asyncio.Queue[_Job]",
        finish: Callable[[_Job, Outcome], None],
        spawn: Optional[Callable[[], Awaitable[_Worker]]] = None,
        host=None,
    ) -> None:
        """One dispatch loop: owns (at most) one live worker at a time.

        ``spawn`` acquires a fresh worker (defaults to the local subprocess
        transport) and ``host`` is the optional host-accounting object of
        the multi-host backend: its ``record_death``/``record_success``
        methods aggregate failures across every slot of one machine, and a
        quarantined host retires its slots (requeueing any job in hand) so
        the remaining hosts drain the queue.
        """
        spawn = spawn if spawn is not None else self._spawn_worker
        worker: Optional[_Worker] = None
        consecutive_deaths = 0
        while True:
            job = await queue.get()
            if host is not None and host.quarantined:
                queue.put_nowait(job)
                # A sibling slot's deaths quarantined the host while this
                # slot's worker was healthy and idle: ask it to exit now
                # rather than hold a process (or SSH channel) until the end
                # of the batch.  Its reader's EOF does the bookkeeping.
                if worker is not None and worker.alive:
                    worker.close_gracefully()
                return
            if worker is None or not worker.alive:
                try:
                    worker = await spawn()
                except (OSError, ValueError) as exc:
                    consecutive_deaths += 1
                    queue.put_nowait(job)  # spawn failure is not the job's fault
                    if self._record_host_death(host):
                        return
                    if consecutive_deaths > self.spawn_retries:
                        return
                    await asyncio.sleep(0.05 * consecutive_deaths)
                    continue
            try:
                outcome = await self._execute(worker, job)
            except WorkerDied:
                self.stats["worker_deaths"] = self.stats.get("worker_deaths", 0) + 1
                consecutive_deaths += 1
                worker = None
                job.attempts += 1
                if job.attempts > self.max_retries:
                    finish(job, ExperimentFailure(
                        spec_key=job.key,
                        error_type="WorkerDied",
                        message=(
                            f"worker died {job.attempts} time(s) while running "
                            f"{job.spec.label()}"
                        ),
                        attempts=job.attempts,
                    ))
                else:
                    self.stats["requeues"] = self.stats.get("requeues", 0) + 1
                    queue.put_nowait(job)
                if self._record_host_death(host):
                    return
                if consecutive_deaths > self.spawn_retries:
                    return  # crash-looping; let the remaining slots (if any) work
                continue
            except Exception as exc:  # supervisor bug: fail the job, stay live
                finish(job, ExperimentFailure.from_exception(job.key, exc))
                continue
            consecutive_deaths = 0
            worker.completed += 1
            if host is not None:
                host.record_success()
            if isinstance(outcome, ExperimentFailure):
                outcome.attempts = job.attempts + 1
            finish(job, outcome)

    def _record_host_death(self, host) -> bool:
        """Feed one worker death into ``host``; True when the slot must retire."""
        if host is None:
            return False
        if host.record_death():
            self.stats["hosts_quarantined"] = (
                self.stats.get("hosts_quarantined", 0) + 1
            )
        return host.quarantined

    # ------------------------------------------------------------------
    async def _startup(self) -> None:
        """Transport setup before any slot runs (multi-host: the listener)."""

    async def _teardown(self) -> None:
        """Transport cleanup after every worker was reaped."""

    def _slot_coroutines(
        self,
        queue: "asyncio.Queue[_Job]",
        finish: Callable[[_Job, Outcome], None],
        num_jobs: int,
    ) -> List[Coroutine]:
        """Dispatch-loop coroutines to run; one per concurrent worker."""
        return [
            self._worker_slot(queue, finish)
            for _ in range(min(self.num_workers, num_jobs))
        ]

    async def _shutdown_workers(self) -> None:
        """Terminate and reap every live worker; tolerate cancellation."""
        workers = list(self._workers)
        for worker in workers:
            worker.alive = False
            for task in (worker.reader_task, worker.monitor_task):
                if task is not None:
                    task.cancel()
            worker.close_gracefully()
        for worker in workers:
            try:
                await asyncio.wait_for(worker.wait(), timeout=2.0)
            except BaseException:
                worker.kill()
                try:
                    await worker.wait()
                except BaseException:
                    pass
            self._pids.discard(worker.pid)
        self._workers = [w for w in self._workers if w not in workers]

    async def _supervise(self, specs: Sequence[ExperimentSpec]) -> List[Outcome]:
        """Run unique ``specs`` to completion; one outcome per spec, in order."""
        loop = asyncio.get_running_loop()
        self.stats = {}
        self._workers = []
        self._pids = set()

        queue: "asyncio.Queue[_Job]" = asyncio.Queue()
        jobs = [
            _Job(index, spec, spec.content_key())
            for index, spec in enumerate(specs)
        ]
        for job in jobs:
            queue.put_nowait(job)
        outcomes: List[Optional[Outcome]] = [None] * len(jobs)
        remaining = len(jobs)
        done = asyncio.Event()
        if not jobs:
            done.set()

        def finish(job: _Job, outcome: Outcome) -> None:
            nonlocal remaining
            if outcomes[job.index] is not None:
                return  # defensive: a job finishes exactly once
            outcomes[job.index] = outcome
            remaining -= 1
            self.stats["finished_jobs"] = self.stats.get("finished_jobs", 0) + 1
            # Streaming is best-effort durability: no store problem may wedge
            # the supervisor (done must always be reachable), and the caller
            # still holds every outcome in memory either way.
            if self.store is not None:
                write_started = loop.time()
                try:
                    if isinstance(outcome, ExperimentFailure):
                        self.store.record_failure(job.spec, outcome)
                    else:
                        self.store.put_if_absent(job.spec, outcome)
                except Exception as exc:
                    print(
                        f"repro.exp.distributed: store write failed: {exc}",
                        file=sys.stderr,
                    )
                write_ended = loop.time()
                if write_ended - write_started > self.heartbeat_interval / 2:
                    # The synchronous write (shard flock on a contended or
                    # slow filesystem) froze the event loop: no pongs or
                    # hellos could be read meanwhile, so restart every
                    # staleness and startup clock rather than punish healthy
                    # workers for our stall.
                    for other in self._workers:
                        other.last_seen = max(other.last_seen, write_ended)
                        other.spawned_at = max(other.spawned_at, write_ended)
            if remaining == 0:
                done.set()

        interrupted = False
        shutting_down = False
        supervise_task = asyncio.current_task()

        def on_sigint() -> None:
            nonlocal interrupted
            interrupted = True
            if supervise_task is not None:
                supervise_task.cancel()

        sigint_installed = False
        try:
            loop.add_signal_handler(signal.SIGINT, on_sigint)
            sigint_installed = True
        except (ValueError, NotImplementedError, RuntimeError):
            pass  # non-main thread or platform without signal support

        slots: List["asyncio.Task"] = []

        def on_slot_done(_task: "asyncio.Task") -> None:
            if shutting_down or done.is_set():
                return  # cancellation, not exhaustion: leave jobs unwritten
            if not all(task.done() for task in slots):
                return
            # Every slot gave up (crash-looping workers): fail what is left.
            while not queue.empty():
                job = queue.get_nowait()
                if outcomes[job.index] is None:
                    finish(job, ExperimentFailure(
                        spec_key=job.key,
                        error_type="WorkerPoolExhausted",
                        message="every worker slot gave up before this spec ran",
                        attempts=job.attempts,
                    ))
            done.set()

        try:
            await self._startup()
            slots.extend(
                asyncio.ensure_future(coroutine)
                for coroutine in self._slot_coroutines(queue, finish, len(jobs))
            )
            for slot in slots:
                slot.add_done_callback(on_slot_done)
            await done.wait()
        except asyncio.CancelledError:
            if not interrupted:
                raise
        finally:
            shutting_down = True
            if sigint_installed:
                loop.remove_signal_handler(signal.SIGINT)
            for slot in slots:
                slot.cancel()
            for slot in slots:
                try:
                    await slot
                except BaseException:
                    pass
            await self._shutdown_workers()
            await self._teardown()

        if interrupted:
            raise KeyboardInterrupt
        return [
            outcome if outcome is not None else ExperimentFailure(
                spec_key=job.key,
                error_type="Unexecuted",
                message="supervisor exited before this spec ran",
                attempts=job.attempts,
            )
            for job, outcome in zip(jobs, outcomes)
        ]
