"""Synthetic memory-access pattern generators.

The workloads in :mod:`repro.workloads` describe their memory behaviour in
terms of a few canonical access patterns (strided streaming, random accesses
within a working set, heavy reuse of a small block, accesses to shared data).
The helpers in this module turn those descriptions into concrete, weighted
:class:`~repro.trace.records.MemoryEvent` lists, deterministically for a given
:class:`random.Random` instance.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.trace.records import MemoryEvent

CACHE_LINE = 64


@dataclass
class AddressSpace:
    """A contiguous region of the application's virtual address space.

    Workload generators allocate one region per logical data structure
    (input matrix, output vector, shared histogram, ...) so that different
    task instances touching the same structure produce genuinely overlapping
    addresses, which is what drives data reuse and invalidation behaviour in
    the cache model.
    """

    base: int
    size: int
    shared: bool = False

    def __post_init__(self) -> None:
        if self.base < 0:
            raise ValueError("base address must be non-negative")
        if self.size <= 0:
            raise ValueError("region size must be positive")

    def offset(self, byte_offset: int) -> int:
        """Return the absolute address of ``byte_offset`` within the region."""
        return self.base + (byte_offset % self.size)

    def slice(self, start: int, size: int, shared: bool | None = None) -> "AddressSpace":
        """Return a sub-region starting at ``start`` bytes into this region."""
        if size <= 0:
            raise ValueError("slice size must be positive")
        return AddressSpace(
            base=self.base + (start % self.size),
            size=size,
            shared=self.shared if shared is None else shared,
        )


class AddressSpaceAllocator:
    """Allocates non-overlapping address regions for a workload's data."""

    def __init__(self, base: int = 1 << 30, alignment: int = CACHE_LINE) -> None:
        self._next = base
        self._alignment = alignment

    def allocate(self, size: int, shared: bool = False) -> AddressSpace:
        """Allocate a new region of ``size`` bytes."""
        if size <= 0:
            raise ValueError("allocation size must be positive")
        aligned = (size + self._alignment - 1) // self._alignment * self._alignment
        region = AddressSpace(base=self._next, size=aligned, shared=shared)
        self._next += aligned + self._alignment
        return region


def strided_accesses(
    region: AddressSpace,
    count: int,
    total_accesses: int,
    stride: int = CACHE_LINE,
    start: int = 0,
    write_fraction: float = 0.0,
    rng: random.Random | None = None,
) -> List[MemoryEvent]:
    """Generate ``count`` weighted events walking ``region`` with ``stride``.

    Models streaming/strided kernels (2d-convolution, 3d-stencil,
    vector-operation): each event represents ``total_accesses / count`` real
    accesses that hit consecutive lines.
    """
    if count <= 0:
        return []
    rng = rng or random.Random(0)
    weight = max(1, total_accesses // count)
    events: List[MemoryEvent] = []
    offset = start
    for _ in range(count):
        is_write = rng.random() < write_fraction
        events.append(
            MemoryEvent(
                address=region.offset(offset),
                is_write=is_write,
                weight=weight,
                shared=region.shared,
            )
        )
        offset += stride
    return events


def random_accesses(
    region: AddressSpace,
    count: int,
    total_accesses: int,
    write_fraction: float = 0.0,
    rng: random.Random | None = None,
) -> List[MemoryEvent]:
    """Generate events at uniformly random line-aligned offsets in ``region``.

    Models irregular kernels (n-body neighbour lookups, canneal's random graph
    walks, sparse matrix structure-dependent accesses).
    """
    if count <= 0:
        return []
    rng = rng or random.Random(0)
    weight = max(1, total_accesses // count)
    lines = max(1, region.size // CACHE_LINE)
    events: List[MemoryEvent] = []
    for _ in range(count):
        line = rng.randrange(lines)
        is_write = rng.random() < write_fraction
        events.append(
            MemoryEvent(
                address=region.base + line * CACHE_LINE,
                is_write=is_write,
                weight=weight,
                shared=region.shared,
            )
        )
    return events


def reuse_accesses(
    region: AddressSpace,
    count: int,
    total_accesses: int,
    hot_lines: int = 8,
    write_fraction: float = 0.0,
    rng: random.Random | None = None,
) -> List[MemoryEvent]:
    """Generate events that repeatedly touch a small set of hot cache lines.

    Models compute-bound kernels with high data reuse (dense matrix
    multiplication inner blocks, blackscholes per-option state).
    """
    if count <= 0:
        return []
    rng = rng or random.Random(0)
    weight = max(1, total_accesses // count)
    lines = max(1, min(hot_lines, region.size // CACHE_LINE))
    events: List[MemoryEvent] = []
    for index in range(count):
        line = index % lines if rng.random() < 0.8 else rng.randrange(lines)
        is_write = rng.random() < write_fraction
        events.append(
            MemoryEvent(
                address=region.base + line * CACHE_LINE,
                is_write=is_write,
                weight=weight,
                shared=region.shared,
            )
        )
    return events
