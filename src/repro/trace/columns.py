"""Columnar storage of application traces (the trace backbone).

An application trace of *n* task instances with *B* execution blocks and *E*
memory events is stored as a small set of NumPy arrays instead of a list of
``TaskTraceRecord`` dataclasses:

* **record columns** (length ``n``): ``task_type_id``, ``instructions`` and
  ``creation_order``, with task-type names interned in a
  :class:`TaskTypeTable` (first-appearance order, matching the semantics of
  ``ApplicationTrace.task_types``),
* **dependency CSR** (``dep_offsets``/``dep_targets``): the flattened
  ``depends_on`` edges, indexable per record without per-record tuples,
* **block CSR** (``block_offsets``/``block_instructions``): the execution
  blocks of every record, and
* **event CSR** (``event_offsets`` plus ``event_address``,
  ``event_is_write``, ``event_weight``, ``event_shared``): the weighted
  memory events of every block.

The columns are the source of truth carried by
:class:`~repro.trace.trace.ApplicationTrace`; ``TaskTraceRecord`` views are
materialised lazily for compatibility with record-oriented code and
serialisation.  Everything downstream that is performance critical — the
batched detailed-cost evaluation in :mod:`repro.arch.batch`, dependency
tracking, trace statistics, validation — operates directly on the arrays.

Two construction paths exist: :meth:`TraceColumns.from_records` converts an
existing record list (compatibility, JSON deserialisation), and
:class:`ColumnBuilder` lets workload generators emit straight into the
columns without ever allocating record objects.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.trace.records import (
    ExecutionBlock,
    MemoryEvent,
    TaskTraceRecord,
    split_into_blocks,
)


class TaskTypeTable:
    """Interned task-type names, id-assigned in first-appearance order."""

    def __init__(self, names: Iterable[str] = ()) -> None:
        self._names: List[str] = []
        self._ids: Dict[str, int] = {}
        for name in names:
            self.intern(name)

    def intern(self, name: str) -> int:
        """Return the id of ``name``, assigning the next id if unseen."""
        type_id = self._ids.get(name)
        if type_id is None:
            type_id = len(self._names)
            self._ids[name] = type_id
            self._names.append(name)
        return type_id

    def name(self, type_id: int) -> str:
        """Return the name of ``type_id``."""
        return self._names[type_id]

    @property
    def names(self) -> Tuple[str, ...]:
        """All interned names, in id (= first appearance) order."""
        return tuple(self._names)

    def __len__(self) -> int:
        return len(self._names)

    def __contains__(self, name: str) -> bool:
        return name in self._ids

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TaskTypeTable):
            return NotImplemented
        return self._names == other._names

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TaskTypeTable({self._names!r})"


def _as_array(values: Sequence, dtype) -> np.ndarray:
    array = np.asarray(values, dtype=dtype)
    if array.ndim != 1:
        array = array.reshape(-1)
    return array


class TraceColumns:
    """Columnar form of one application trace (see module docstring).

    All offset arrays are int64 and have one more entry than the axis they
    index (CSR convention): record ``i`` owns blocks
    ``block_offsets[i]:block_offsets[i+1]``, and block ``b`` owns events
    ``event_offsets[b]:event_offsets[b+1]``.
    """

    __slots__ = (
        "types",
        "task_type_id",
        "instructions",
        "creation_order",
        "dep_offsets",
        "dep_targets",
        "block_offsets",
        "block_instructions",
        "event_offsets",
        "event_address",
        "event_is_write",
        "event_weight",
        "event_shared",
        "_record_event_offsets",
        "plan_cache",
    )

    def __init__(
        self,
        types: TaskTypeTable,
        task_type_id: Sequence[int],
        instructions: Sequence[int],
        creation_order: Sequence[int],
        dep_offsets: Sequence[int],
        dep_targets: Sequence[int],
        block_offsets: Sequence[int],
        block_instructions: Sequence[int],
        event_offsets: Sequence[int],
        event_address: Sequence[int],
        event_is_write: Sequence[bool],
        event_weight: Sequence[int],
        event_shared: Sequence[bool],
    ) -> None:
        self.types = types
        self.task_type_id = _as_array(task_type_id, np.int32)
        self.instructions = _as_array(instructions, np.int64)
        self.creation_order = _as_array(creation_order, np.int64)
        self.dep_offsets = _as_array(dep_offsets, np.int64)
        self.dep_targets = _as_array(dep_targets, np.int64)
        self.block_offsets = _as_array(block_offsets, np.int64)
        self.block_instructions = _as_array(block_instructions, np.int64)
        self.event_offsets = _as_array(event_offsets, np.int64)
        self.event_address = _as_array(event_address, np.int64)
        self.event_is_write = _as_array(event_is_write, np.bool_)
        self.event_weight = _as_array(event_weight, np.int64)
        self.event_shared = _as_array(event_shared, np.bool_)
        self._record_event_offsets: Optional[np.ndarray] = None
        # Derived-data memo used by consumers (e.g. the batched executor
        # caches its static execution plan here, keyed by model geometry, so
        # repeated simulations of one trace skip the precomputation).
        self.plan_cache: Dict[tuple, object] = {}

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def num_records(self) -> int:
        """Number of task instances."""
        return int(self.task_type_id.shape[0])

    @property
    def num_blocks(self) -> int:
        """Total number of execution blocks across all records."""
        return int(self.block_instructions.shape[0])

    @property
    def num_events(self) -> int:
        """Total number of (weighted) memory events across all records."""
        return int(self.event_address.shape[0])

    def __len__(self) -> int:
        return self.num_records

    @property
    def record_event_offsets(self) -> np.ndarray:
        """Event CSR collapsed to record granularity (length ``n + 1``)."""
        if self._record_event_offsets is None:
            self._record_event_offsets = self.event_offsets[self.block_offsets]
        return self._record_event_offsets

    # ------------------------------------------------------------------
    # Per-record aggregates (vectorised)
    # ------------------------------------------------------------------
    def memory_accesses_per_record(self) -> np.ndarray:
        """Total real accesses (sum of event weights) per record."""
        cumulative = np.concatenate(
            ([0], np.cumsum(self.event_weight, dtype=np.int64))
        )
        offsets = self.record_event_offsets
        return cumulative[offsets[1:]] - cumulative[offsets[:-1]]

    def detail_events_per_record(self) -> np.ndarray:
        """Number of individually resolved memory events per record."""
        offsets = self.record_event_offsets
        return offsets[1:] - offsets[:-1]

    def dependency_counts(self) -> np.ndarray:
        """Number of dependencies per record."""
        return self.dep_offsets[1:] - self.dep_offsets[:-1]

    #: Column order of :meth:`instance_signatures`.
    SIGNATURE_FIELDS = (
        "instructions",     # dynamic instruction count
        "blocks",           # execution-block count (block geometry)
        "detail_events",    # individually resolved memory events
        "memory_accesses",  # weighted (real) memory accesses
        "fan_in",           # dependency fan-in: how many records this one feeds
        "fan_out",          # dependency fan-out: how many records feed this one
    )

    def instance_signatures(self) -> np.ndarray:
        """Cheap per-instance signatures for stratified sampling (phase 1).

        Returns an ``(n, len(SIGNATURE_FIELDS))`` float64 matrix computed
        entirely from the columnar arrays — per-instance op counts, block
        geometry and dependency fan-in/out — with **no** detailed simulation.
        The matrix is memoised in :attr:`plan_cache` (it is read once per
        stratification, but the same warmed trace serves many specs).
        """
        cached = self.plan_cache.get(("instance_signatures",))
        if cached is not None:
            return cached
        fan_in = np.bincount(
            self.dep_targets, minlength=self.num_records
        ).astype(np.int64)[: self.num_records]
        signatures = np.column_stack(
            [
                self.instructions.astype(np.float64),
                (self.block_offsets[1:] - self.block_offsets[:-1]).astype(np.float64),
                self.detail_events_per_record().astype(np.float64),
                self.memory_accesses_per_record().astype(np.float64),
                fan_in.astype(np.float64),
                self.dependency_counts().astype(np.float64),
            ]
        )
        self.plan_cache[("instance_signatures",)] = signatures
        return signatures

    def dependents_csr(self) -> Tuple[np.ndarray, np.ndarray]:
        """Forward dependency edges as (offsets, targets) CSR arrays.

        ``targets[offsets[i]:offsets[i+1]]`` are the ids of the records that
        depend on record ``i``, in ascending id order.
        """
        n = self.num_records
        counts = np.bincount(self.dep_targets, minlength=n).astype(np.int64)
        offsets = np.concatenate(([0], np.cumsum(counts)))
        # Dependent ids sorted per dependency: a stable sort of dep_targets
        # keeps the (already ascending) dependent order within each group.
        source = np.repeat(
            np.arange(n, dtype=np.int64), self.dependency_counts()
        )
        order = np.argsort(self.dep_targets, kind="stable")
        return offsets, source[order]

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def check_consistency(self) -> None:
        """Validate the integrity of the arrays themselves (untrusted input).

        :meth:`validate` checks the *semantic* invariants of a well-formed
        column bundle; this method checks that the bundle is well-formed in
        the first place — offset arrays of the right length, monotone and
        spanning their body arrays, parallel event arrays of equal length,
        type ids inside the interned table, and value-range constraints
        record construction would enforce.  Deserialisation of columnar
        files calls it so a corrupt file raises
        :class:`~repro.trace.trace.TraceValidationError` instead of loading
        as a silently different trace.
        """
        from repro.trace.trace import TraceValidationError

        def fail(message: str) -> None:
            raise TraceValidationError(f"inconsistent trace columns: {message}")

        n = self.num_records
        for name in ("instructions", "creation_order"):
            if getattr(self, name).shape[0] != n:
                fail(f"{name} has {getattr(self, name).shape[0]} entries, expected {n}")
        for name, offsets, body, axis in (
            ("dep_offsets", self.dep_offsets, self.dep_targets.shape[0], n),
            ("block_offsets", self.block_offsets, self.num_blocks, n),
            ("event_offsets", self.event_offsets, self.num_events, self.num_blocks),
        ):
            if offsets.shape[0] != axis + 1:
                fail(f"{name} has {offsets.shape[0]} entries, expected {axis + 1}")
            if offsets[0] != 0 or offsets[-1] != body:
                fail(f"{name} does not span [0, {body}]")
            if offsets.size > 1 and bool(np.any(np.diff(offsets) < 0)):
                fail(f"{name} is not monotone")
        num_events = self.num_events
        for name in ("event_is_write", "event_weight", "event_shared"):
            if getattr(self, name).shape[0] != num_events:
                fail(f"{name} has {getattr(self, name).shape[0]} entries,"
                     f" expected {num_events}")
        if n and (
            int(self.task_type_id.min()) < 0
            or int(self.task_type_id.max()) >= len(self.types)
        ):
            fail("task_type_id outside the interned type table")
        if n and int(self.instructions.min()) < 0:
            fail("negative instruction count")
        if self.num_blocks and int(self.block_instructions.min()) < 0:
            fail("negative block instruction count")
        if num_events:
            if int(self.event_address.min()) < 0:
                fail("negative event address")
            if int(self.event_weight.min()) < 1:
                fail("event weight below 1")

    def validate(self) -> None:
        """Check structural invariants, vectorised over the columns.

        Raises :class:`~repro.trace.trace.TraceValidationError` (imported
        lazily to avoid a module cycle) when a dependency does not point to
        an earlier instance.  Instance-id density is guaranteed by
        construction: a record's id *is* its position in the columns.
        """
        from repro.trace.trace import TraceValidationError

        if self.dep_targets.size:
            owner = np.repeat(
                np.arange(self.num_records, dtype=np.int64),
                self.dependency_counts(),
            )
            bad = (self.dep_targets < 0) | (self.dep_targets >= owner)
            if bad.any():
                index = int(np.argmax(bad))
                raise TraceValidationError(
                    f"instance {int(owner[index])} depends on"
                    f" {int(self.dep_targets[index])}, which is not an earlier"
                    " instance"
                )
        cumulative = np.concatenate(
            ([0], np.cumsum(self.block_instructions, dtype=np.int64))
        )
        block_sums = cumulative[self.block_offsets[1:]] - cumulative[self.block_offsets[:-1]]
        empty = self.block_offsets[:-1] == self.block_offsets[1:]
        mismatch = (block_sums != self.instructions) & ~empty
        if mismatch.any():
            index = int(np.argmax(mismatch))
            raise TraceValidationError(
                f"instance {index}: sum of block instructions"
                f" ({int(block_sums[index])}) does not match instance"
                f" instruction count ({int(self.instructions[index])})"
            )

    # ------------------------------------------------------------------
    # Record views
    # ------------------------------------------------------------------
    def record(self, index: int) -> TaskTraceRecord:
        """Materialise the :class:`TaskTraceRecord` view of record ``index``."""
        if index < 0:
            index += self.num_records
        if not 0 <= index < self.num_records:
            raise IndexError(f"record index {index} out of range")
        blocks: List[ExecutionBlock] = []
        for block in range(int(self.block_offsets[index]), int(self.block_offsets[index + 1])):
            start, stop = int(self.event_offsets[block]), int(self.event_offsets[block + 1])
            events = tuple(
                MemoryEvent(
                    address=int(self.event_address[position]),
                    is_write=bool(self.event_is_write[position]),
                    weight=int(self.event_weight[position]),
                    shared=bool(self.event_shared[position]),
                )
                for position in range(start, stop)
            )
            blocks.append(
                ExecutionBlock(
                    instructions=int(self.block_instructions[block]),
                    memory_events=events,
                )
            )
        return TaskTraceRecord(
            instance_id=index,
            task_type=self.types.name(int(self.task_type_id[index])),
            instructions=int(self.instructions[index]),
            blocks=blocks,
            depends_on=tuple(
                int(dep)
                for dep in self.dep_targets[
                    int(self.dep_offsets[index]) : int(self.dep_offsets[index + 1])
                ]
            ),
            creation_order=int(self.creation_order[index]),
        )

    def to_records(self) -> List[TaskTraceRecord]:
        """Materialise every record view (bulk path, Python ints throughout)."""
        type_names = self.types.names
        type_ids = self.task_type_id.tolist()
        instructions = self.instructions.tolist()
        creation = self.creation_order.tolist()
        dep_offsets = self.dep_offsets.tolist()
        dep_targets = self.dep_targets.tolist()
        block_offsets = self.block_offsets.tolist()
        block_instr = self.block_instructions.tolist()
        event_offsets = self.event_offsets.tolist()
        address = self.event_address.tolist()
        is_write = self.event_is_write.tolist()
        weight = self.event_weight.tolist()
        shared = self.event_shared.tolist()
        records: List[TaskTraceRecord] = []
        for index in range(self.num_records):
            blocks: List[ExecutionBlock] = []
            for block in range(block_offsets[index], block_offsets[index + 1]):
                events = tuple(
                    MemoryEvent(
                        address=address[position],
                        is_write=is_write[position],
                        weight=weight[position],
                        shared=shared[position],
                    )
                    for position in range(event_offsets[block], event_offsets[block + 1])
                )
                blocks.append(
                    ExecutionBlock(
                        instructions=block_instr[block], memory_events=events
                    )
                )
            records.append(
                TaskTraceRecord(
                    instance_id=index,
                    task_type=type_names[type_ids[index]],
                    instructions=instructions[index],
                    blocks=blocks,
                    depends_on=tuple(
                        dep_targets[dep_offsets[index] : dep_offsets[index + 1]]
                    ),
                    creation_order=creation[index],
                )
            )
        return records

    # ------------------------------------------------------------------
    # Conversion
    # ------------------------------------------------------------------
    @classmethod
    def from_records(cls, records: Sequence[TaskTraceRecord]) -> "TraceColumns":
        """Build columns from an existing record list (compatibility path)."""
        builder = ColumnBuilder()
        for record in records:
            builder.add_prepared(
                task_type=record.task_type,
                instructions=record.instructions,
                blocks=[
                    (block.instructions, block.memory_events)
                    for block in record.blocks
                ],
                depends_on=record.depends_on,
                creation_order=record.creation_order,
            )
        return builder.build()

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceColumns):
            return NotImplemented
        return self.types == other.types and all(
            np.array_equal(getattr(self, name), getattr(other, name))
            for name in (
                "task_type_id",
                "instructions",
                "creation_order",
                "dep_offsets",
                "dep_targets",
                "block_offsets",
                "block_instructions",
                "event_offsets",
                "event_address",
                "event_is_write",
                "event_weight",
                "event_shared",
            )
        )


class ColumnBuilder:
    """Accumulates trace columns one task instance at a time.

    This is the emission target of the workload generators: appends go to
    plain Python lists (cheap), and :meth:`build` converts them to NumPy
    arrays once.  Block splitting follows the exact semantics of
    :func:`repro.trace.records.make_record` so column-built and record-built
    traces are indistinguishable.
    """

    def __init__(self) -> None:
        self.types = TaskTypeTable()
        self._task_type_id: List[int] = []
        self._instructions: List[int] = []
        self._creation_order: List[int] = []
        self._dep_offsets: List[int] = [0]
        self._dep_targets: List[int] = []
        self._block_offsets: List[int] = [0]
        self._block_instructions: List[int] = []
        self._event_offsets: List[int] = [0]
        self._event_address: List[int] = []
        self._event_is_write: List[bool] = []
        self._event_weight: List[int] = []
        self._event_shared: List[bool] = []

    # ------------------------------------------------------------------
    @property
    def num_records(self) -> int:
        """Number of task instances added so far."""
        return len(self._task_type_id)

    def add_task(
        self,
        task_type: str,
        instructions: int,
        memory_events: Optional[Sequence[MemoryEvent]] = None,
        depends_on: Sequence[int] = (),
        blocks_hint: int = 1,
        creation_order: Optional[int] = None,
    ) -> int:
        """Append one instance, splitting events into blocks like ``make_record``."""
        if instructions < 0:
            raise ValueError("instructions must be non-negative")
        blocks = split_into_blocks(instructions, memory_events, blocks_hint)
        return self.add_prepared(
            task_type=task_type,
            instructions=instructions,
            blocks=blocks,
            depends_on=depends_on,
            creation_order=creation_order,
        )

    def add_prepared(
        self,
        task_type: str,
        instructions: int,
        blocks: Sequence[Tuple[int, Sequence[MemoryEvent]]],
        depends_on: Sequence[int] = (),
        creation_order: Optional[int] = None,
    ) -> int:
        """Append one instance with an explicit block structure."""
        instance_id = len(self._task_type_id)
        self._task_type_id.append(self.types.intern(task_type))
        self._instructions.append(instructions)
        self._creation_order.append(
            creation_order if creation_order is not None else instance_id
        )
        self._dep_targets.extend(int(dep) for dep in depends_on)
        self._dep_offsets.append(len(self._dep_targets))
        for block_instructions, events in blocks:
            self._block_instructions.append(block_instructions)
            for event in events:
                self._event_address.append(event.address)
                self._event_is_write.append(event.is_write)
                self._event_weight.append(event.weight)
                self._event_shared.append(event.shared)
            self._event_offsets.append(len(self._event_address))
        self._block_offsets.append(len(self._block_instructions))
        return instance_id

    def build(self) -> TraceColumns:
        """Freeze the accumulated lists into :class:`TraceColumns`."""
        return TraceColumns(
            types=self.types,
            task_type_id=self._task_type_id,
            instructions=self._instructions,
            creation_order=self._creation_order,
            dep_offsets=self._dep_offsets,
            dep_targets=self._dep_targets,
            block_offsets=self._block_offsets,
            block_instructions=self._block_instructions,
            event_offsets=self._event_offsets,
            event_address=self._event_address,
            event_is_write=self._event_is_write,
            event_weight=self._event_weight,
            event_shared=self._event_shared,
        )
