"""Serialisation of application traces.

Synthetic traces are cheap to regenerate, but persisting them is useful to
pin down an exact experiment input (for instance when comparing two simulator
versions) and mirrors the trace-file workflow of the original TaskSim setup.

Two on-disk formats are supported, selected by file suffix:

* ``.json`` / ``.json.gz`` — the original record-oriented JSON format
  (format version 1), readable by any tool;
* ``.npz`` — the columnar format: the NumPy arrays of
  :class:`~repro.trace.columns.TraceColumns` written with
  :func:`numpy.savez_compressed`.  This is both smaller and much faster to
  load because no record objects are materialised.

Trace files are untrusted input (hand-edited, truncated, or produced by
other tools), so :func:`load_trace` still validates structure — but on the
vectorised columnar fast path: instance-id density is checked during JSON
deserialisation (it is implicit in the NPZ layout) and the dependency/block
invariants run as NumPy array checks instead of the per-record O(n·deps)
Python loop that construction from records would perform.
"""

from __future__ import annotations

import gzip
import io as _io
import json
import os
from pathlib import Path
from typing import Union

import numpy as np

from repro.trace.columns import TaskTypeTable, TraceColumns
from repro.trace.records import ExecutionBlock, MemoryEvent, TaskTraceRecord
from repro.trace.trace import ApplicationTrace, TraceValidationError

FORMAT_VERSION = 1

#: Format marker stored inside the NPZ archive.
NPZ_FORMAT_VERSION = 1

_COLUMN_KEYS = (
    "task_type_id",
    "instructions",
    "creation_order",
    "dep_offsets",
    "dep_targets",
    "block_offsets",
    "block_instructions",
    "event_offsets",
    "event_address",
    "event_is_write",
    "event_weight",
    "event_shared",
)


def _event_to_dict(event: MemoryEvent) -> dict:
    return {
        "a": event.address,
        "w": int(event.is_write),
        "n": event.weight,
        "s": int(event.shared),
    }


def _event_from_dict(data: dict) -> MemoryEvent:
    return MemoryEvent(
        address=data["a"],
        is_write=bool(data["w"]),
        weight=data["n"],
        shared=bool(data["s"]),
    )


def _record_to_dict(record: TaskTraceRecord) -> dict:
    return {
        "id": record.instance_id,
        "type": record.task_type,
        "instructions": record.instructions,
        "depends_on": list(record.depends_on),
        "creation_order": record.creation_order,
        "blocks": [
            {
                "instructions": block.instructions,
                "events": [_event_to_dict(event) for event in block.memory_events],
            }
            for block in record.blocks
        ],
    }


def _record_from_dict(data: dict) -> TaskTraceRecord:
    blocks = [
        ExecutionBlock(
            instructions=block["instructions"],
            memory_events=tuple(_event_from_dict(event) for event in block["events"]),
        )
        for block in data["blocks"]
    ]
    return TaskTraceRecord(
        instance_id=data["id"],
        task_type=data["type"],
        instructions=data["instructions"],
        blocks=blocks,
        depends_on=tuple(data["depends_on"]),
        creation_order=data.get("creation_order", data["id"]),
    )


def _is_npz(path: Path) -> bool:
    return path.suffix == ".npz"


def save_trace(trace: ApplicationTrace, path: Union[str, Path]) -> Path:
    """Write ``trace`` to ``path``; the suffix selects the format.

    ``.npz`` writes the compact columnar format; anything else writes JSON,
    with a ``.gz`` suffix selecting gzip compression.  Returns the path
    written.
    """
    path = Path(path)
    if _is_npz(path):
        return _save_npz(trace, path)
    payload = {
        "format_version": FORMAT_VERSION,
        "name": trace.name,
        "metadata": trace.metadata,
        "records": [_record_to_dict(record) for record in trace.records],
    }
    text = json.dumps(payload)
    if path.suffix == ".gz":
        with gzip.open(path, "wt", encoding="utf-8") as handle:
            handle.write(text)
    else:
        path.write_text(text, encoding="utf-8")
    return path


def load_trace(path: Union[str, Path]) -> ApplicationTrace:
    """Load a trace previously written by :func:`save_trace`.

    Structural invariants are enforced on the vectorised fast path (see
    module docstring); a corrupt or reordered file raises
    :class:`~repro.trace.trace.TraceValidationError` instead of loading as a
    silently different trace.
    """
    path = Path(path)
    if _is_npz(path):
        return _load_npz(path)
    if path.suffix == ".gz":
        with gzip.open(path, "rt", encoding="utf-8") as handle:
            payload = json.load(handle)
    else:
        payload = json.loads(path.read_text(encoding="utf-8"))
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported trace format version: {version}")
    records = []
    for position, entry in enumerate(payload["records"]):
        if entry["id"] != position:
            raise TraceValidationError(
                f"record at position {position} has instance_id {entry['id']}"
            )
        records.append(_record_from_dict(entry))
    trace = ApplicationTrace(
        name=payload["name"],
        records=records,
        metadata=payload.get("metadata", {}),
        validated=True,  # skip the per-record Python loop ...
    )
    trace.validate()  # ... but run the vectorised columnar checks.
    return trace


# ----------------------------------------------------------------------
# Columnar (NPZ) format
# ----------------------------------------------------------------------
def _save_npz(trace: ApplicationTrace, path: Path) -> Path:
    columns = trace.columns
    header = json.dumps(
        {
            "format_version": NPZ_FORMAT_VERSION,
            "name": trace.name,
            "metadata": trace.metadata,
            "task_types": list(columns.types.names),
        }
    )
    arrays = {key: getattr(columns, key) for key in _COLUMN_KEYS}
    arrays["header"] = np.frombuffer(header.encode("utf-8"), dtype=np.uint8)
    # Assemble in memory and publish with an atomic rename so a torn write
    # cannot leave a half archive behind under the final name.
    buffer = _io.BytesIO()
    np.savez_compressed(buffer, **arrays)
    scratch = path.with_name(path.name + ".tmp")
    scratch.write_bytes(buffer.getvalue())
    os.replace(scratch, path)
    return path


def _load_npz(path: Path) -> ApplicationTrace:
    with np.load(path, allow_pickle=False) as archive:
        header = json.loads(bytes(archive["header"]).decode("utf-8"))
        version = header.get("format_version")
        if version != NPZ_FORMAT_VERSION:
            raise ValueError(f"unsupported columnar trace format version: {version}")
        columns = TraceColumns(
            types=TaskTypeTable(header["task_types"]),
            **{key: archive[key] for key in _COLUMN_KEYS},
        )
    # The file is untrusted input: check array integrity first, then let the
    # trace constructor run the (vectorised) semantic validation.
    columns.check_consistency()
    return ApplicationTrace(
        name=header["name"],
        columns=columns,
        metadata=header.get("metadata", {}),
    )
