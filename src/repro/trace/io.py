"""Serialisation of application traces to and from JSON.

Synthetic traces are cheap to regenerate, but persisting them is useful to
pin down an exact experiment input (for instance when comparing two simulator
versions) and mirrors the trace-file workflow of the original TaskSim setup.
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path
from typing import Union

from repro.trace.records import ExecutionBlock, MemoryEvent, TaskTraceRecord
from repro.trace.trace import ApplicationTrace

FORMAT_VERSION = 1


def _event_to_dict(event: MemoryEvent) -> dict:
    return {
        "a": event.address,
        "w": int(event.is_write),
        "n": event.weight,
        "s": int(event.shared),
    }


def _event_from_dict(data: dict) -> MemoryEvent:
    return MemoryEvent(
        address=data["a"],
        is_write=bool(data["w"]),
        weight=data["n"],
        shared=bool(data["s"]),
    )


def _record_to_dict(record: TaskTraceRecord) -> dict:
    return {
        "id": record.instance_id,
        "type": record.task_type,
        "instructions": record.instructions,
        "depends_on": list(record.depends_on),
        "creation_order": record.creation_order,
        "blocks": [
            {
                "instructions": block.instructions,
                "events": [_event_to_dict(event) for event in block.memory_events],
            }
            for block in record.blocks
        ],
    }


def _record_from_dict(data: dict) -> TaskTraceRecord:
    blocks = [
        ExecutionBlock(
            instructions=block["instructions"],
            memory_events=tuple(_event_from_dict(event) for event in block["events"]),
        )
        for block in data["blocks"]
    ]
    return TaskTraceRecord(
        instance_id=data["id"],
        task_type=data["type"],
        instructions=data["instructions"],
        blocks=blocks,
        depends_on=tuple(data["depends_on"]),
        creation_order=data.get("creation_order", data["id"]),
    )


def save_trace(trace: ApplicationTrace, path: Union[str, Path]) -> Path:
    """Write ``trace`` to ``path`` as (optionally gzipped) JSON.

    A ``.gz`` suffix selects gzip compression.  Returns the path written.
    """
    path = Path(path)
    payload = {
        "format_version": FORMAT_VERSION,
        "name": trace.name,
        "metadata": trace.metadata,
        "records": [_record_to_dict(record) for record in trace.records],
    }
    text = json.dumps(payload)
    if path.suffix == ".gz":
        with gzip.open(path, "wt", encoding="utf-8") as handle:
            handle.write(text)
    else:
        path.write_text(text, encoding="utf-8")
    return path


def load_trace(path: Union[str, Path]) -> ApplicationTrace:
    """Load a trace previously written by :func:`save_trace`."""
    path = Path(path)
    if path.suffix == ".gz":
        with gzip.open(path, "rt", encoding="utf-8") as handle:
            payload = json.load(handle)
    else:
        payload = json.loads(path.read_text(encoding="utf-8"))
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported trace format version: {version}")
    records = [_record_from_dict(entry) for entry in payload["records"]]
    return ApplicationTrace(
        name=payload["name"],
        records=records,
        metadata=payload.get("metadata", {}),
    )
