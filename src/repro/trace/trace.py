"""Application traces: the complete dynamic task graph of a program run.

An :class:`ApplicationTrace` is what the TaskSim-style simulator replays.  It
contains every task instance created by the (synthetic) program, in creation
order, together with the dependency edges between them.  The trace also keeps
aggregate statistics used by Table I of the paper (number of task types,
number of task instances).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

from repro.trace.records import TaskTraceRecord


class TraceValidationError(ValueError):
    """Raised when an application trace violates a structural invariant."""


@dataclass(frozen=True)
class TraceStatistics:
    """Aggregate statistics of an application trace (Table I columns)."""

    name: str
    num_task_types: int
    num_task_instances: int
    total_instructions: int
    total_memory_accesses: int
    instances_per_type: Dict[str, int]
    instructions_per_type: Dict[str, int]

    @property
    def dominant_task_type(self) -> str:
        """Task type that accounts for the largest share of instructions."""
        return max(self.instructions_per_type, key=self.instructions_per_type.get)

    def instruction_share(self, task_type: str) -> float:
        """Fraction of all dynamic instructions contributed by ``task_type``."""
        if self.total_instructions == 0:
            return 0.0
        return self.instructions_per_type.get(task_type, 0) / self.total_instructions


@dataclass
class ApplicationTrace:
    """The trace of one application run, replayed by the simulator.

    Attributes
    ----------
    name:
        Benchmark name (e.g. ``"cholesky"``).
    records:
        Task-instance trace records in creation order.  ``records[i]`` must
        have ``instance_id == i``.
    metadata:
        Free-form information recorded by the workload generator (problem
        size, scale factor, seed, ...).
    """

    name: str
    records: List[TaskTraceRecord] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.validate()

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants; raise :class:`TraceValidationError`.

        Invariants: instance ids are dense and match their position, and
        dependencies only point to earlier (already created) instances, which
        guarantees the task graph is acyclic.
        """
        for index, record in enumerate(self.records):
            if record.instance_id != index:
                raise TraceValidationError(
                    f"record at position {index} has instance_id {record.instance_id}"
                )
            for dependency in record.depends_on:
                if dependency < 0 or dependency >= index:
                    raise TraceValidationError(
                        f"instance {index} depends on {dependency}, which is not an"
                        " earlier instance"
                    )

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TaskTraceRecord]:
        return iter(self.records)

    def __getitem__(self, instance_id: int) -> TaskTraceRecord:
        return self.records[instance_id]

    @property
    def task_types(self) -> Tuple[str, ...]:
        """Names of all task types, in order of first appearance."""
        seen: List[str] = []
        known = set()
        for record in self.records:
            if record.task_type not in known:
                known.add(record.task_type)
                seen.append(record.task_type)
        return tuple(seen)

    def instances_of(self, task_type: str) -> List[TaskTraceRecord]:
        """Return all instances of ``task_type`` in creation order."""
        return [record for record in self.records if record.task_type == task_type]

    def dependents(self) -> Dict[int, List[int]]:
        """Return the forward dependency map: instance id -> dependent ids."""
        forward: Dict[int, List[int]] = {record.instance_id: [] for record in self.records}
        for record in self.records:
            for dependency in record.depends_on:
                forward[dependency].append(record.instance_id)
        return forward

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def statistics(self) -> TraceStatistics:
        """Compute aggregate statistics (Table I style) for this trace."""
        instances_per_type: Counter = Counter()
        instructions_per_type: Counter = Counter()
        total_instructions = 0
        total_accesses = 0
        for record in self.records:
            instances_per_type[record.task_type] += 1
            instructions_per_type[record.task_type] += record.instructions
            total_instructions += record.instructions
            total_accesses += record.memory_accesses
        return TraceStatistics(
            name=self.name,
            num_task_types=len(instances_per_type),
            num_task_instances=len(self.records),
            total_instructions=total_instructions,
            total_memory_accesses=total_accesses,
            instances_per_type=dict(instances_per_type),
            instructions_per_type=dict(instructions_per_type),
        )

    def critical_path_length(self) -> int:
        """Return the number of instances on the longest dependency chain.

        Useful to characterise how much parallelism a workload exposes: an
        embarrassingly parallel kernel has a critical path of 1 while a
        reduction tree has a logarithmic one and a pipeline a linear one.
        """
        depth: Dict[int, int] = {}
        longest = 0
        for record in self.records:
            level = 1
            for dependency in record.depends_on:
                level = max(level, depth[dependency] + 1)
            depth[record.instance_id] = level
            longest = max(longest, level)
        return longest

    def max_parallelism(self) -> int:
        """Upper bound on concurrently-ready instances (instances per level)."""
        depth: Dict[int, int] = {}
        per_level: Counter = Counter()
        for record in self.records:
            level = 1
            for dependency in record.depends_on:
                level = max(level, depth[dependency] + 1)
            depth[record.instance_id] = level
            per_level[level] += 1
        return max(per_level.values()) if per_level else 0


def merge_traces(name: str, traces: Sequence[ApplicationTrace]) -> ApplicationTrace:
    """Concatenate several traces into one program with renumbered instances.

    Dependencies within each input trace are preserved; the phases execute
    back to back because the first instance of each subsequent trace is made
    to depend on the last instance of the previous one (a lightweight way to
    model program phases separated by a taskwait).
    """
    records: List[TaskTraceRecord] = []
    offset = 0
    previous_last: int | None = None
    for trace in traces:
        for record in trace.records:
            depends = tuple(dep + offset for dep in record.depends_on)
            if previous_last is not None and not depends:
                depends = (previous_last,)
            records.append(
                TaskTraceRecord(
                    instance_id=record.instance_id + offset,
                    task_type=record.task_type,
                    instructions=record.instructions,
                    blocks=list(record.blocks),
                    depends_on=depends,
                    creation_order=record.instance_id + offset,
                )
            )
        if trace.records:
            previous_last = trace.records[-1].instance_id + offset
        offset += len(trace.records)
    return ApplicationTrace(name=name, records=records)
