"""Application traces: the complete dynamic task graph of a program run.

An :class:`ApplicationTrace` is what the TaskSim-style simulator replays.  It
contains every task instance created by the (synthetic) program, in creation
order, together with the dependency edges between them.  The trace also keeps
aggregate statistics used by Table I of the paper (number of task types,
number of task instances).

Since the columnar-backbone refactor the source of truth is a
:class:`~repro.trace.columns.TraceColumns` bundle of NumPy arrays;
``TaskTraceRecord`` views are materialised lazily so record-oriented code
(serialisation, tests, the legacy per-record detailed model) keeps working
unchanged.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.trace.columns import ColumnBuilder, TraceColumns
from repro.trace.records import TaskTraceRecord


class TraceValidationError(ValueError):
    """Raised when an application trace violates a structural invariant."""


class TraceStatistics:
    """Aggregate statistics of an application trace (Table I columns)."""

    __slots__ = (
        "name",
        "num_task_types",
        "num_task_instances",
        "total_instructions",
        "total_memory_accesses",
        "instances_per_type",
        "instructions_per_type",
    )

    def __init__(
        self,
        name: str,
        num_task_types: int,
        num_task_instances: int,
        total_instructions: int,
        total_memory_accesses: int,
        instances_per_type: Dict[str, int],
        instructions_per_type: Dict[str, int],
    ) -> None:
        self.name = name
        self.num_task_types = num_task_types
        self.num_task_instances = num_task_instances
        self.total_instructions = total_instructions
        self.total_memory_accesses = total_memory_accesses
        self.instances_per_type = instances_per_type
        self.instructions_per_type = instructions_per_type

    @property
    def dominant_task_type(self) -> str:
        """Task type that accounts for the largest share of instructions."""
        return max(self.instructions_per_type, key=self.instructions_per_type.get)

    def instruction_share(self, task_type: str) -> float:
        """Fraction of all dynamic instructions contributed by ``task_type``."""
        if self.total_instructions == 0:
            return 0.0
        return self.instructions_per_type.get(task_type, 0) / self.total_instructions

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceStatistics(name={self.name!r},"
            f" types={self.num_task_types}, instances={self.num_task_instances})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceStatistics):
            return NotImplemented
        return all(
            getattr(self, slot) == getattr(other, slot) for slot in self.__slots__
        )


class ApplicationTrace:
    """The trace of one application run, replayed by the simulator.

    Parameters
    ----------
    name:
        Benchmark name (e.g. ``"cholesky"``).
    records:
        Task-instance trace records in creation order (``records[i]`` must
        have ``instance_id == i``).  Mutually exclusive with ``columns``;
        provided records are converted to columns once at construction.
    metadata:
        Free-form information recorded by the workload generator (problem
        size, scale factor, seed, ...).
    columns:
        Columnar trace data (the native representation).
    validated:
        ``True`` skips structural validation — the fast path for traces that
        were validated when they were first built (deserialisation of cached
        trace files, experiment replay).  Generator output and hand-built
        traces keep the full check.
    """

    def __init__(
        self,
        name: str,
        records: Optional[Sequence[TaskTraceRecord]] = None,
        metadata: Optional[Dict[str, object]] = None,
        columns: Optional[TraceColumns] = None,
        validated: bool = False,
    ) -> None:
        if columns is not None and records is not None:
            raise ValueError("pass either records or columns, not both")
        self.name = name
        self.metadata: Dict[str, object] = metadata if metadata is not None else {}
        self._statistics: Optional[TraceStatistics] = None
        if columns is None:
            record_list = list(records) if records is not None else []
            if not validated:
                self._validate_records(record_list)
            self.columns = TraceColumns.from_records(record_list)
            self._records: Optional[List[TaskTraceRecord]] = record_list
        else:
            self.columns = columns
            self._records = None
            if not validated:
                self.columns.validate()

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @staticmethod
    def _validate_records(records: Sequence[TaskTraceRecord]) -> None:
        for index, record in enumerate(records):
            if record.instance_id != index:
                raise TraceValidationError(
                    f"record at position {index} has instance_id {record.instance_id}"
                )
            for dependency in record.depends_on:
                if dependency < 0 or dependency >= index:
                    raise TraceValidationError(
                        f"instance {index} depends on {dependency}, which is not an"
                        " earlier instance"
                    )

    def validate(self) -> None:
        """Check structural invariants; raise :class:`TraceValidationError`.

        Invariants: instance ids are dense and match their position (implicit
        in the columnar layout), and dependencies only point to earlier
        (already created) instances, which guarantees the task graph is
        acyclic.
        """
        self.columns.validate()

    @property
    def records(self) -> List[TaskTraceRecord]:
        """Record views in creation order, materialised (and cached) lazily."""
        if self._records is None:
            self._records = self.columns.to_records()
        return self._records

    def __len__(self) -> int:
        return self.columns.num_records

    def __iter__(self) -> Iterator[TaskTraceRecord]:
        return iter(self.records)

    def __getitem__(self, instance_id: int) -> TaskTraceRecord:
        if self._records is not None:
            return self._records[instance_id]
        return self.columns.record(instance_id)

    @property
    def task_types(self) -> Tuple[str, ...]:
        """Names of all task types, in order of first appearance."""
        return self.columns.types.names

    def instances_of(self, task_type: str) -> List[TaskTraceRecord]:
        """Return all instances of ``task_type`` in creation order."""
        return [record for record in self.records if record.task_type == task_type]

    def dependents(self) -> Dict[int, List[int]]:
        """Return the forward dependency map: instance id -> dependent ids."""
        offsets, targets = self.columns.dependents_csr()
        offsets_list = offsets.tolist()
        targets_list = targets.tolist()
        return {
            index: targets_list[offsets_list[index] : offsets_list[index + 1]]
            for index in range(len(self))
        }

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def statistics(self) -> TraceStatistics:
        """Aggregate statistics (Table I style), computed once and cached.

        The trace is immutable after construction, so the cache never needs
        invalidation in normal use; call :meth:`invalidate_caches` after
        (test-only) in-place surgery on the columns.
        """
        if self._statistics is None:
            columns = self.columns
            num_types = len(columns.types)
            instance_counts = np.bincount(
                columns.task_type_id, minlength=num_types
            ).astype(np.int64)
            # np.add.at keeps the accumulation in exact int64 arithmetic
            # (bincount's weighted path would round-trip through float64).
            instruction_counts = np.zeros(num_types, dtype=np.int64)
            np.add.at(instruction_counts, columns.task_type_id, columns.instructions)
            accesses = columns.memory_accesses_per_record()
            names = columns.types.names
            self._statistics = TraceStatistics(
                name=self.name,
                num_task_types=num_types,
                num_task_instances=len(self),
                total_instructions=int(columns.instructions.sum()),
                total_memory_accesses=int(accesses.sum()),
                instances_per_type={
                    names[i]: int(instance_counts[i]) for i in range(num_types)
                },
                instructions_per_type={
                    names[i]: int(instruction_counts[i]) for i in range(num_types)
                },
            )
        return self._statistics

    def invalidate_caches(self) -> None:
        """Drop cached statistics and record views (after manual mutation)."""
        self._statistics = None
        self._records = None

    def critical_path_length(self) -> int:
        """Return the number of instances on the longest dependency chain.

        Useful to characterise how much parallelism a workload exposes: an
        embarrassingly parallel kernel has a critical path of 1 while a
        reduction tree has a logarithmic one and a pipeline a linear one.
        """
        return self._depth_levels()[0]

    def max_parallelism(self) -> int:
        """Upper bound on concurrently-ready instances (instances per level)."""
        return self._depth_levels()[1]

    def _depth_levels(self) -> Tuple[int, int]:
        columns = self.columns
        n = columns.num_records
        if n == 0:
            return 0, 0
        dep_offsets = columns.dep_offsets.tolist()
        dep_targets = columns.dep_targets.tolist()
        depth = [1] * n
        per_level: Dict[int, int] = {}
        longest = 0
        for index in range(n):
            level = 1
            for position in range(dep_offsets[index], dep_offsets[index + 1]):
                dependency_level = depth[dep_targets[position]] + 1
                if dependency_level > level:
                    level = dependency_level
            depth[index] = level
            per_level[level] = per_level.get(level, 0) + 1
            if level > longest:
                longest = level
        return longest, max(per_level.values())


def merge_traces(name: str, traces: Sequence[ApplicationTrace]) -> ApplicationTrace:
    """Concatenate several traces into one program with renumbered instances.

    Dependencies within each input trace are preserved; the phases execute
    back to back because the first instance of each subsequent trace is made
    to depend on the last instance of the previous one (a lightweight way to
    model program phases separated by a taskwait).
    """
    builder = ColumnBuilder()
    offset = 0
    previous_last: Optional[int] = None
    for trace in traces:
        columns = trace.columns
        count = columns.num_records
        type_names = columns.types.names
        type_ids = columns.task_type_id.tolist()
        instructions = columns.instructions.tolist()
        dep_offsets = columns.dep_offsets.tolist()
        dep_targets = columns.dep_targets.tolist()
        block_offsets = columns.block_offsets.tolist()
        block_instr = columns.block_instructions.tolist()
        event_offsets = columns.event_offsets.tolist()
        for index in range(count):
            depends = tuple(
                dep + offset
                for dep in dep_targets[dep_offsets[index] : dep_offsets[index + 1]]
            )
            if previous_last is not None and not depends:
                depends = (previous_last,)
            blocks = []
            for block in range(block_offsets[index], block_offsets[index + 1]):
                start, stop = event_offsets[block], event_offsets[block + 1]
                blocks.append((block_instr[block], _EventSlice(columns, start, stop)))
            builder.add_prepared(
                task_type=type_names[type_ids[index]],
                instructions=instructions[index],
                blocks=blocks,
                depends_on=depends,
                creation_order=index + offset,
            )
        if count:
            previous_last = count - 1 + offset
        offset += count
    return ApplicationTrace(name=name, columns=builder.build())


class _EventSlice:
    """Zero-copy event range used when merging columnar traces."""

    __slots__ = ("_columns", "_start", "_stop")

    def __init__(self, columns: TraceColumns, start: int, stop: int) -> None:
        self._columns = columns
        self._start = start
        self._stop = stop

    def __iter__(self):
        from repro.trace.records import MemoryEvent

        columns = self._columns
        for position in range(self._start, self._stop):
            yield MemoryEvent(
                address=int(columns.event_address[position]),
                is_write=bool(columns.event_is_write[position]),
                weight=int(columns.event_weight[position]),
                shared=bool(columns.event_shared[position]),
            )
