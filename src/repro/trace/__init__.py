"""Application traces for trace-driven simulation.

The TaskSim simulator used by the TaskPoint paper is trace driven: a native
execution of an OmpSs program is instrumented once, and the resulting trace
(task instances, their dynamic instruction counts and their memory behaviour)
is replayed by the simulator.  This package provides the equivalent trace
substrate for the reproduction:

* :class:`~repro.trace.records.MemoryEvent`, :class:`~repro.trace.records.ExecutionBlock`
  and :class:`~repro.trace.records.TaskTraceRecord` describe the dynamic
  behaviour of a single task instance,
* :class:`~repro.trace.trace.ApplicationTrace` bundles all task instances of a
  program together with the inter-task dependency graph,
* :class:`~repro.trace.generator.TraceBuilder` and the address-pattern helpers
  in :mod:`repro.trace.patterns` are used by the synthetic workloads in
  :mod:`repro.workloads` to build traces,
* :mod:`repro.trace.io` serialises traces to and from JSON files.
"""

from repro.trace.records import ExecutionBlock, MemoryEvent, TaskTraceRecord
from repro.trace.columns import ColumnBuilder, TaskTypeTable, TraceColumns
from repro.trace.trace import ApplicationTrace, TraceStatistics
from repro.trace.generator import TraceBuilder
from repro.trace.patterns import (
    AddressSpace,
    random_accesses,
    reuse_accesses,
    strided_accesses,
)
from repro.trace.io import load_trace, save_trace

__all__ = [
    "MemoryEvent",
    "ExecutionBlock",
    "TaskTraceRecord",
    "ColumnBuilder",
    "TaskTypeTable",
    "TraceColumns",
    "ApplicationTrace",
    "TraceStatistics",
    "TraceBuilder",
    "AddressSpace",
    "strided_accesses",
    "random_accesses",
    "reuse_accesses",
    "load_trace",
    "save_trace",
]
