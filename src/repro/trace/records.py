"""Trace records describing the dynamic behaviour of task instances.

A task instance is the unit of work scheduled by the runtime system and the
sampling unit used by TaskPoint.  The trace of an instance summarises what the
instance does when executed:

* how many dynamic instructions it retires,
* which memory locations it touches (as a bounded list of *weighted* memory
  events, each standing in for ``weight`` real accesses with the same locality
  behaviour), and
* how those accesses are interleaved with computation (execution blocks).

Keeping the memory behaviour as a bounded list of weighted events is what
makes full detailed simulation of tens of thousands of task instances
tractable in pure Python while preserving the properties TaskPoint's
evaluation depends on: per-instance IPC that reacts to cache state, shared
resource contention and input-dependent working sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class MemoryEvent:
    """A single weighted memory access of a task instance.

    Parameters
    ----------
    address:
        Byte address of the access.  Addresses are virtual and global to the
        application, so two task instances touching the same address share
        data (and cache lines).
    is_write:
        ``True`` for a store, ``False`` for a load.
    weight:
        Number of real accesses this event stands in for.  The detailed model
        resolves the event through the cache hierarchy once and charges its
        latency ``weight`` times with a diminishing-overlap factor.
    shared:
        Whether the address belongs to data shared between task instances
        (and therefore subject to invalidation by writers on other cores).
    """

    address: int
    is_write: bool = False
    weight: int = 1
    shared: bool = False

    def __post_init__(self) -> None:
        if self.address < 0:
            raise ValueError(f"address must be non-negative, got {self.address}")
        if self.weight < 1:
            raise ValueError(f"weight must be >= 1, got {self.weight}")


@dataclass(frozen=True)
class ExecutionBlock:
    """A region of a task instance: compute instructions plus memory events.

    The detailed core model charges ``instructions`` dispatch cycles through
    the ROB-occupancy model and resolves the block's memory events through the
    cache hierarchy.  Blocks model the interleaving of computation and memory
    traffic within one task instance; they are the granularity at which
    memory-level parallelism is modelled.
    """

    instructions: int
    memory_events: Tuple[MemoryEvent, ...] = ()

    def __post_init__(self) -> None:
        if self.instructions < 0:
            raise ValueError(
                f"instructions must be non-negative, got {self.instructions}"
            )
        if not isinstance(self.memory_events, tuple):
            object.__setattr__(self, "memory_events", tuple(self.memory_events))

    @property
    def memory_accesses(self) -> int:
        """Total number of real memory accesses represented by this block."""
        return sum(event.weight for event in self.memory_events)


@dataclass
class TaskTraceRecord:
    """Dynamic trace of one task instance.

    Attributes
    ----------
    instance_id:
        Unique, dense identifier of the task instance within its application
        trace.  Instance ids follow task creation order.
    task_type:
        Name of the task type (all instances created from the same task
        declaration share a type).
    instructions:
        Total dynamic instruction count of the instance.  This is the value
        TaskPoint's fast-forward mechanism multiplies by ``1 / IPC_T``.
    blocks:
        Execution blocks; their instruction counts sum to ``instructions``.
    depends_on:
        Instance ids this instance depends on (it only becomes ready once all
        of them completed).  Derived from the data dependencies declared by
        the task-based program.
    creation_order:
        Position in program order in which the runtime created the instance.
        The dynamic scheduler is free to execute ready instances in any order.
    """

    instance_id: int
    task_type: str
    instructions: int
    blocks: List[ExecutionBlock] = field(default_factory=list)
    depends_on: Tuple[int, ...] = ()
    creation_order: int = 0

    def __post_init__(self) -> None:
        if self.instance_id < 0:
            raise ValueError("instance_id must be non-negative")
        if self.instructions < 0:
            raise ValueError("instructions must be non-negative")
        if not isinstance(self.depends_on, tuple):
            self.depends_on = tuple(self.depends_on)
        if self.blocks:
            block_total = sum(block.instructions for block in self.blocks)
            if block_total != self.instructions:
                raise ValueError(
                    "sum of block instructions"
                    f" ({block_total}) does not match instance instruction count"
                    f" ({self.instructions})"
                )

    @property
    def memory_events(self) -> Iterator[MemoryEvent]:
        """Iterate over all memory events of the instance in program order."""
        for block in self.blocks:
            for event in block.memory_events:
                yield event

    @property
    def memory_accesses(self) -> int:
        """Total number of real memory accesses of the instance."""
        return sum(block.memory_accesses for block in self.blocks)

    @property
    def detail_events(self) -> int:
        """Number of memory events the detailed model resolves individually."""
        return sum(len(block.memory_events) for block in self.blocks)

    def working_set(self) -> int:
        """Approximate working-set size in bytes (distinct cache lines x 64)."""
        lines = {event.address // 64 for block in self.blocks for event in block.memory_events}
        return len(lines) * 64


def split_into_blocks(
    instructions: int,
    memory_events: Optional[Sequence[MemoryEvent]],
    blocks_hint: int,
) -> List[Tuple[int, List[MemoryEvent]]]:
    """Split a flat event list into ``(instructions, events)`` block tuples.

    Events are distributed round-robin over ``blocks_hint`` execution blocks
    and the instruction count is split evenly with the remainder charged to
    the last block.  This is the single definition of the split used by both
    :func:`make_record` and the columnar
    :meth:`~repro.trace.columns.ColumnBuilder.add_task`, keeping record-built
    and column-built traces bit-identical.
    """
    if blocks_hint < 1:
        raise ValueError("blocks_hint must be >= 1")
    events = list(memory_events or [])
    blocks_hint = max(1, min(blocks_hint, max(1, len(events))))
    per_block_instr = instructions // blocks_hint
    remainder = instructions - per_block_instr * blocks_hint
    return [
        (
            per_block_instr + (remainder if index == blocks_hint - 1 else 0),
            events[index::blocks_hint],
        )
        for index in range(blocks_hint)
    ]


def make_record(
    instance_id: int,
    task_type: str,
    instructions: int,
    memory_events: Optional[Sequence[MemoryEvent]] = None,
    depends_on: Sequence[int] = (),
    blocks_hint: int = 1,
    creation_order: Optional[int] = None,
) -> TaskTraceRecord:
    """Convenience constructor splitting a flat event list into blocks.

    The events are distributed round-robin over ``blocks_hint`` execution
    blocks and the instruction count is split evenly (see
    :func:`split_into_blocks`), which is sufficient for workload generators
    that do not care about intra-task phase behaviour.
    """
    blocks = [
        ExecutionBlock(instructions=block_instr, memory_events=tuple(block_events))
        for block_instr, block_events in split_into_blocks(
            instructions, memory_events, blocks_hint
        )
    ]
    return TaskTraceRecord(
        instance_id=instance_id,
        task_type=task_type,
        instructions=instructions,
        blocks=blocks,
        depends_on=tuple(depends_on),
        creation_order=creation_order if creation_order is not None else instance_id,
    )
