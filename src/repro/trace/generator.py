"""Incremental construction of application traces.

Workload generators describe their task graph instance by instance; the
:class:`TraceBuilder` takes care of instance numbering, block splitting and
dependency bookkeeping and finally produces a validated
:class:`~repro.trace.trace.ApplicationTrace`.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.trace.patterns import AddressSpaceAllocator
from repro.trace.records import MemoryEvent, TaskTraceRecord, make_record
from repro.trace.trace import ApplicationTrace


class TraceBuilder:
    """Builds an :class:`ApplicationTrace` one task instance at a time.

    The builder also owns an :class:`AddressSpaceAllocator` and a seeded
    :class:`random.Random` so workload generators have a single source of
    determinism: two builders created with the same name and seed produce
    byte-identical traces.
    """

    def __init__(self, name: str, seed: int = 0) -> None:
        self.name = name
        self.seed = seed
        self.rng = random.Random(seed)
        self.allocator = AddressSpaceAllocator()
        self._records: List[TaskTraceRecord] = []
        self._metadata: Dict[str, object] = {"seed": seed}

    # ------------------------------------------------------------------
    @property
    def next_instance_id(self) -> int:
        """Identifier the next :meth:`add_task` call will receive."""
        return len(self._records)

    @property
    def num_instances(self) -> int:
        """Number of task instances added so far."""
        return len(self._records)

    def last_instance_id(self) -> Optional[int]:
        """Return the id of the most recently added instance, if any."""
        if not self._records:
            return None
        return self._records[-1].instance_id

    def set_metadata(self, key: str, value: object) -> None:
        """Attach generator metadata (problem size, scale, ...) to the trace."""
        self._metadata[key] = value

    # ------------------------------------------------------------------
    def add_task(
        self,
        task_type: str,
        instructions: int,
        memory_events: Optional[Sequence[MemoryEvent]] = None,
        depends_on: Sequence[int] = (),
        blocks: int = 4,
    ) -> int:
        """Add one task instance and return its instance id.

        Parameters mirror :func:`repro.trace.records.make_record`; dependencies
        must refer to instances already added to this builder.
        """
        instance_id = self.next_instance_id
        for dependency in depends_on:
            if dependency < 0 or dependency >= instance_id:
                raise ValueError(
                    f"dependency {dependency} does not refer to an earlier instance"
                )
        record = make_record(
            instance_id=instance_id,
            task_type=task_type,
            instructions=instructions,
            memory_events=memory_events,
            depends_on=depends_on,
            blocks_hint=blocks,
        )
        self._records.append(record)
        return instance_id

    def add_record(self, record: TaskTraceRecord) -> int:
        """Add a pre-built record, renumbering it to the next instance id."""
        instance_id = self.next_instance_id
        renumbered = TaskTraceRecord(
            instance_id=instance_id,
            task_type=record.task_type,
            instructions=record.instructions,
            blocks=list(record.blocks),
            depends_on=record.depends_on,
            creation_order=instance_id,
        )
        self._records.append(renumbered)
        return instance_id

    def build(self) -> ApplicationTrace:
        """Finalise and validate the trace."""
        return ApplicationTrace(
            name=self.name,
            records=list(self._records),
            metadata=dict(self._metadata),
        )
