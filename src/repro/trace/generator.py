"""Incremental construction of application traces.

Workload generators describe their task graph instance by instance; the
:class:`TraceBuilder` takes care of instance numbering, block splitting and
dependency bookkeeping and finally produces a validated
:class:`~repro.trace.trace.ApplicationTrace`.

Since the columnar-backbone refactor the builder emits directly into a
:class:`~repro.trace.columns.ColumnBuilder` — no ``TaskTraceRecord`` objects
are allocated during generation; record views are materialised from the
columns only when record-oriented code asks for them.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Sequence

from repro.trace.columns import ColumnBuilder
from repro.trace.patterns import AddressSpaceAllocator
from repro.trace.records import MemoryEvent, TaskTraceRecord
from repro.trace.trace import ApplicationTrace


class TraceBuilder:
    """Builds an :class:`ApplicationTrace` one task instance at a time.

    The builder also owns an :class:`AddressSpaceAllocator` and a seeded
    :class:`random.Random` so workload generators have a single source of
    determinism: two builders created with the same name and seed produce
    byte-identical traces.
    """

    def __init__(self, name: str, seed: int = 0) -> None:
        self.name = name
        self.seed = seed
        self.rng = random.Random(seed)
        self.allocator = AddressSpaceAllocator()
        self._columns = ColumnBuilder()
        self._metadata: Dict[str, object] = {"seed": seed}

    # ------------------------------------------------------------------
    @property
    def next_instance_id(self) -> int:
        """Identifier the next :meth:`add_task` call will receive."""
        return self._columns.num_records

    @property
    def num_instances(self) -> int:
        """Number of task instances added so far."""
        return self._columns.num_records

    def last_instance_id(self) -> Optional[int]:
        """Return the id of the most recently added instance, if any."""
        if self._columns.num_records == 0:
            return None
        return self._columns.num_records - 1

    def set_metadata(self, key: str, value: object) -> None:
        """Attach generator metadata (problem size, scale, ...) to the trace."""
        self._metadata[key] = value

    # ------------------------------------------------------------------
    def add_task(
        self,
        task_type: str,
        instructions: int,
        memory_events: Optional[Sequence[MemoryEvent]] = None,
        depends_on: Sequence[int] = (),
        blocks: int = 4,
    ) -> int:
        """Add one task instance and return its instance id.

        Parameters mirror :func:`repro.trace.records.make_record` (events are
        split round-robin over ``blocks`` execution blocks); dependencies
        must refer to instances already added to this builder.
        """
        instance_id = self.next_instance_id
        for dependency in depends_on:
            if dependency < 0 or dependency >= instance_id:
                raise ValueError(
                    f"dependency {dependency} does not refer to an earlier instance"
                )
        return self._columns.add_task(
            task_type=task_type,
            instructions=instructions,
            memory_events=memory_events,
            depends_on=depends_on,
            blocks_hint=blocks,
        )

    def add_record(self, record: TaskTraceRecord) -> int:
        """Add a pre-built record, renumbering it to the next instance id."""
        return self._columns.add_prepared(
            task_type=record.task_type,
            instructions=record.instructions,
            blocks=[
                (block.instructions, block.memory_events) for block in record.blocks
            ],
            depends_on=record.depends_on,
        )

    def build(self) -> ApplicationTrace:
        """Finalise and validate the trace."""
        return ApplicationTrace(
            name=self.name,
            columns=self._columns.build(),
            metadata=dict(self._metadata),
        )
