"""Vectorised dynamic cache walk over groups of independent task instances.

The batched executor (:mod:`repro.arch.batch`) vectorised the *static* part
of the detailed cost model but still walks the cache state record-at-a-time
in interpreted Python.  This module vectorises the *dynamic* part: the
set-associative tag stores, LRU state and hit/miss/eviction/writeback
accounting are mirrored into NumPy arrays and many instances' event streams
are walked at once in a lockstep kernel.

Independence criterion
----------------------
Task instances execute atomically in dispatch order, so two instances may be
walked in bulk only when the bulk walk replays the scalar state evolution
exactly: they must run on different cores (private tag stores disjoint by
construction) and neither may write shared data (a shared-data write
invalidates lines in *other* cores' private caches, coupling the group
through coherence).  Shared-level set aliasing between group members does
*not* force a flush: the kernel serialises events that land on the same tag
store row by rank, in stream order, and the group's concatenated event
stream is exactly the dispatch order the scalar path would execute — so
overlapping shared footprints evolve the shared LRU state bit-identically.
The engine's deferred-dispatch path (:mod:`repro.sim.engine`) accumulates
exactly such groups; shared-data writers run as a group of one through
:meth:`VectorWalkEngine.execute_writer`, which replays their coherence
invalidations on the array state after the walk, and the scalar
:class:`~repro.arch.batch.BatchedCoreExecutor` path stays the bit-identity
oracle throughout.

State representation
--------------------
The authoritative tag state lives in the per-level
:class:`~repro.arch.tagstore.LevelTagStore` NumPy planes owned by the
:class:`~repro.arch.hierarchy.MemorySystem`.  The kernel adopts the rows a
group touches (importing any ``OrderedDict`` working copies a scalar path
left behind) and walks the planes in place; touched rows simply *stay*
plane-resident — scalar readers materialise them back lazily through the
caches' :class:`~repro.arch.tagstore._SetViews`, so there is no per-group
export and the kernel's fixed overhead is the walk itself.

Every floating-point reduction replays the scalar operation order (per-block
exposure sums accumulate in event-rank order, per-instance totals in block
order, interconnect/DRAM latency totals by sequential ``np.cumsum`` fold),
so results are bit-identical to the per-record and batched paths.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.arch.batch import BatchedCoreExecutor
from repro.arch.tagstore import LevelTagStore


class VectorWalkEngine:
    """Bulk evaluator for groups of commuting task instances.

    Parameters
    ----------
    batched:
        The scalar batched executor; the vector engine shares its
        :class:`~repro.arch.batch.ExecutionPlan` (NumPy geometry columns),
        its memoised contention tables and the live cache state.
    """

    def __init__(self, batched: BatchedCoreExecutor) -> None:
        self.batched = batched
        self.plan = batched.plan
        memory = batched.memory_system
        hierarchy = memory.hierarchy(0)
        self._num_private = len(hierarchy.private_caches)
        self._num_levels = len(hierarchy.caches)
        self._memory = memory
        self._num_cores = memory.num_cores
        #: Whether the kernel currently owns (some) tag-store rows; the
        #: memory system's :class:`LevelTagStore` planes are allocated on
        #: first activation and persist after :meth:`deactivate`.
        self._active = False
        #: Deferred hit/miss/eviction/writeback/invalidation counters, one
        #: ``(views, 5)`` int64 array per level, built with the planes and
        #: drained into the Python statistics objects by
        #: :meth:`flush_statistics`.  Integer counters commute, so deferring
        #: them to the end of the run is exact; scalar paths keep
        #: incrementing the Python objects directly.
        self._stat_acc: Optional[List[np.ndarray]] = None
        #: Per-core, per-private-level statistics objects.
        self._private_stats = [
            [c.stats for c in memory.hierarchy(core).private_caches]
            for core in range(memory.num_cores)
        ]
        self._shared_stats = [c.stats for c in memory.shared_caches]
        #: NumPy-ified contention tables per active-core count.
        self._np_tables: Dict[int, tuple] = {}
        self._commutes = [not sw for sw in self.plan.has_shared_write_list]
        self._record_offsets = batched.columns.record_event_offsets
        self._event_is_write = batched.columns.event_is_write
        self._event_shared = batched.columns.event_shared

    def record_commutes(self, index: int) -> bool:
        """Whether record ``index`` may join a deferred group.

        Shared-data writers are ineligible: their coherence invalidations
        reach *other* cores' private caches, so their walk does not commute
        with any concurrently deferred instance.
        """
        return self._commutes[index]

    def kernel_active(self) -> bool:
        """Whether the kernel may currently hold plane-resident rows.

        Until the first group executes, the ``OrderedDict`` working copies
        are the only state and the scalar path needs no synchronisation —
        workloads where nothing ever commutes (every record writes shared
        data) stay entirely on the scalar path with zero kernel overhead.
        """
        return self._active

    def _tables(self, active_cores: int) -> tuple:
        """``(ic_latency, dram_latency, exposure values, exposure flags)``."""
        tables = self._np_tables.get(active_cores)
        if tables is None:
            ic_latency, dram_latency, _, exposure = self.batched.contention_tables(
                active_cores
            )
            values = np.array(
                [0.0 if e is None else e for e in exposure], dtype=np.float64
            )
            flags = np.array([e is not None for e in exposure], dtype=np.bool_)
            tables = (ic_latency, dram_latency, values, flags)
            self._np_tables[active_cores] = tables
        return tables

    def _ensure_states(self) -> List[LevelTagStore]:
        stores = self._memory.stores
        if not self._active:
            for store in stores:
                store.ensure_planes()
            if self._stat_acc is None:
                self._stat_acc = [
                    np.zeros((store.num_views, 5), dtype=np.int64)
                    for store in stores
                ]
            self._active = True
        return stores

    # ------------------------------------------------------------------
    # Scalar-path interoperation.
    def flush_state(self) -> None:
        """Materialise every plane-resident row into the dict working copies.

        Post-run readers (snapshot tests, occupancy probes) may iterate the
        caches' set mappings directly; this forces the lazy export for
        every row the kernel still owns.
        """
        for store in self._memory.stores:
            if store.resident is not None:
                store.export_all()

    def deactivate(self) -> None:
        """Stand the kernel down after a lost measured trial.

        Called by the engine when its measured trial shows the scalar
        grouped executor outrunning the kernel on this trace/machine
        combination: the deferred statistics are drained and the
        shared-writer dispatch gate (which keys on :meth:`kernel_active`)
        flips back to the scalar path.  Rows the kernel touched simply stay
        plane-resident — the scalar walk materialises each one lazily on
        first touch, so there is no bulk export and abandoning a trial is
        nearly free.  The engine may re-engage the kernel later via
        :meth:`execute_group`; adoption then re-imports whatever the scalar
        paths pulled back out.
        """
        self.flush_statistics()
        self._active = False

    def flush_statistics(self) -> None:
        """Drain the deferred integer counters into the cache statistics."""
        acc_list = self._stat_acc
        if acc_list is None:
            return
        num_private = self._num_private
        for level, acc in enumerate(acc_list):
            if not acc.any():
                continue
            if level < num_private:
                for core in range(self._num_cores):
                    hits, misses, evictions, writebacks, invalidations = (
                        acc[core].tolist()
                    )
                    stats = self._private_stats[core][level]
                    stats.hits += hits
                    stats.misses += misses
                    stats.evictions += evictions
                    stats.writebacks += writebacks
                    stats.invalidations += invalidations
            else:
                hits, misses, evictions, writebacks, invalidations = (
                    acc[0].tolist()
                )
                stats = self._shared_stats[level - num_private]
                stats.hits += hits
                stats.misses += misses
                stats.evictions += evictions
                stats.writebacks += writebacks
                stats.invalidations += invalidations
            acc[:] = 0

    def _accumulate(
        self,
        level: int,
        cores: np.ndarray,
        hit: np.ndarray,
        evicted: Optional[np.ndarray],
        wrote_back: Optional[np.ndarray],
    ) -> None:
        """Defer one level's walk outcome into the integer accumulators."""
        acc = self._stat_acc[level]
        if level < self._num_private:
            num_cores = self._num_cores
            all_by = np.bincount(cores, minlength=num_cores)
            hit_by = np.bincount(cores[hit], minlength=num_cores)
            acc[:, 0] += hit_by
            acc[:, 1] += all_by - hit_by
            if evicted is not None:
                acc[:, 2] += np.bincount(cores[evicted], minlength=num_cores)
                acc[:, 3] += np.bincount(cores[wrote_back], minlength=num_cores)
        else:
            hits = int(hit.sum())
            acc[0, 0] += hits
            acc[0, 1] += hit.shape[0] - hits
            if evicted is not None:
                acc[0, 2] += int(evicted.sum())
                acc[0, 3] += int(wrote_back.sum())

    # ------------------------------------------------------------------
    def _finalise_static(
        self, members: Sequence[tuple]
    ) -> List[Tuple[float, float]]:
        """Results when no member's events expose stall latency."""
        static_cycles = self.plan.static_cycles
        instructions = self.plan.instructions
        results: List[Tuple[float, float]] = []
        for index, _core, _active, noise in members:
            total = static_cycles[index]
            if total <= 0.0:
                total = 1.0
            if noise is not None and noise != 1.0:
                total *= noise
            if total <= 0.0:
                results.append((total, 0.0))
                continue
            results.append((total, instructions[index] / total))
        return results

    def execute_group(
        self, members: Sequence[tuple]
    ) -> List[Tuple[float, float]]:
        """Walk a group of commuting instances in bulk.

        ``members`` is a sequence of ``(index, core_id, active_cores,
        noise)`` tuples in dispatch order.  Returns ``(cycles, ipc)`` per
        member, bit-identical to calling
        :meth:`BatchedCoreExecutor.execute` member by member.
        """
        plan = self.plan
        size = len(members)
        index_arr = np.fromiter((m[0] for m in members), np.int64, size)
        core_arr = np.fromiter((m[1] for m in members), np.int64, size)

        offsets = self._record_offsets
        starts = offsets[index_arr]
        counts = offsets[index_arr + 1] - starts
        total_events = int(counts.sum())
        if not total_events:
            return self._finalise_static(members)

        # Concatenated event stream in dispatch order.
        member_of_event = np.repeat(np.arange(size, dtype=np.int64), counts)
        stream_base = np.cumsum(counts) - counts
        event_ids = (
            np.arange(total_events, dtype=np.int64)
            + (starts - stream_base)[member_of_event]
        )
        cores_of_event = core_arr[member_of_event]
        writes = self._event_is_write[event_ids]
        stream_writes = bool(writes.any())

        states = self._ensure_states()
        num_private = self._num_private
        num_levels = self._num_levels
        level_rank = plan.level_rank
        level_max_rank = plan.level_max_rank
        indices_list = [m[0] for m in members]

        # L1 walk over the full stream; the misses continue outwards.
        # Filtering preserves per-level stream order, which is all the
        # scalar walk's state evolution depends on.
        state = states[0]
        max_rank_l1 = level_max_rank[0]
        group_max = 0
        for record in indices_list:
            rank = max_rank_l1[record]
            if rank > group_max:
                group_max = rank
        hit, evicted, wrote_back = state.walk(
            cores_of_event * state.num_sets + plan.level_set[0][event_ids],
            plan.level_tag[0][event_ids],
            writes,
            cores_of_event,
            ranks=level_rank[0][event_ids] if group_max else None,
            has_writes=stream_writes,
        )
        self._accumulate(0, cores_of_event, hit, evicted, wrote_back)
        keep = ~hit
        if not keep.any():
            # Every event hit L1, and with the engine's threshold an L1 hit
            # never exposes stall latency: each member's cycle count is its
            # exact static fold, and no interconnect/DRAM traffic occurred.
            return self._finalise_static(members)

        deep_ids = event_ids[keep]
        deep_member = member_of_event[keep]
        alive_ids = deep_ids
        alive_member = deep_member
        alive_core = cores_of_event[keep]
        alive_writes = writes[keep]
        # Resolution level of every post-L1 event (miss_level = full miss),
        # plus each alive event's position in the post-L1 stream.
        lev = np.full(deep_ids.shape[0], num_levels, dtype=np.int64)
        pos = np.arange(deep_ids.shape[0], dtype=np.int64)
        ic_member: Optional[np.ndarray] = None
        for level in range(1, num_levels):
            if not alive_ids.size:
                break
            state = states[level]
            if level < num_private:
                max_rank_level = level_max_rank[level]
                group_max = 0
                for record in indices_list:
                    rank = max_rank_level[record]
                    if rank > group_max:
                        group_max = rank
                hit, evicted, wrote_back = state.walk(
                    alive_core * state.num_sets + plan.level_set[level][alive_ids],
                    plan.level_tag[level][alive_ids],
                    alive_writes,
                    alive_core,
                    ranks=level_rank[level][alive_ids] if group_max else None,
                    has_writes=stream_writes,
                )
            else:
                if ic_member is None:
                    # Every event reaching a shared level crosses the
                    # interconnect, hit or miss.
                    ic_member = alive_member
                hit, evicted, wrote_back = state.walk(
                    plan.level_set[level][alive_ids],
                    plan.level_tag[level][alive_ids],
                    alive_writes,
                    alive_core,
                    serialise=True,
                    has_writes=stream_writes,
                )
            self._accumulate(level, alive_core, hit, evicted, wrote_back)
            lev[pos[hit]] = level
            keep = ~hit
            alive_ids = alive_ids[keep]
            alive_member = alive_member[keep]
            alive_core = alive_core[keep]
            alive_writes = alive_writes[keep]
            pos = pos[keep]

        # ------------------------------------------------------------------
        # Interconnect / DRAM accounting.  Within one instance the latency
        # is constant, so the scalar path's sequential float accumulation is
        # replayed as a cumulative fold over per-event constants in dispatch
        # order (np.cumsum is a strict left fold for float64).
        # In steady state every member dispatched at the same instant sees
        # the same active-worker count; one shared table then replaces the
        # per-member stacking below.
        act0 = members[0][2]
        uniform = True
        for member in members:
            if member[2] != act0:
                uniform = False
                break
        if uniform:
            table0 = self._tables(act0 if act0 >= 1 else 1)
            table_rows = None
        else:
            table_rows = [self._tables(m[2] if m[2] >= 1 else 1) for m in members]
        dram_member = alive_member
        if ic_member is None:
            # No shared level: only full misses cross the interconnect.
            ic_member = alive_member
        if ic_member.size:
            interconnect = self._memory.interconnect
            fold = np.empty(ic_member.size + 1, dtype=np.float64)
            fold[0] = interconnect.stats.total_latency
            if uniform:
                fold[1:] = table0[0]
            else:
                ic_values = np.fromiter(
                    (t[0] for t in table_rows), np.float64, size
                )
                fold[1:] = ic_values[ic_member]
            interconnect.stats.transfers += ic_member.size
            interconnect.stats.total_latency = float(fold.cumsum()[-1])
        if dram_member.size:
            dram = self._memory.dram
            fold = np.empty(dram_member.size + 1, dtype=np.float64)
            fold[0] = dram.stats.total_latency
            if uniform:
                fold[1:] = table0[1]
            else:
                dram_values = np.fromiter(
                    (t[1] for t in table_rows), np.float64, size
                )
                fold[1:] = dram_values[dram_member]
            dram.stats.requests += dram_member.size
            dram.stats.total_latency = float(fold.cumsum()[-1])

        # ------------------------------------------------------------------
        # Exposure: only post-L1 events can expose stall latency, and only
        # a few outcomes per table do.  The exposed subset is usually small,
        # so the per-block aggregation runs in plain Python over it.
        if uniform:
            exposed_mask = table0[3][lev]
            if not exposed_mask.any():
                return self._finalise_static(members)
            exposed_member = deep_member[exposed_mask]
            exposed_values = table0[2][lev[exposed_mask]].tolist()
        else:
            flag_stack = np.stack([t[3] for t in table_rows])
            exposed_mask = flag_stack[deep_member, lev]
            if not exposed_mask.any():
                return self._finalise_static(members)
            value_stack = np.stack([t[2] for t in table_rows])
            exposed_member = deep_member[exposed_mask]
            exposed_values = value_stack[exposed_member, lev[exposed_mask]].tolist()
        exposed_blocks = plan.event_block[deep_ids[exposed_mask]].tolist()
        exposed_members = exposed_member.tolist()

        # Same-block exposed events are consecutive: within one record the
        # block ids are non-decreasing, and a global block id belongs to one
        # member.  The fold below therefore replays each block's exposure
        # accumulation in event order (unexposed events are skipped exactly
        # as the scalar loop skips them).
        max_outstanding = self.batched._max_outstanding
        block_repeat = plan.block_repeat_list
        block_dispatch = plan.block_dispatch_list
        stall_map: Dict[int, list] = {}

        def close_block(block: int, member: int, esum: float, emax: float, count: int) -> None:
            mlp = float(count) if count > 1 else 1.0
            if mlp > max_outstanding:
                mlp = max_outstanding
            stall = esum / mlp
            if emax > stall:
                stall = emax
            stall += block_repeat[block]
            entry = stall_map.get(member)
            if entry is None:
                stall_map[member] = entry = []
            entry.append((block, block_dispatch[block] + stall))

        current_block = exposed_blocks[0]
        current_member = exposed_members[0]
        esum = 0.0
        emax = 0.0
        count = 0
        for block, member, value in zip(
            exposed_blocks, exposed_members, exposed_values
        ):
            if block != current_block:
                close_block(current_block, current_member, esum, emax, count)
                current_block = block
                current_member = member
                esum = 0.0
                emax = 0.0
                count = 0
            esum += value
            if value > emax:
                emax = value
            count += 1
        close_block(current_block, current_member, esum, emax, count)

        # ------------------------------------------------------------------
        # Per-member totals: the left fold over block contributions, where a
        # block's contribution is its dispatch time plus (for blocks with
        # exposed events, i.e. exposed_sum > 0) the stall estimate.
        block_offsets = plan.block_offsets
        static_cycles = plan.static_cycles
        instructions = plan.instructions
        results: List[Tuple[float, float]] = []
        for g, (index, _core, _active, noise) in enumerate(members):
            stalled = stall_map.get(g)
            if stalled is None:
                total = static_cycles[index]
            else:
                first = block_offsets[index]
                contribution = block_dispatch[first : block_offsets[index + 1]]
                for block, value in stalled:
                    contribution[block - first] = value
                total = sum(contribution)
            if total <= 0.0:
                total = 1.0
            if noise is not None and noise != 1.0:
                total *= noise
            if total <= 0.0:
                results.append((total, 0.0))
                continue
            results.append((total, instructions[index] / total))
        return results

    # ------------------------------------------------------------------
    def execute_writer(
        self,
        index: int,
        core_id: int,
        active_cores: int,
        noise: Optional[float],
    ) -> Tuple[float, float]:
        """Execute a shared-data-writing record entirely on the array state.

        A shared-data write invalidates the written line in every *other*
        core's private caches, so such records never join a group — but once
        the kernel owns the tag-store state, executing them scalar-side
        would force a round trip through the ``OrderedDict`` stores.  The
        record's own walk never reads the rows its invalidations mutate
        (other cores' private rows), so the walk runs as a group of one and
        the coherence actions are applied afterwards; only the relative
        order of invalidations targeting the same line matters, which
        :meth:`_apply_invalidations` preserves by deduplicating to the first
        occurrence.  Bit-identical to the scalar path.
        """
        result = self.execute_group([(index, core_id, active_cores, noise)])
        self._apply_invalidations(index, core_id)
        return result[0]

    def _apply_invalidations(self, index: int, core_id: int) -> None:
        """Apply record ``index``'s coherence invalidations array-side.

        Replays :meth:`BatchedCoreExecutor._invalidate_remote` for every
        shared-write event of the record: the written line is dropped from
        each other core's private levels, counting one invalidation (plus a
        writeback if the line was dirty) per line actually present.  Within
        one record no other core touches its own caches, so only the first
        invalidation of each distinct line can find it present — later
        duplicates are no-ops and are dropped up front.
        """
        plan = self.plan
        offsets = self._record_offsets
        start = int(offsets[index])
        end = int(offsets[index + 1])
        shared_writes = (
            self._event_is_write[start:end] & self._event_shared[start:end]
        )
        if not shared_writes.any():
            return
        events = np.nonzero(shared_writes)[0] + start
        states = self._ensure_states()
        others = [core for core in range(self._num_cores) if core != core_id]
        for level in range(self._num_private):
            state = states[level]
            sets = plan.level_set[level][events]
            tags = plan.level_tag[level][events]
            _, first = np.unique(
                tags * np.int64(state.num_sets) + sets, return_index=True
            )
            unique_sets = sets[first]
            unique_tags = tags[first]
            acc = self._stat_acc[level]
            for other in others:
                rows = unique_sets + other * state.num_sets
                state.adopt(rows)
                match = state.tags[rows] == unique_tags[:, None]
                hit = match.any(axis=1)
                num_hits = int(hit.sum())
                if not num_hits:
                    continue
                hit_rows = rows[hit]
                hit_ways = match.argmax(axis=1)[hit]
                acc[other, 4] += num_hits
                acc[other, 3] += int(state.dirty[hit_rows, hit_ways].sum())
                state.tags[hit_rows, hit_ways] = -1
