"""Array-native tag stores: one authoritative NumPy store per cache level.

Ownership model
---------------
A :class:`LevelTagStore` is the single source of truth for one cache level's
tag state across all cores.  Its persistent representation is a set of NumPy
planes — ``tags``, ``dirty``, ``owner`` and an LRU ``stamp`` per (row, way),
where a row is ``core * num_sets + set`` for a private level and plain
``set`` for a shared level — shared by the lockstep walk kernel
(:mod:`repro.arch.vector`), the scalar grouped walk
(:mod:`repro.arch.batch`) and the coherence/invalidation replay.

The scalar paths do not index the planes per event (CPython NumPy scalar
access is several times slower than a dict hit); instead each
:class:`~repro.arch.cache.Cache` holds a :class:`_SetViews` mapping of
*row working copies*: per-set ``OrderedDict`` views materialised from the
planes **lazily, on demand** — the "lazy dict export" of the per-record
oracle, snapshot APIs and post-run readers.  Every row is in exactly one of
two states:

* **plane-resident** (``store.resident[row]`` is ``True``): the planes hold
  the row's truth and the view mapping has *no* entry for it.  The walk
  kernel operates on such rows directly; a scalar touch first materialises
  the row back into an ``OrderedDict`` through :meth:`_SetViews.__missing__`.
* **view-resident**: the ``OrderedDict`` holds the truth (LRU order is dict
  insertion order).  The kernel adopts such rows into the planes
  (:meth:`LevelTagStore.adopt`) before walking them — and, crucially, never
  exports them back afterwards: rows stay plane-resident until a scalar
  path actually asks for one, which removes the per-group gather/scatter
  round trip that used to dominate the kernel's fixed overhead.

Until the kernel first runs, ``resident`` stays ``None`` and the views
behave as plain lazily-allocated dict stores with zero synchronisation
overhead — the per-record oracle path never pays for the planes at all.

LRU order maps exactly onto stamps: an ``OrderedDict``'s iteration order is
ascending recency, so adoption assigns ascending stamps and materialisation
re-inserts in ascending stamp order.  The lockstep walk kernels
(:meth:`LevelTagStore.walk` and helpers) replay the scalar per-row access
order by rank, so state evolution is bit-identical either way.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from time import perf_counter
from typing import List, Optional, Tuple

import numpy as np

#: Encoding of ``_Line.owner is None`` in the int64 owner plane.
_NO_OWNER = -2


@dataclass
class _Line:
    """State of one cached line."""

    dirty: bool = False
    owner: Optional[int] = None


class _SetViews(dict):
    """Per-cache mapping of set index -> ``OrderedDict`` row working copy.

    Present keys resolve at C dict speed (this is the scalar hot path); a
    missing key materialises the row from the owning store's planes when the
    row is plane-resident, and otherwise allocates an empty set lazily —
    large shared caches (e.g. a 16K-set L3) would otherwise pay tens of
    milliseconds of ``OrderedDict`` construction per simulated machine for
    sets the trace never reaches.

    ``resident_count`` counts this view's plane-resident rows; while it is
    zero (always, for engines that never engage the kernel) the store is
    never consulted.
    """

    __slots__ = ("store", "base", "resident_count")

    def __init__(self, store: Optional["LevelTagStore"], base: int) -> None:
        super().__init__()
        self.store = store
        self.base = base
        self.resident_count = 0

    def __missing__(self, key: int) -> OrderedDict:
        if self.resident_count:
            lines = self.store.materialise(self, key)
        else:
            lines = OrderedDict()
        self[key] = lines
        return lines

    def peek(self, key: int) -> Optional[OrderedDict]:
        """Return the row's lines without allocating cold sets.

        ``None`` means the set holds no lines (and none were materialised);
        used by probe/invalidate paths that must not bloat the mapping.
        """
        lines = dict.get(self, key)
        if lines is None and self.resident_count:
            store = self.store
            if store.resident[self.base + key]:
                lines = store.materialise(self, key)
                self[key] = lines
        return lines

    def sync(self) -> None:
        """Materialise every plane-resident row of this view."""
        if self.resident_count:
            self.store.export_view(self)


class LevelTagStore:
    """The authoritative tag state of one cache level across all cores.

    Views are attached in core order (:meth:`attach`); a shared level has a
    single view.  The NumPy planes are allocated on first kernel use
    (:meth:`ensure_planes`) and persist for the store's lifetime; the
    ``resident`` flags say, per row, whether the planes or the view's
    ``OrderedDict`` working copy hold the row's current truth.
    """

    __slots__ = (
        "num_sets",
        "assoc",
        "views",
        "tags",
        "dirty",
        "owner",
        "stamp",
        "resident",
        "counter",
        "profile",
        "export_seconds",
    )

    def __init__(self, num_sets: int, assoc: int) -> None:
        self.num_sets = num_sets
        self.assoc = assoc
        self.views: List[_SetViews] = []
        self.tags: Optional[np.ndarray] = None
        self.dirty: Optional[np.ndarray] = None
        self.owner: Optional[np.ndarray] = None
        self.stamp: Optional[np.ndarray] = None
        #: Per-row plane-residency flags; ``None`` until the kernel first
        #: adopts state (scalar-only engines never allocate the planes).
        self.resident: Optional[np.ndarray] = None
        self.counter = 1
        #: When set, lazy exports accumulate wall time in
        #: ``export_seconds`` (the engine's ``--profile`` phase breakdown).
        self.profile = False
        self.export_seconds = 0.0

    # ------------------------------------------------------------------
    @property
    def num_views(self) -> int:
        return len(self.views)

    @property
    def num_rows(self) -> int:
        return len(self.views) * self.num_sets

    def attach(self) -> _SetViews:
        """Register and return the working-copy view of the next core."""
        if self.resident is not None:
            raise RuntimeError("cannot attach views after plane allocation")
        view = _SetViews(self, len(self.views) * self.num_sets)
        self.views.append(view)
        return view

    def ensure_planes(self) -> None:
        """Allocate the NumPy planes (idempotent)."""
        if self.resident is not None:
            return
        rows = self.num_rows
        assoc = self.assoc
        self.tags = np.full((rows, assoc), -1, dtype=np.int64)
        self.dirty = np.zeros((rows, assoc), dtype=np.bool_)
        self.owner = np.full((rows, assoc), _NO_OWNER, dtype=np.int64)
        self.stamp = np.zeros((rows, assoc), dtype=np.int64)
        self.resident = np.zeros(rows, dtype=np.bool_)

    # ------------------------------------------------------------------
    def adopt(self, rows: np.ndarray) -> None:
        """Make ``rows`` plane-resident, importing view-resident state.

        Rows already plane-resident are untouched; the rest are imported
        from (and removed out of) their view's ``OrderedDict`` working
        copies with ascending stamps, so LRU order is preserved exactly.
        """
        resident = self.resident
        fresh_mask = ~resident[rows]
        if not fresh_mask.any():
            return
        fresh = np.unique(rows[fresh_mask])
        tags = self.tags
        dirty = self.dirty
        owner = self.owner
        stamp = self.stamp
        num_sets = self.num_sets
        views = self.views
        for row in fresh.tolist():
            view = views[row // num_sets]
            lines = dict.pop(view, row % num_sets, None)
            tags[row] = -1
            if lines:
                base = self.counter
                self.counter = base + len(lines)
                for way, (tag, line) in enumerate(lines.items()):
                    tags[row, way] = tag
                    dirty[row, way] = line.dirty
                    owner[row, way] = _NO_OWNER if line.owner is None else line.owner
                    stamp[row, way] = base + way
            view.resident_count += 1
        resident[fresh] = True

    def materialise(self, view: _SetViews, set_index: int) -> OrderedDict:
        """Lazy dict export of one row (or a fresh empty set when cold).

        Does **not** insert the result into ``view`` — the callers
        (:meth:`_SetViews.__missing__` / :meth:`_SetViews.peek`) do, which
        keeps the residency invariant in one place each.
        """
        row = view.base + set_index
        resident = self.resident
        if resident is None or not resident[row]:
            return OrderedDict()
        start = perf_counter() if self.profile else 0.0
        resident[row] = False
        view.resident_count -= 1
        lines: OrderedDict = OrderedDict()
        row_tags = self.tags[row]
        valid = row_tags != -1
        if valid.any():
            ways = np.nonzero(valid)[0]
            order = ways[np.argsort(self.stamp[row][ways], kind="stable")]
            owner = self.owner
            dirty = self.dirty
            for way in order.tolist():
                own = owner[row, way]
                lines[int(row_tags[way])] = _Line(
                    dirty=bool(dirty[row, way]),
                    owner=None if own == _NO_OWNER else int(own),
                )
        if self.profile:
            self.export_seconds += perf_counter() - start
        return lines

    def export_view(self, view: _SetViews) -> None:
        """Materialise every plane-resident row of one view."""
        resident = self.resident
        if resident is None:
            return
        base = view.base
        rows = np.nonzero(resident[base : base + self.num_sets])[0]
        for set_index in rows.tolist():
            lines = self.materialise(view, set_index)
            if lines:
                view[set_index] = lines

    def export_all(self) -> None:
        """Materialise every plane-resident row (post-run readers, tests)."""
        for view in self.views:
            self.export_view(view)

    def release_view(self, view: _SetViews) -> None:
        """Drop residency of one view's rows (``Cache.flush``)."""
        resident = self.resident
        if resident is None or not view.resident_count:
            return
        base = view.base
        span = slice(base, base + self.num_sets)
        self.tags[span] = -1
        resident[span] = False
        view.resident_count = 0

    # ------------------------------------------------------------------
    # Lockstep walk kernels (shared by the vector engine).
    def _step(
        self,
        rows: np.ndarray,
        tags: np.ndarray,
        writes: np.ndarray,
        cores: np.ndarray,
        stamp_value: int,
        has_writes: bool,
    ) -> Tuple[np.ndarray, Optional[np.ndarray], Optional[np.ndarray]]:
        """One lockstep step over events with pairwise-distinct rows.

        Operates in place on the state planes (distinct rows guarantee the
        scatters never collide).  ``has_writes`` is the caller's stream-wide
        write flag — when False, the per-step dirty/owner bookkeeping is
        skipped entirely.  Returns ``(hit, eviction, writeback)``; the last
        two are ``None`` when every event hit (the common steady state), so
        callers skip the eviction bookkeeping.
        """
        lane_tags = self.tags[rows]
        match = lane_tags == tags[:, None]
        hit = match.any(axis=1)
        way = match.argmax(axis=1)
        num_hits = int(hit.sum())
        if num_hits == hit.shape[0]:
            self.stamp[rows, way] = stamp_value
            if has_writes and writes.any():
                write_rows = rows[writes]
                write_ways = way[writes]
                self.dirty[write_rows, write_ways] = True
                self.owner[write_rows, write_ways] = cores[writes]
            return hit, None, None
        if num_hits:
            hit_rows = rows[hit]
            hit_ways = way[hit]
            self.stamp[hit_rows, hit_ways] = stamp_value
            if has_writes:
                hit_writes = writes[hit]
                if hit_writes.any():
                    write_rows = hit_rows[hit_writes]
                    write_ways = hit_ways[hit_writes]
                    self.dirty[write_rows, write_ways] = True
                    self.owner[write_rows, write_ways] = cores[hit][hit_writes]
        miss = ~hit
        miss_rows = rows[miss]
        empty = lane_tags[miss] == -1
        has_empty = empty.any(axis=1)
        miss_way = np.where(
            has_empty,
            empty.argmax(axis=1),
            self.stamp[miss_rows].argmin(axis=1),
        )
        evicted_miss = ~has_empty
        wb_miss = self.dirty[miss_rows, miss_way] & evicted_miss
        self.tags[miss_rows, miss_way] = tags[miss]
        self.dirty[miss_rows, miss_way] = writes[miss]
        self.owner[miss_rows, miss_way] = cores[miss]
        self.stamp[miss_rows, miss_way] = stamp_value
        evict_out = np.zeros(hit.shape[0], dtype=np.bool_)
        wb_out = np.zeros(hit.shape[0], dtype=np.bool_)
        evict_out[miss] = evicted_miss
        wb_out[miss] = wb_miss
        return hit, evict_out, wb_out

    def walk(
        self,
        rows: np.ndarray,
        tags: np.ndarray,
        writes: np.ndarray,
        cores: np.ndarray,
        ranks: Optional[np.ndarray] = None,
        serialise: bool = False,
        has_writes: bool = True,
    ) -> Tuple[np.ndarray, Optional[np.ndarray], Optional[np.ndarray]]:
        """Walk one level's event stream in lockstep on the planes.

        ``rows``/``tags``/``writes``/``cores`` describe, in execution order,
        every event that reaches this level.  Events mapping to distinct
        rows commute; events sharing a row must be serialised by rank so the
        per-row access order (and therefore LRU state) matches the scalar
        walk exactly.  At private levels the caller passes the plan's static
        per-record ranks (``ranks``; ``None`` when the whole group is known
        collision-free); at shared levels cross-member collisions are only
        discoverable dynamically, so ``serialise=True`` ranks the stream by
        row here.  Touched rows become (and stay) plane-resident; nothing is
        exported back.  Returns per-event ``(hit, eviction, writeback)``
        with the :meth:`_step` convention for ``None``.
        """
        self.adopt(rows)
        base = self.counter
        if ranks is not None:
            if int(ranks.max()):
                return self._walk_ranked(
                    rows, tags, writes, cores, ranks, base, has_writes
                )
            result = self._step(rows, tags, writes, cores, base, has_writes)
            self.counter = base + 1
            return result
        if serialise:
            count = rows.shape[0]
            order = np.argsort(rows, kind="stable")
            sorted_rows = rows[order]
            distinct = np.empty(count, dtype=np.bool_)
            distinct[0] = True
            np.not_equal(sorted_rows[1:], sorted_rows[:-1], out=distinct[1:])
            if distinct.all():
                result = self._step(rows, tags, writes, cores, base, has_writes)
                self.counter = base + 1
                return result
            positions = np.arange(count, dtype=np.int64)
            segment_start = np.maximum.accumulate(
                np.where(distinct, positions, 0)
            )
            dynamic = np.empty(count, dtype=np.int64)
            dynamic[order] = positions - segment_start
            return self._walk_ranked(
                rows, tags, writes, cores, dynamic, base, has_writes
            )
        result = self._step(rows, tags, writes, cores, base, has_writes)
        self.counter = base + 1
        return result

    def _walk_ranked(
        self,
        rows: np.ndarray,
        tags: np.ndarray,
        writes: np.ndarray,
        cores: np.ndarray,
        ranks: np.ndarray,
        base: int,
        has_writes: bool,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """One lockstep step per distinct rank value (ranks may be sparse).

        Same-row events never share a rank, so grouping the stream by rank
        value (stable, hence ascending stream position within each group)
        yields steps with pairwise-distinct rows that replay each row's
        access sequence in stream order.
        """
        count = rows.shape[0]
        order = np.argsort(ranks, kind="stable")
        sorted_ranks = ranks[order]
        cuts = np.nonzero(sorted_ranks[1:] != sorted_ranks[:-1])[0] + 1
        starts = np.concatenate(([0], cuts)).tolist()
        ends = np.concatenate((cuts, [count])).tolist()
        hit_out = np.empty(count, dtype=np.bool_)
        evict_out = np.zeros(count, dtype=np.bool_)
        wb_out = np.zeros(count, dtype=np.bool_)
        for step_index, (start, end) in enumerate(zip(starts, ends)):
            select = order[start:end]
            hit, evicted, wrote_back = self._step(
                rows[select],
                tags[select],
                writes[select],
                cores[select],
                base + step_index,
                has_writes,
            )
            hit_out[select] = hit
            if evicted is not None:
                evict_out[select] = evicted
                wb_out[select] = wrote_back
        self.counter = base + len(starts)
        return hit_out, evict_out, wb_out
