"""Detailed execution of task instances on one core.

The :class:`DetailedCoreModel` combines the ROB-occupancy timing model with a
core's cache hierarchy: it walks a task instance's execution blocks, resolves
every memory event through the caches (charging interconnect/DRAM latency and
contention on misses), applies write-invalidation for shared data and returns
the instance's execution time in cycles together with its measured IPC.

This is the "detailed simulation mode" of the TaskSim-style simulator: the
component whose cost TaskPoint amortises by sampling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.arch.hierarchy import CacheHierarchy, MemorySystem
from repro.arch.rob import RobModel
from repro.trace.records import TaskTraceRecord


@dataclass(frozen=True)
class InstanceExecution:
    """Result of executing one task instance in detailed mode."""

    cycles: float
    instructions: int
    memory_events: int
    cache_hits: int
    cache_misses: int

    @property
    def ipc(self) -> float:
        """Instructions per cycle achieved by the instance."""
        if self.cycles <= 0:
            return 0.0
        return self.instructions / self.cycles


class DetailedCoreModel:
    """Executes task instances in detail on behalf of one core.

    Parameters
    ----------
    core_id:
        Index of the core this model simulates.
    memory_system:
        The machine's shared memory system; the model uses the hierarchy
        belonging to ``core_id`` and triggers remote invalidations through the
        memory system on writes to shared data.
    rob_model:
        Analytical timing model for the core's out-of-order engine.
    """

    def __init__(
        self,
        core_id: int,
        memory_system: MemorySystem,
        rob_model: RobModel,
    ) -> None:
        self.core_id = core_id
        self.memory_system = memory_system
        self.rob_model = rob_model

    @property
    def hierarchy(self) -> CacheHierarchy:
        """Cache hierarchy of this core."""
        return self.memory_system.hierarchy(self.core_id)

    def execute(
        self,
        record: TaskTraceRecord,
        active_cores: int = 1,
        noise: Optional[float] = None,
    ) -> InstanceExecution:
        """Execute ``record`` in detailed mode and return its timing.

        Parameters
        ----------
        record:
            Trace of the task instance to execute.
        active_cores:
            Number of cores concurrently executing task instances; drives the
            contention terms of the interconnect and DRAM models.
        noise:
            Optional multiplicative factor applied to the final cycle count
            (used by the native-execution substitute to model system noise).
            ``None`` or ``1.0`` disables it.
        """
        hierarchy = self.hierarchy
        total_cycles = 0.0
        hits = 0
        misses = 0
        events = 0
        for block in record.blocks:
            latencies = []
            weights = []
            for event in block.memory_events:
                result = hierarchy.access(
                    event.address, is_write=event.is_write, active_cores=active_cores
                )
                latencies.append(result.latency)
                weights.append(event.weight)
                events += 1
                if result.hit:
                    hits += 1
                else:
                    misses += 1
                if event.is_write and event.shared:
                    self.memory_system.invalidate_remote(self.core_id, event.address)
            timing = self.rob_model.block_cycles(
                block.instructions, latencies, memory_weights=weights
            )
            total_cycles += timing.total_cycles
        if total_cycles <= 0.0:
            # Degenerate empty instance: charge one cycle so IPC stays finite.
            total_cycles = 1.0
        if noise is not None and noise != 1.0:
            total_cycles *= noise
        return InstanceExecution(
            cycles=total_cycles,
            instructions=record.instructions,
            memory_events=events,
            cache_hits=hits,
            cache_misses=misses,
        )
