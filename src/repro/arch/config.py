"""Architecture configuration objects and the Table II presets.

The paper evaluates TaskPoint on two radically different multi-core designs:
a high-performance (server-class) configuration and a low-power (mobile)
configuration.  Both are described in Table II and reproduced here as
factory functions returning fully-specified :class:`ArchitectureConfig`
objects.  All structural parameters can also be set directly to explore
other points of the design space.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional


@dataclass(frozen=True)
class CacheConfig:
    """Configuration of a single cache level.

    Attributes
    ----------
    size_bytes:
        Total capacity in bytes.
    associativity:
        Number of ways per set.
    latency_cycles:
        Access (hit) latency in core cycles.
    line_bytes:
        Cache-line size in bytes.
    shared:
        ``True`` if the cache is shared by all cores, ``False`` if private.
    """

    size_bytes: int
    associativity: int
    latency_cycles: int
    line_bytes: int = 64
    shared: bool = False

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("cache size must be positive")
        if self.associativity <= 0:
            raise ValueError("associativity must be positive")
        if self.line_bytes <= 0 or self.line_bytes & (self.line_bytes - 1):
            raise ValueError("line size must be a positive power of two")
        if self.size_bytes % (self.line_bytes * self.associativity):
            raise ValueError(
                "cache size must be a multiple of line_bytes * associativity"
            )
        if self.latency_cycles < 0:
            raise ValueError("latency must be non-negative")

    @property
    def num_sets(self) -> int:
        """Number of sets in the cache."""
        return self.size_bytes // (self.line_bytes * self.associativity)


@dataclass(frozen=True)
class CoreConfig:
    """Configuration of one processor core (ROB-occupancy model parameters)."""

    rob_size: int
    issue_width: int
    commit_width: int
    frequency_ghz: float = 2.6
    base_cpi: float = 1.0

    def __post_init__(self) -> None:
        if self.rob_size <= 0:
            raise ValueError("ROB size must be positive")
        if self.issue_width <= 0 or self.commit_width <= 0:
            raise ValueError("issue and commit width must be positive")
        if self.frequency_ghz <= 0:
            raise ValueError("frequency must be positive")
        if self.base_cpi <= 0:
            raise ValueError("base CPI must be positive")


@dataclass(frozen=True)
class MemoryConfig:
    """Main-memory and interconnect configuration."""

    dram_latency_cycles: int = 180
    dram_bandwidth_lines_per_cycle: float = 0.25
    interconnect_latency_cycles: int = 8
    interconnect_contention_per_core: float = 1.5

    def __post_init__(self) -> None:
        if self.dram_latency_cycles < 0:
            raise ValueError("DRAM latency must be non-negative")
        if self.dram_bandwidth_lines_per_cycle <= 0:
            raise ValueError("DRAM bandwidth must be positive")
        if self.interconnect_latency_cycles < 0:
            raise ValueError("interconnect latency must be non-negative")
        if self.interconnect_contention_per_core < 0:
            raise ValueError("contention factor must be non-negative")


@dataclass(frozen=True)
class ArchitectureConfig:
    """Complete description of a simulated multi-core architecture.

    The cache hierarchy is described by up to three levels.  A level marked
    ``shared=True`` is instantiated once and shared by all cores; private
    levels are instantiated per core.  ``l3`` may be ``None`` for two-level
    hierarchies such as the low-power configuration of Table II.
    """

    name: str
    core: CoreConfig
    l1: CacheConfig
    l2: CacheConfig
    l3: Optional[CacheConfig] = None
    memory: MemoryConfig = field(default_factory=MemoryConfig)

    def __post_init__(self) -> None:
        line = self.l1.line_bytes
        levels = [self.l1, self.l2] + ([self.l3] if self.l3 else [])
        if any(level.line_bytes != line for level in levels):
            raise ValueError("all cache levels must use the same line size")

    @property
    def cache_levels(self) -> int:
        """Number of cache levels (2 or 3)."""
        return 3 if self.l3 is not None else 2

    @property
    def last_level(self) -> CacheConfig:
        """Configuration of the last-level cache."""
        return self.l3 if self.l3 is not None else self.l2

    def with_core(self, **kwargs: object) -> "ArchitectureConfig":
        """Return a copy with modified core parameters."""
        return replace(self, core=replace(self.core, **kwargs))


def high_performance_config() -> ArchitectureConfig:
    """Return the high-performance (server-class) configuration of Table II.

    168-entry ROB, 4-wide issue and commit, 32 kB 8-way private L1,
    2 MB 8-way private L2 and a 20 MB 20-way shared L3.
    """
    return ArchitectureConfig(
        name="high-performance",
        core=CoreConfig(rob_size=168, issue_width=4, commit_width=4, frequency_ghz=2.6),
        l1=CacheConfig(size_bytes=32 * 1024, associativity=8, latency_cycles=4),
        l2=CacheConfig(size_bytes=2 * 1024 * 1024, associativity=8, latency_cycles=11),
        l3=CacheConfig(
            size_bytes=20 * 1024 * 1024,
            associativity=20,
            latency_cycles=28,
            shared=True,
        ),
        memory=MemoryConfig(
            dram_latency_cycles=180,
            dram_bandwidth_lines_per_cycle=0.25,
            interconnect_latency_cycles=8,
            interconnect_contention_per_core=1.2,
        ),
    )


def low_power_config() -> ArchitectureConfig:
    """Return the low-power (mobile-class) configuration of Table II.

    40-entry ROB, 3-wide issue and commit, 32 kB 2-way private L1 and a
    1 MB 16-way shared L2; no L3.  Lower DRAM bandwidth and higher contention
    reflect a mobile memory subsystem.
    """
    return ArchitectureConfig(
        name="low-power",
        core=CoreConfig(rob_size=40, issue_width=3, commit_width=3, frequency_ghz=1.6),
        l1=CacheConfig(size_bytes=32 * 1024, associativity=2, latency_cycles=4),
        l2=CacheConfig(
            size_bytes=1024 * 1024,
            associativity=16,
            latency_cycles=21,
            shared=True,
        ),
        l3=None,
        memory=MemoryConfig(
            dram_latency_cycles=220,
            dram_bandwidth_lines_per_cycle=0.10,
            interconnect_latency_cycles=12,
            interconnect_contention_per_core=2.5,
        ),
    )
