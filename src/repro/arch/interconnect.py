"""On-chip interconnect model.

Requests that miss in a private cache traverse the interconnect to the shared
last-level cache (or memory controller).  The model charges a base hop latency
plus a contention term that grows with the number of concurrently active
cores, mirroring the behaviour of a shared bus or a small crossbar under load.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import MemoryConfig


@dataclass
class InterconnectStatistics:
    """Aggregate counters of the interconnect model."""

    transfers: int = 0
    total_latency: float = 0.0

    @property
    def average_latency(self) -> float:
        """Mean latency per transfer in cycles (0 when idle)."""
        return self.total_latency / self.transfers if self.transfers else 0.0


class Interconnect:
    """Shared interconnect with linear contention in active cores."""

    def __init__(self, config: MemoryConfig) -> None:
        self.config = config
        self.stats = InterconnectStatistics()

    def transfer_latency(self, active_cores: int = 1) -> float:
        """Return the latency in cycles of one line transfer.

        The contention term is linear in the number of *other* active cores,
        scaled by ``interconnect_contention_per_core`` from the memory
        configuration.
        """
        if active_cores < 1:
            active_cores = 1
        base = float(self.config.interconnect_latency_cycles)
        contention = self.config.interconnect_contention_per_core * (active_cores - 1)
        latency = base + contention
        self.stats.transfers += 1
        self.stats.total_latency += latency
        return latency

    def reset_statistics(self) -> None:
        """Zero the statistics counters."""
        self.stats = InterconnectStatistics()
