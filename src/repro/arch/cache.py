"""Set-associative cache model with LRU replacement.

The cache model tracks tag state only (no data), which is all a performance
simulator needs.  It supports shared caches (a single instance accessed by
all cores), invalidation of lines written by other cores, and statistics
sufficient to explain detailed-mode IPC: hits, misses, evictions and
invalidations.

Tag state lives in :mod:`repro.arch.tagstore`: a cache attached to a
:class:`~repro.arch.tagstore.LevelTagStore` (every cache inside a
:class:`~repro.arch.hierarchy.MemorySystem`) reads and mutates per-set
``OrderedDict`` working copies that the store materialises lazily from its
authoritative NumPy planes whenever the vector kernel has adopted a row; a
standalone cache simply owns plain lazily-allocated dict sets.  Either way,
present sets resolve at C dict speed on the scalar hot path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.arch.config import CacheConfig
from repro.arch.tagstore import LevelTagStore, _Line, _SetViews

__all__ = ["Cache", "CacheStatistics", "_Line"]


@dataclass
class CacheStatistics:
    """Hit/miss counters of one cache instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        """Total number of accesses."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hit rate in [0, 1]; 0 if the cache was never accessed."""
        total = self.accesses
        return self.hits / total if total else 0.0

    @property
    def miss_rate(self) -> float:
        """Miss rate in [0, 1]; 0 if the cache was never accessed."""
        total = self.accesses
        return self.misses / total if total else 0.0

    def reset(self) -> None:
        """Zero all counters."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self.writebacks = 0


class Cache:
    """A set-associative cache with true-LRU replacement.

    Parameters
    ----------
    config:
        Structural configuration of the cache.
    name:
        Human-readable name used in statistics dumps (``"L1"``, ``"L2"`` ...).
    store:
        Optional level tag store this cache registers a working-copy view
        with; ``None`` (standalone caches, unit tests) keeps all state in
        the view mapping itself.
    """

    def __init__(
        self,
        config: CacheConfig,
        name: str = "cache",
        store: Optional[LevelTagStore] = None,
    ) -> None:
        self.config = config
        self.name = name
        self.stats = CacheStatistics()
        # Set index -> OrderedDict of tag -> _Line in LRU order (ascending
        # recency).  Sets are allocated lazily on first touch, or
        # materialised from the level store's planes when the vector kernel
        # holds the row.
        self._sets: _SetViews = (
            store.attach() if store is not None else _SetViews(None, 0)
        )

    # ------------------------------------------------------------------
    def _locate(self, address: int) -> tuple:
        line_number = address // self.config.line_bytes
        set_index = line_number % self.config.num_sets
        tag = line_number // self.config.num_sets
        return set_index, tag

    def line_address(self, address: int) -> int:
        """Return the address of the cache line containing ``address``."""
        return address - (address % self.config.line_bytes)

    # ------------------------------------------------------------------
    def access(self, address: int, is_write: bool = False, requester: Optional[int] = None) -> bool:
        """Access ``address``; return ``True`` on hit, ``False`` on miss.

        A miss allocates the line (possibly evicting the LRU line of the set).
        ``requester`` identifies the core performing the access; for shared
        caches it is recorded as the line owner so later invalidation
        decisions can distinguish local from remote writers.
        """
        set_index, tag = self._locate(address)
        lines = self._sets[set_index]
        if tag in lines:
            self.stats.hits += 1
            line = lines.pop(tag)
            if is_write:
                line.dirty = True
                line.owner = requester
            lines[tag] = line
            return True
        self.stats.misses += 1
        self._allocate(set_index, tag, is_write, requester)
        return False

    def probe(self, address: int) -> bool:
        """Return ``True`` if ``address`` is present, without changing state."""
        set_index, tag = self._locate(address)
        lines = self._sets.peek(set_index)
        return lines is not None and tag in lines

    def _allocate(self, set_index: int, tag: int, is_write: bool, requester: Optional[int]) -> None:
        lines = self._sets[set_index]
        if len(lines) >= self.config.associativity:
            _, victim = lines.popitem(last=False)
            self.stats.evictions += 1
            if victim.dirty:
                self.stats.writebacks += 1
        lines[tag] = _Line(dirty=is_write, owner=requester)

    def invalidate(self, address: int) -> bool:
        """Invalidate the line containing ``address`` if present.

        Returns ``True`` if a line was invalidated.  Used to model remote
        writes to shared data invalidating copies in other cores' private
        caches.
        """
        set_index, tag = self._locate(address)
        lines = self._sets.peek(set_index)
        if lines is not None and tag in lines:
            line = lines.pop(tag)
            self.stats.invalidations += 1
            if line.dirty:
                self.stats.writebacks += 1
            return True
        return False

    # ------------------------------------------------------------------
    def occupancy(self) -> float:
        """Fraction of lines currently valid, in [0, 1]."""
        self._sets.sync()
        used = sum(len(lines) for lines in self._sets.values())
        capacity = self.config.num_sets * self.config.associativity
        return used / capacity if capacity else 0.0

    def flush(self) -> None:
        """Invalidate the entire cache contents (statistics are preserved)."""
        store = self._sets.store
        if store is not None:
            store.release_view(self._sets)
        self._sets.clear()

    def reset_statistics(self) -> None:
        """Zero the statistics counters, keeping cache contents."""
        self.stats.reset()

    def snapshot(self) -> Dict[str, float]:
        """Return a summary dictionary for reporting."""
        return {
            "name": self.name,
            "hits": self.stats.hits,
            "misses": self.stats.misses,
            "hit_rate": self.stats.hit_rate,
            "evictions": self.stats.evictions,
            "invalidations": self.stats.invalidations,
            "occupancy": self.occupancy(),
        }
