"""Analytical reorder-buffer occupancy model (Lee et al. style).

TaskSim's detailed CPU mode is based on the reorder-buffer occupancy analysis
of Lee, Evans and Cho (ISPASS 2009): instead of simulating every pipeline
stage, the model estimates how long the ROB can hide the latency of
long-latency loads and charges stall cycles only for the exposed remainder.

This module provides the same style of model: given a block of instructions
and the resolved latencies of its memory accesses, it returns the number of
cycles the block takes on a core with a given ROB size and issue width,
accounting for memory-level parallelism between accesses within the same
block.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.arch.config import CoreConfig


@dataclass(frozen=True)
class BlockTiming:
    """Cycle breakdown of one execution block."""

    dispatch_cycles: float
    stall_cycles: float

    @property
    def total_cycles(self) -> float:
        """Total cycles of the block."""
        return self.dispatch_cycles + self.stall_cycles


class RobModel:
    """Reorder-buffer occupancy model for a single out-of-order core.

    Parameters
    ----------
    core:
        Core configuration (ROB size, issue width, base CPI).
    l1_latency:
        Latency below which an access is considered fully hidden by the
        out-of-order engine (typically the L1 hit latency).
    """

    def __init__(self, core: CoreConfig, l1_latency: float = 4.0) -> None:
        self.core = core
        self.l1_latency = l1_latency

    # ------------------------------------------------------------------
    def dispatch_cycles(self, instructions: int) -> float:
        """Cycles to dispatch ``instructions`` at the core's issue width."""
        if instructions <= 0:
            return 0.0
        return instructions * self.core.base_cpi / self.core.issue_width

    def hide_capacity(self) -> float:
        """Cycles of memory latency the ROB can hide behind one access.

        While a long-latency load blocks retirement, the core keeps
        dispatching until the ROB fills; the time to fill the remaining ROB
        entries is latency that the miss does not expose as a stall.
        """
        return self.core.rob_size / self.core.issue_width

    def block_cycles(
        self,
        instructions: int,
        memory_latencies: Sequence[float],
        memory_weights: Sequence[int] | None = None,
    ) -> BlockTiming:
        """Estimate the cycles of a block with the given memory latencies.

        Parameters
        ----------
        instructions:
            Number of instructions dispatched by the block.
        memory_latencies:
            Resolved latency (in cycles) of each distinct memory event of the
            block.
        memory_weights:
            Number of real accesses represented by each event; subsequent
            accesses represented by the same event are assumed to hit in the
            L1 (they touch the same or adjacent lines) and therefore add
            dispatch pressure but no extra stalls.

        Notes
        -----
        Stall estimation follows the ROB-occupancy argument: an access with
        latency ``L`` exposes ``max(0, L - hide_capacity)`` stall cycles.
        Independent misses within one block overlap; the model divides the
        exposed latency by an effective memory-level-parallelism factor that
        grows with the number of simultaneously outstanding long-latency
        accesses but is capped by the ROB size.
        """
        if memory_weights is not None and len(memory_weights) != len(memory_latencies):
            raise ValueError("memory_weights must match memory_latencies in length")
        dispatch = self.dispatch_cycles(instructions)
        hide = self.hide_capacity()
        long_latencies = [lat for lat in memory_latencies if lat > self.l1_latency]
        if not long_latencies:
            return BlockTiming(dispatch_cycles=dispatch, stall_cycles=0.0)

        exposed = [max(0.0, lat - hide) for lat in long_latencies]
        total_exposed = sum(exposed)
        if total_exposed <= 0.0:
            return BlockTiming(dispatch_cycles=dispatch, stall_cycles=0.0)

        # Effective MLP: the ROB can keep a limited number of long-latency
        # accesses in flight simultaneously.  Only accesses that actually
        # expose latency beyond the ROB's hiding capacity contribute to (and
        # benefit from) the overlap.
        exposing = sum(1 for value in exposed if value > 0.0)
        max_outstanding = max(1.0, self.core.rob_size / 32.0)
        mlp = min(float(max(1, exposing)), max_outstanding)
        # Overlap spreads the exposed latency across the in-flight misses,
        # but can never hide more than the single longest exposed latency.
        stall = max(total_exposed / mlp, max(exposed))

        # Short accesses (weights > 1 collapsing into the same event) add a
        # small serialisation cost proportional to the total access count.
        if memory_weights is not None:
            repeated = sum(max(0, weight - 1) for weight in memory_weights)
            stall += repeated * (self.l1_latency / self.core.issue_width) * 0.1
        return BlockTiming(dispatch_cycles=dispatch, stall_cycles=stall)
