"""Batched detailed-mode execution over a columnar trace.

:class:`BatchedCoreExecutor` is the hot-path replacement for calling
:meth:`repro.arch.core.DetailedCoreModel.execute` once per task instance.  It
exploits the columnar trace backbone (:mod:`repro.trace.columns`) to split the
detailed cost model into

* a **static part**, precomputed vectorised over the whole trace at
  construction time: per-block dispatch cycles
  (``instructions * base_cpi / issue_width``), the repeated-access
  serialisation term of the ROB model, and the cache-geometry decomposition
  (per level: set index and tag) of every memory event's address, and
* a **dynamic part**, evaluated at dispatch: the sequential cache-state walk
  (hits, misses, LRU updates, coherence invalidations), the active-core
  contention terms of the interconnect and DRAM models — both constant within
  one task instance, so they are computed once per call instead of once per
  event — and the optional noise factor.

The executor operates **in place** on the same :class:`~repro.arch.cache.Cache`
objects as the per-record model: their per-set ``OrderedDict`` working copies
(lazy views of the authoritative :class:`~repro.arch.tagstore.LevelTagStore`
planes — a set the vector kernel holds plane-side is materialised on first
scalar touch through the view's ``__missing__``) and their statistics
counters.  Every floating-point operation replays the exact order of the
per-record implementation, so detailed-mode cycle counts, IPCs and cache/DRAM
statistics are bit-identical between the paths — this is asserted by the
equivalence tests — while the batched path avoids the per-event method
dispatch, dataclass allocation and latency-list construction that dominated
the original profile.

For the two concrete hierarchy shapes the Table II architectures produce
(two private levels over one shared, and one private level over one shared),
:meth:`BatchedCoreExecutor.execute_many` dispatches to a specialised walk
with the outer-level loop unrolled, the flat counter-block writes replaced by
local integer counters, and the per-level exposure constants hoisted into
locals — worth ~6-12% of group-walk wall time on eviction-heavy traces.  The
generic walk remains for any other geometry and stays the reference.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from repro.arch.cache import _Line
from repro.arch.config import ArchitectureConfig
from repro.arch.hierarchy import MemorySystem
from repro.arch.rob import RobModel
from repro.trace.columns import TraceColumns


class ExecutionPlan(NamedTuple):
    """Static per-trace precomputation of the detailed cost model.

    One plan is built per (trace columns, model geometry) pair and memoised
    in ``columns.plan_cache``, so re-simulating the same trace with a
    different thread count or controller reuses it.  The geometry columns are
    kept both as NumPy arrays (shared with the vectorised walk engine in
    :mod:`repro.arch.vector`, which gathers from them directly) and as plain
    Python lists (bound by the scalar hot loop of
    :meth:`BatchedCoreExecutor.execute`, where list indexing beats NumPy
    scalar indexing).
    """

    #: Per-block dispatch cycles, ``instructions * base_cpi / issue_width``.
    block_dispatch: np.ndarray
    #: Per-block repeated-access serialisation term of the ROB model.
    block_repeat: np.ndarray
    #: Per cache level, the set index of every event (NumPy int64).
    level_set: Tuple[np.ndarray, ...]
    #: Per cache level, the tag of every event (NumPy int64).
    level_tag: Tuple[np.ndarray, ...]
    #: Block id of every event and the event's rank within its block.
    event_block: np.ndarray
    event_rank: np.ndarray
    #: Per-record number of events and whether the record writes shared data.
    record_events: np.ndarray
    has_shared_write: np.ndarray
    #: Sound per-record lower bound on detailed cycles (pre-noise): the
    #: contention-free dispatch time with a relative safety margin for
    #: summation-order differences.  Used by the engine's deferred-dispatch
    #: path to order completions without evaluating the cache walk.
    cycles_floor: np.ndarray
    #: Per cache level, the rank of every event among the *same-record*
    #: events that map to the same set at that level (0 for the first).  At
    #: private levels two group members never share a tag-store row, so this
    #: static rank is exactly the serialisation order the vector kernel
    #: needs; ``level_max_rank`` holds the per-record maximum per level so an
    #: all-distinct group (the common case) is detected without touching the
    #: arrays.
    level_rank: Tuple[np.ndarray, ...]
    level_max_rank: Tuple[list, ...]
    #: Exact contention-free detailed cycle count per record: the sequential
    #: left fold of ``block_dispatch`` over the record's blocks, bit-equal to
    #: the scalar loop when no event exposes stall latency.
    static_cycles: list
    # ------------------------------------------------------------------
    # Python-list mirrors for the scalar hot loop.
    block_dispatch_list: list
    block_repeat_list: list
    level_set_list: tuple
    level_tag_list: tuple
    event_write: list
    event_shared: list
    block_offsets: list
    event_offsets: list
    instructions: list
    detail_events: list
    has_shared_write_list: list
    cycles_floor_list: list
    #: Per record, a tuple of ``(l1_events, dispatch, repeat)`` triples — one
    #: per block — where ``l1_events`` is the block's pre-zipped L1 walk
    #: stream of ``(l1_set, l1_tag, is_write, coherent_write, event_id)``
    #: tuples.  The scalar group executor iterates this structure with one
    #: tuple unpack per block and one per event, replacing the
    #: ``block_offsets``/``block_dispatch``/``block_repeat`` index lookups
    #: and the three parallel event-column lookups of the naive loop.  The
    #: ``coherent_write`` flag pre-evaluates ``is_write and shared`` so the
    #: hot loop's coherence gate is a single truth test.
    record_blocks: list


def _plan_key(columns: TraceColumns, caches: list, core, rob_model: RobModel) -> tuple:
    return (
        "batched-executor",
        caches[0].config.line_bytes,
        tuple(c.config.num_sets for c in caches),
        core.base_cpi,
        core.issue_width,
        rob_model.l1_latency,
    )


def build_execution_plan(
    columns: TraceColumns, caches: list, core, rob_model: RobModel
) -> ExecutionPlan:
    """Build (or fetch from ``columns.plan_cache``) the execution plan."""
    plan_key = _plan_key(columns, caches, core, rob_model)
    plan = columns.plan_cache.get(plan_key)
    if plan is not None:
        return plan

    # Contention-free base cycles: per-block dispatch time at the core's
    # issue width.  int64 -> float64 conversion and the multiply/divide
    # reproduce `instructions * base_cpi / issue_width` bit-exactly.
    block_dispatch = (
        columns.block_instructions.astype(np.float64)
        * core.base_cpi
        / core.issue_width
    )

    # Repeated-access serialisation term of RobModel.block_cycles: the
    # per-block sum of (weight - 1) scaled by a constant.
    repeats = np.maximum(columns.event_weight - 1, 0)
    cumulative = np.concatenate(([0], np.cumsum(repeats, dtype=np.int64)))
    offsets = columns.event_offsets
    repeats_per_block = cumulative[offsets[1:]] - cumulative[offsets[:-1]]
    block_repeat = (
        repeats_per_block.astype(np.float64)
        * (rob_model.l1_latency / core.issue_width)
        * 0.1
    )

    # Cache geometry: per level, the set index and tag of every event.
    line_numbers = columns.event_address // caches[0].config.line_bytes
    level_set = []
    level_tag = []
    for cache in caches:
        num_sets = cache.config.num_sets
        level_set.append(line_numbers % num_sets)
        level_tag.append(line_numbers // num_sets)

    # Event topology: the block of every event and its rank within it.
    events_per_block = offsets[1:] - offsets[:-1]
    event_block = np.repeat(
        np.arange(columns.num_blocks, dtype=np.int64), events_per_block
    )
    event_rank = (
        np.arange(columns.num_events, dtype=np.int64) - offsets[event_block]
        if columns.num_events
        else np.zeros(0, dtype=np.int64)
    )

    record_offsets = columns.record_event_offsets
    record_events = record_offsets[1:] - record_offsets[:-1]
    shared_write = columns.event_is_write & columns.event_shared
    sw_cum = np.concatenate(([0], np.cumsum(shared_write, dtype=np.int64)))
    has_shared_write = (sw_cum[record_offsets[1:]] - sw_cum[record_offsets[:-1]]) > 0

    # Per-level, per-record set-collision ranks (see ExecutionPlan docstring).
    num_records = record_events.shape[0]
    record_of_event = np.repeat(
        np.arange(num_records, dtype=np.int64), record_events
    )
    num_events = columns.num_events
    level_rank = []
    level_max_rank = []
    event_positions = np.arange(num_events, dtype=np.int64)
    for sets_at_level, cache in zip(level_set, caches):
        key = record_of_event * np.int64(cache.config.num_sets) + sets_at_level
        order = np.argsort(key, kind="stable")
        sorted_key = key[order]
        if num_events:
            new_segment = np.concatenate(
                ([True], sorted_key[1:] != sorted_key[:-1])
            )
        else:
            new_segment = np.zeros(0, dtype=np.bool_)
        segment_start = np.maximum.accumulate(
            np.where(new_segment, event_positions, 0)
        )
        rank = np.empty(num_events, dtype=np.int64)
        rank[order] = event_positions - segment_start
        max_rank = np.zeros(num_records, dtype=np.int64)
        np.maximum.at(max_rank, record_of_event, rank)
        level_rank.append(rank)
        level_max_rank.append(max_rank.tolist())

    # Lower bound on the detailed cycle count: the dispatch contribution of
    # every block (stalls are non-negative).  The segment sums here use a
    # different float summation order than the scalar loop, so shave a
    # relative margin far above the worst-case summation error.
    bd_cum = np.concatenate(([0.0], np.cumsum(block_dispatch, dtype=np.float64)))
    block_offsets = columns.block_offsets
    cycles_floor = np.maximum(
        bd_cum[block_offsets[1:]] - bd_cum[block_offsets[:-1]], 0.0
    ) * (1.0 - 1e-9)

    # Exact stall-free cycle counts: the same left fold the scalar loop
    # performs when every block's exposed sum is zero.  Computed once in
    # Python because `a + b + c` and the cumsum segment difference above are
    # not bit-equal in general.
    bd_list = block_dispatch.tolist()
    bo_list = block_offsets.tolist()
    static_cycles = []
    for record in range(num_records):
        total = 0.0
        for block in range(bo_list[record], bo_list[record + 1]):
            total += bd_list[block]
        static_cycles.append(total)

    # Pre-zipped per-block L1 walk streams and the per-record block
    # structure for the scalar group executor.
    l1_set_list = level_set[0].tolist()
    l1_tag_list = level_tag[0].tolist()
    ev_write_list = columns.event_is_write.tolist()
    coh_list = shared_write.tolist()
    eo_list = offsets.tolist()
    event_ids = range(columns.num_events)
    l1_block_events = [
        tuple(
            zip(
                l1_set_list[start:end],
                l1_tag_list[start:end],
                ev_write_list[start:end],
                coh_list[start:end],
                event_ids[start:end],
            )
        )
        for start, end in zip(eo_list[:-1], eo_list[1:])
    ]
    br_list = block_repeat.tolist()
    record_blocks = [
        tuple(
            (l1_block_events[block], bd_list[block], br_list[block])
            for block in range(bo_list[record], bo_list[record + 1])
        )
        for record in range(num_records)
    ]

    plan = ExecutionPlan(
        block_dispatch=block_dispatch,
        block_repeat=block_repeat,
        level_set=tuple(level_set),
        level_tag=tuple(level_tag),
        event_block=event_block,
        event_rank=event_rank,
        record_events=record_events,
        has_shared_write=has_shared_write,
        cycles_floor=cycles_floor,
        level_rank=tuple(level_rank),
        level_max_rank=tuple(level_max_rank),
        static_cycles=static_cycles,
        block_dispatch_list=bd_list,
        block_repeat_list=br_list,
        level_set_list=tuple(
            [l1_set_list] + [s.tolist() for s in level_set[1:]]
        ),
        level_tag_list=tuple(
            [l1_tag_list] + [t.tolist() for t in level_tag[1:]]
        ),
        event_write=ev_write_list,
        event_shared=columns.event_shared.tolist(),
        block_offsets=bo_list,
        event_offsets=eo_list,
        instructions=columns.instructions.tolist(),
        detail_events=columns.detail_events_per_record().tolist(),
        has_shared_write_list=has_shared_write.tolist(),
        cycles_floor_list=cycles_floor.tolist(),
        record_blocks=record_blocks,
    )
    columns.plan_cache[plan_key] = plan
    return plan


class BatchedCoreExecutor:
    """Executes task instances of one columnar trace in detailed mode.

    Parameters
    ----------
    columns:
        Columnar trace data; instances are addressed by record index.
    architecture:
        Architecture configuration (cache geometry, core parameters).
    memory_system:
        The machine's shared memory state.  The executor reads and mutates
        the same cache tag stores and statistics as the per-record model.
    rob_model:
        The ROB-occupancy timing model shared with the per-record path (its
        parameters seed the precomputed static terms).
    """

    def __init__(
        self,
        columns: TraceColumns,
        architecture: ArchitectureConfig,
        memory_system: MemorySystem,
        rob_model: RobModel,
    ) -> None:
        self.columns = columns
        self.architecture = architecture
        self.memory_system = memory_system
        self.rob_model = rob_model

        core = architecture.core
        self._hide = rob_model.hide_capacity()
        self._l1_threshold = rob_model.l1_latency
        self._max_outstanding = max(1.0, core.rob_size / 32.0)

        # ------------------------------------------------------------------
        # Static precomputation, vectorised over the whole trace — memoised
        # on the columns (keyed by model geometry) so that re-simulating one
        # trace with different thread counts or controllers pays it once.
        # ------------------------------------------------------------------
        hierarchy = memory_system.hierarchy(0)
        caches = hierarchy.caches
        self._num_private = len(hierarchy.private_caches)
        self._have_shared = bool(hierarchy.shared_caches)
        self._num_levels = len(caches)
        self._level_latency: List[int] = [c.config.latency_cycles for c in caches]
        self._level_assoc: List[int] = [c.config.associativity for c in caches]

        plan = build_execution_plan(columns, caches, core, rob_model)
        self.plan = plan
        self._block_dispatch = plan.block_dispatch_list
        self._block_repeat_term = plan.block_repeat_list
        self._ev_set = plan.level_set_list
        self._ev_tag = plan.level_tag_list
        self._ev_write = plan.event_write
        self._ev_shared = plan.event_shared
        #: Whether any event in the trace touches shared data at all; when
        #: not, the hot loop skips the per-write coherence check entirely.
        self._any_shared = bool(columns.event_shared.any())
        self._block_offsets = plan.block_offsets
        self._event_offsets = plan.event_offsets
        self._record_blocks = plan.record_blocks
        #: Persistent flat per-(core, level) counter block for
        #: :meth:`execute_many`: ``[core * stride + level * 4 + k]`` with
        #: ``k`` in (hits, misses, evictions, writebacks).  Zeroed slot-wise
        #: during each group's writeback, so no per-group allocation.
        self._group_acc = [0] * (memory_system.num_cores * self._num_levels * 4)
        self._instructions = plan.instructions
        self._detail_events = plan.detail_events
        #: Contention tables memoised per active-core count (see
        #: :meth:`contention_tables`); shared with the vector engine.
        self._tables: Dict[int, tuple] = {}

        # Per-core view of the tag stores: [core][level] -> (sets, stats),
        # plus the flattened hot-loop bindings (sets, associativity, per-event
        # set index, per-event tag) hoisted out of the per-call path.
        self._core_levels: List[List[Tuple[list, object]]] = []
        self._core_level_data: List[List[tuple]] = []
        for core_id in range(memory_system.num_cores):
            view = memory_system.hierarchy(core_id)
            caches_for_core = view.private_caches + view.shared_caches
            self._core_levels.append([(c._sets, c.stats) for c in caches_for_core])
            self._core_level_data.append(
                [
                    (
                        caches_for_core[k]._sets,
                        self._level_assoc[k],
                        self._ev_set[k],
                        self._ev_tag[k],
                    )
                    for k in range(self._num_levels)
                ]
            )
        # Invalidation targets of a shared-data write by core c: the private
        # levels of every *other* core, flattened for the coherence loop.
        self._invalidate_targets: List[List[tuple]] = []
        for core_id in range(memory_system.num_cores):
            targets = []
            for other_id in range(memory_system.num_cores):
                if other_id == core_id:
                    continue
                view = memory_system.hierarchy(other_id)
                for level, cache in enumerate(view.private_caches):
                    targets.append(
                        (cache._sets, cache.stats, self._ev_set[level], self._ev_tag[level])
                    )
            self._invalidate_targets.append(targets)

        # Specialised grouped walks for the two concrete hierarchy shapes
        # (see module docstring); the generic loop covers everything else.
        if self._have_shared and self._num_private == 2 and self._num_levels == 3:
            self.execute_many = self._execute_many_p2s1
        elif self._have_shared and self._num_private == 1 and self._num_levels == 2:
            self.execute_many = self._execute_many_p1s1

    # ------------------------------------------------------------------
    def detail_events(self, index: int) -> int:
        """Number of memory events the detailed model resolves for ``index``."""
        return self._detail_events[index]

    def contention_tables(self, active_cores: int) -> tuple:
        """Latency and exposure tables for one active-core count.

        Returns ``(ic_latency, dram_latency, hit_latency, exposure)`` exactly
        as the per-record model computes them; the dynamic contention terms
        are constant for the duration of one task instance, and within one
        simulation they recur for the same ``active_cores`` value, so the
        tables are memoised per count.  The float operation order below
        replays :meth:`CacheHierarchy.access` bit-exactly.
        """
        tables = self._tables.get(active_cores)
        if tables is not None:
            return tables
        interconnect = self.memory_system.interconnect
        dram = self.memory_system.dram

        ic_config = interconnect.config
        ic_latency = float(ic_config.interconnect_latency_cycles) + (
            ic_config.interconnect_contention_per_core * (active_cores - 1)
        )
        dram_config = dram.config
        dram_base = float(dram_config.dram_latency_cycles)
        demand = 0.02 * active_cores
        utilisation = min(0.95, demand / dram_config.dram_bandwidth_lines_per_cycle)
        dram_latency = dram_base + dram_base * (
            utilisation / (2.0 * (1.0 - utilisation))
        )

        # Walk-latency table: the accumulated latency charged when an access
        # hits at level k, replaying the addition order of
        # CacheHierarchy.access (interconnect crossing after the last private
        # level), plus the full-miss latency.
        num_private = self._num_private
        have_shared = self._have_shared
        walk = 0.0
        hit_latency: List[float] = []
        for level, latency_cycles in enumerate(self._level_latency):
            walk += latency_cycles
            hit_latency.append(walk)
            if level == num_private - 1 and have_shared:
                walk += ic_latency
        if not have_shared:
            walk += ic_latency
        miss_latency = walk + dram_latency

        # Exposure table: the stall latency an access exposes beyond the
        # ROB's hiding capacity is a per-(hit level | miss) constant within
        # one call.  ``None`` marks outcomes that contribute nothing to the
        # block's stall estimate — a latency at or below the L1 threshold, or
        # one fully hidden by the ROB (its ``max(0, lat - hide)`` term is
        # exactly 0.0, and adding 0.0 to a non-negative sum is a bitwise
        # no-op) — so the hot loop skips their bookkeeping entirely.
        hide = self._hide
        l1_threshold = self._l1_threshold
        exposure: List[Optional[float]] = []
        for latency in hit_latency:
            if latency > l1_threshold and latency - hide > 0.0:
                exposure.append(latency - hide)
            else:
                exposure.append(None)
        exposure.append(
            miss_latency - hide
            if miss_latency > l1_threshold and miss_latency - hide > 0.0
            else None
        )
        tables = (ic_latency, dram_latency, hit_latency, exposure)
        self._tables[active_cores] = tables
        return tables

    def execute(
        self,
        index: int,
        core_id: int,
        active_cores: int = 1,
        noise: Optional[float] = None,
    ) -> Tuple[float, float]:
        """Execute record ``index`` on ``core_id``; return ``(cycles, ipc)``.

        Semantics (including every floating-point operation order) match
        ``DetailedCoreModel.execute`` on the equivalent record view.
        """
        if active_cores < 1:
            active_cores = 1
        memory = self.memory_system
        interconnect = memory.interconnect
        dram = memory.dram

        ic_latency, dram_latency, _, exposure = self.contention_tables(active_cores)
        num_private = self._num_private
        miss_level = self._num_levels

        # Local bindings for the hot loop.
        levels = self._core_levels[core_id]
        level_data = self._core_level_data[core_id]
        l1_sets, l1_assoc, l1_set_index, l1_tag_index = level_data[0]
        outer_levels = level_data[1:]
        ev_write = self._ev_write
        ev_shared = self._ev_shared
        any_shared = self._any_shared
        event_offsets = self._event_offsets
        block_dispatch = self._block_dispatch
        block_repeat = self._block_repeat_term
        l1_exposure = exposure[0]
        max_outstanding = self._max_outstanding

        hits = [0] * self._num_levels
        misses = [0] * self._num_levels
        evictions = [0] * self._num_levels
        writebacks = [0] * self._num_levels
        ic_transfers = 0
        ic_total = interconnect.stats.total_latency
        dram_requests = 0
        dram_total = dram.stats.total_latency

        total_cycles = 0.0
        block_start = self._block_offsets[index]
        block_end = self._block_offsets[index + 1]
        for block in range(block_start, block_end):
            exposed_sum = 0.0
            exposed_max = 0.0
            exposed_count = 0
            for event in range(event_offsets[block], event_offsets[block + 1]):
                is_write = ev_write[event]
                # L1 fast path: with the engine's threshold (== L1 latency)
                # an L1 hit never exposes stall cycles, so only the LRU
                # update and optional coherence action run.
                lines = l1_sets[l1_set_index[event]]
                tag = l1_tag_index[event]
                if tag in lines:
                    hits[0] += 1
                    if is_write:
                        line = lines[tag]
                        line.dirty = True
                        line.owner = core_id
                        lines.move_to_end(tag)
                        if any_shared and ev_shared[event]:
                            self._invalidate_remote(core_id, event)
                    else:
                        lines.move_to_end(tag)
                    if l1_exposure is not None:
                        exposed_count += 1
                        if l1_exposure > exposed_max:
                            exposed_max = l1_exposure
                        exposed_sum += l1_exposure
                    continue
                misses[0] += 1
                if len(lines) >= l1_assoc:
                    _, victim = lines.popitem(last=False)
                    evictions[0] += 1
                    if victim.dirty:
                        writebacks[0] += 1
                    victim.dirty = is_write
                    victim.owner = core_id
                    lines[tag] = victim
                else:
                    lines[tag] = _Line(dirty=is_write, owner=core_id)
                level = 1
                for sets, associativity, set_index, tag_index in outer_levels:
                    lines = sets[set_index[event]]
                    tag = tag_index[event]
                    if tag in lines:
                        hits[level] += 1
                        if is_write:
                            line = lines[tag]
                            line.dirty = True
                            line.owner = core_id
                        lines.move_to_end(tag)
                        if level >= num_private:
                            # Hit in a shared level: the access still crossed
                            # the interconnect out of the private levels.
                            ic_transfers += 1
                            ic_total += ic_latency
                        break
                    misses[level] += 1
                    if len(lines) >= associativity:
                        _, victim = lines.popitem(last=False)
                        evictions[level] += 1
                        if victim.dirty:
                            writebacks[level] += 1
                        victim.dirty = is_write
                        victim.owner = core_id
                        lines[tag] = victim
                    else:
                        lines[tag] = _Line(dirty=is_write, owner=core_id)
                    level += 1
                else:
                    level = miss_level
                    dram_requests += 1
                    dram_total += dram_latency
                    ic_transfers += 1
                    ic_total += ic_latency
                if any_shared and is_write and ev_shared[event]:
                    self._invalidate_remote(core_id, event)
                exposed = exposure[level]
                if exposed is not None:
                    exposed_count += 1
                    if exposed > exposed_max:
                        exposed_max = exposed
                    exposed_sum += exposed
            if exposed_sum <= 0.0:
                total_cycles += block_dispatch[block]
                continue
            mlp = float(exposed_count) if exposed_count > 1 else 1.0
            if mlp > max_outstanding:
                mlp = max_outstanding
            stall = exposed_sum / mlp
            if exposed_max > stall:
                stall = exposed_max
            stall += block_repeat[block]
            total_cycles += block_dispatch[block] + stall

        # Write the batched statistics back to the shared model state.
        for level in range(self._num_levels):
            stats = levels[level][1]
            stats.hits += hits[level]
            stats.misses += misses[level]
            stats.evictions += evictions[level]
            stats.writebacks += writebacks[level]
        if ic_transfers:
            interconnect.stats.transfers += ic_transfers
            interconnect.stats.total_latency = ic_total
        if dram_requests:
            dram.stats.requests += dram_requests
            dram.stats.total_latency = dram_total

        if total_cycles <= 0.0:
            # Degenerate empty instance: charge one cycle so IPC stays finite.
            total_cycles = 1.0
        if noise is not None and noise != 1.0:
            total_cycles *= noise
        if total_cycles <= 0.0:
            # Only reachable with a non-positive noise factor; mirror
            # InstanceExecution.ipc's guard.
            return total_cycles, 0.0
        return total_cycles, self._instructions[index] / total_cycles

    # ------------------------------------------------------------------
    def execute_many(self, entries: Sequence[tuple]) -> List[Tuple[float, float]]:
        """Execute ``(index, core_id, active_cores, noise)`` entries in order.

        Semantically exactly ``[self.execute(*entry) for entry in entries]``
        (same walk, same float operation order, same statistics), but with
        the per-call setup hoisted out of the loop: contention tables are
        re-resolved only when the active-core count changes (within one
        dispatch instant it never does), the interconnect/DRAM latency folds
        carry across entries, all hit/miss counters accumulate into the
        persistent flat per-(core, level) block (L1 via per-entry locals)
        and are written back once per group (integer sums, so the aggregate
        is identical), and the walk iterates the pre-zipped
        ``record_blocks`` structure — per-block ``(l1_events, dispatch,
        repeat)`` triples with the coherence flag folded into each L1 event
        tuple — instead of indexing parallel lists per block and per event.
        The grouped-dispatch engine flushes whole deferred groups through
        this entry point when the vector kernel is not engaged.
        """
        memory = self.memory_system
        interconnect = memory.interconnect
        dram = memory.dram
        num_private = self._num_private
        num_levels = self._num_levels
        miss_level = num_levels
        record_blocks = self._record_blocks
        max_outstanding = self._max_outstanding
        instructions = self._instructions
        core_level_data = self._core_level_data
        core_levels = self._core_levels
        contention_tables = self.contention_tables
        invalidate_remote = self._invalidate_remote
        acc = self._group_acc
        stride = num_levels * 4

        ic_transfers = 0
        ic_total = interconnect.stats.total_latency
        dram_requests = 0
        dram_total = dram.stats.total_latency
        touched: set = set()
        touched_add = touched.add

        tables_for = -1
        ic_latency = dram_latency = 0.0
        exposure: List[Optional[float]] = []
        l1_exposure: Optional[float] = None
        results: List[Tuple[float, float]] = []
        for index, core_id, active_cores, noise in entries:
            if active_cores < 1:
                active_cores = 1
            if active_cores != tables_for:
                ic_latency, dram_latency, _, exposure = contention_tables(
                    active_cores
                )
                l1_exposure = exposure[0]
                tables_for = active_cores

            level_data = core_level_data[core_id]
            l1_sets, l1_assoc, _l1_set_index, _l1_tag_index = level_data[0]
            outer_levels = level_data[1:]
            base = core_id * stride
            touched_add(core_id)

            l1_hits = l1_misses = l1_evictions = l1_writebacks = 0
            total_cycles = 0.0
            for l1_events, dispatch, repeat in record_blocks[index]:
                exposed_sum = 0.0
                exposed_max = 0.0
                exposed_count = 0
                for l1_set, tag, is_write, coherent, event in l1_events:
                    lines = l1_sets[l1_set]
                    if tag in lines:
                        l1_hits += 1
                        if is_write:
                            line = lines[tag]
                            line.dirty = True
                            line.owner = core_id
                            lines.move_to_end(tag)
                            if coherent:
                                invalidate_remote(core_id, event)
                        else:
                            lines.move_to_end(tag)
                        if l1_exposure is not None:
                            exposed_count += 1
                            if l1_exposure > exposed_max:
                                exposed_max = l1_exposure
                            exposed_sum += l1_exposure
                        continue
                    l1_misses += 1
                    if len(lines) >= l1_assoc:
                        _, victim = lines.popitem(last=False)
                        l1_evictions += 1
                        if victim.dirty:
                            l1_writebacks += 1
                        victim.dirty = is_write
                        victim.owner = core_id
                        lines[tag] = victim
                    else:
                        lines[tag] = _Line(dirty=is_write, owner=core_id)
                    level = 1
                    off = base + 4
                    for sets, associativity, set_index, tag_index in outer_levels:
                        lines = sets[set_index[event]]
                        tag = tag_index[event]
                        if tag in lines:
                            acc[off] += 1
                            if is_write:
                                line = lines[tag]
                                line.dirty = True
                                line.owner = core_id
                            lines.move_to_end(tag)
                            if level >= num_private:
                                ic_transfers += 1
                                ic_total += ic_latency
                            break
                        acc[off + 1] += 1
                        if len(lines) >= associativity:
                            _, victim = lines.popitem(last=False)
                            acc[off + 2] += 1
                            if victim.dirty:
                                acc[off + 3] += 1
                            victim.dirty = is_write
                            victim.owner = core_id
                            lines[tag] = victim
                        else:
                            lines[tag] = _Line(dirty=is_write, owner=core_id)
                        level += 1
                        off += 4
                    else:
                        level = miss_level
                        dram_requests += 1
                        dram_total += dram_latency
                        ic_transfers += 1
                        ic_total += ic_latency
                    if coherent:
                        invalidate_remote(core_id, event)
                    exposed = exposure[level]
                    if exposed is not None:
                        exposed_count += 1
                        if exposed > exposed_max:
                            exposed_max = exposed
                        exposed_sum += exposed
                if exposed_sum <= 0.0:
                    total_cycles += dispatch
                    continue
                mlp = float(exposed_count) if exposed_count > 1 else 1.0
                if mlp > max_outstanding:
                    mlp = max_outstanding
                stall = exposed_sum / mlp
                if exposed_max > stall:
                    stall = exposed_max
                stall += repeat
                total_cycles += dispatch + stall

            if l1_hits or l1_misses:
                acc[base] += l1_hits
                acc[base + 1] += l1_misses
                acc[base + 2] += l1_evictions
                acc[base + 3] += l1_writebacks
            if total_cycles <= 0.0:
                total_cycles = 1.0
            if noise is not None and noise != 1.0:
                total_cycles *= noise
            if total_cycles <= 0.0:
                results.append((total_cycles, 0.0))
                continue
            results.append((total_cycles, instructions[index] / total_cycles))

        if ic_transfers:
            interconnect.stats.transfers += ic_transfers
            interconnect.stats.total_latency = ic_total
        if dram_requests:
            dram.stats.requests += dram_requests
            dram.stats.total_latency = dram_total
        # Per-group statistics writeback; the counter slots are re-zeroed as
        # they drain so the flat block is clean for the next group.
        num_shared = num_levels - num_private
        shared_totals = [0] * (4 * num_shared)
        for core_id in touched:
            levels = core_levels[core_id]
            cbase = core_id * stride
            for level in range(num_private):
                off = cbase + level * 4
                level_hits = acc[off]
                level_misses = acc[off + 1]
                if level_hits or level_misses:
                    stats = levels[level][1]
                    stats.hits += level_hits
                    stats.misses += level_misses
                    stats.evictions += acc[off + 2]
                    stats.writebacks += acc[off + 3]
                    acc[off] = 0
                    acc[off + 1] = 0
                    acc[off + 2] = 0
                    acc[off + 3] = 0
            sbase = cbase + num_private * 4
            for k in range(4 * num_shared):
                shared_totals[k] += acc[sbase + k]
                acc[sbase + k] = 0
        if num_shared and touched:
            shared_levels = core_levels[next(iter(touched))]
            for level in range(num_private, num_levels):
                k = (level - num_private) * 4
                stats = shared_levels[level][1]
                stats.hits += shared_totals[k]
                stats.misses += shared_totals[k + 1]
                stats.evictions += shared_totals[k + 2]
                stats.writebacks += shared_totals[k + 3]
        return results

    # ------------------------------------------------------------------
    def _execute_many_p2s1(self, entries: Sequence[tuple]) -> List[Tuple[float, float]]:
        """:meth:`execute_many` specialised for two private levels over one
        shared level (the high-performance shape: L1/L2 private, L3 shared).

        Same walk, same float operation order, same aggregate statistics —
        the outer-level loop is unrolled into explicit L2/L3 blocks, the
        hit/miss bookkeeping runs on local integer counters folded back once
        per core at the end (integer sums commute), and the per-level
        exposure constants are bound to locals.
        """
        memory = self.memory_system
        interconnect = memory.interconnect
        dram = memory.dram
        record_blocks = self._record_blocks
        max_outstanding = self._max_outstanding
        instructions = self._instructions
        core_level_data = self._core_level_data
        core_levels = self._core_levels
        contention_tables = self.contention_tables
        invalidate_remote = self._invalidate_remote

        ic_transfers = 0
        ic_total = interconnect.stats.total_latency
        dram_requests = 0
        dram_total = dram.stats.total_latency

        tables_for = -1
        ic_latency = dram_latency = 0.0
        l1_exposure = l2_exposure = l3_exposure = miss_exposure = None
        l3_hits = l3_misses = l3_evictions = l3_writebacks = 0
        percore: Dict[int, list] = {}
        results: List[Tuple[float, float]] = []
        for index, core_id, active_cores, noise in entries:
            if active_cores < 1:
                active_cores = 1
            if active_cores != tables_for:
                ic_latency, dram_latency, _, exposure = contention_tables(
                    active_cores
                )
                l1_exposure, l2_exposure, l3_exposure, miss_exposure = exposure
                tables_for = active_cores

            level_data = core_level_data[core_id]
            l1_sets, l1_assoc = level_data[0][0], level_data[0][1]
            l2_sets, l2_assoc, l2_set_index, l2_tag_index = level_data[1]
            l3_sets, l3_assoc, l3_set_index, l3_tag_index = level_data[2]
            cacc = percore.get(core_id)
            if cacc is None:
                cacc = percore[core_id] = [0] * 8

            l1_hits = l1_misses = l1_evictions = l1_writebacks = 0
            l2_hits = l2_misses = l2_evictions = l2_writebacks = 0
            total_cycles = 0.0
            for l1_events, dispatch, repeat in record_blocks[index]:
                exposed_sum = 0.0
                exposed_max = 0.0
                exposed_count = 0
                for l1_set, tag, is_write, coherent, event in l1_events:
                    lines = l1_sets[l1_set]
                    if tag in lines:
                        l1_hits += 1
                        if is_write:
                            line = lines[tag]
                            line.dirty = True
                            line.owner = core_id
                            lines.move_to_end(tag)
                            if coherent:
                                invalidate_remote(core_id, event)
                        else:
                            lines.move_to_end(tag)
                        if l1_exposure is not None:
                            exposed_count += 1
                            if l1_exposure > exposed_max:
                                exposed_max = l1_exposure
                            exposed_sum += l1_exposure
                        continue
                    l1_misses += 1
                    if len(lines) >= l1_assoc:
                        _, victim = lines.popitem(last=False)
                        l1_evictions += 1
                        if victim.dirty:
                            l1_writebacks += 1
                        victim.dirty = is_write
                        victim.owner = core_id
                        lines[tag] = victim
                    else:
                        lines[tag] = _Line(dirty=is_write, owner=core_id)
                    # L2 (private).
                    lines = l2_sets[l2_set_index[event]]
                    tag = l2_tag_index[event]
                    if tag in lines:
                        l2_hits += 1
                        if is_write:
                            line = lines[tag]
                            line.dirty = True
                            line.owner = core_id
                        lines.move_to_end(tag)
                        exposed = l2_exposure
                    else:
                        l2_misses += 1
                        if len(lines) >= l2_assoc:
                            _, victim = lines.popitem(last=False)
                            l2_evictions += 1
                            if victim.dirty:
                                l2_writebacks += 1
                            victim.dirty = is_write
                            victim.owner = core_id
                            lines[tag] = victim
                        else:
                            lines[tag] = _Line(dirty=is_write, owner=core_id)
                        # L3 (shared): the access crossed the interconnect.
                        lines = l3_sets[l3_set_index[event]]
                        tag = l3_tag_index[event]
                        if tag in lines:
                            l3_hits += 1
                            if is_write:
                                line = lines[tag]
                                line.dirty = True
                                line.owner = core_id
                            lines.move_to_end(tag)
                            ic_transfers += 1
                            ic_total += ic_latency
                            exposed = l3_exposure
                        else:
                            l3_misses += 1
                            if len(lines) >= l3_assoc:
                                _, victim = lines.popitem(last=False)
                                l3_evictions += 1
                                if victim.dirty:
                                    l3_writebacks += 1
                                victim.dirty = is_write
                                victim.owner = core_id
                                lines[tag] = victim
                            else:
                                lines[tag] = _Line(dirty=is_write, owner=core_id)
                            dram_requests += 1
                            dram_total += dram_latency
                            ic_transfers += 1
                            ic_total += ic_latency
                            exposed = miss_exposure
                    if coherent:
                        invalidate_remote(core_id, event)
                    if exposed is not None:
                        exposed_count += 1
                        if exposed > exposed_max:
                            exposed_max = exposed
                        exposed_sum += exposed
                if exposed_sum <= 0.0:
                    total_cycles += dispatch
                    continue
                mlp = float(exposed_count) if exposed_count > 1 else 1.0
                if mlp > max_outstanding:
                    mlp = max_outstanding
                stall = exposed_sum / mlp
                if exposed_max > stall:
                    stall = exposed_max
                stall += repeat
                total_cycles += dispatch + stall

            cacc[0] += l1_hits
            cacc[1] += l1_misses
            cacc[2] += l1_evictions
            cacc[3] += l1_writebacks
            cacc[4] += l2_hits
            cacc[5] += l2_misses
            cacc[6] += l2_evictions
            cacc[7] += l2_writebacks
            if total_cycles <= 0.0:
                total_cycles = 1.0
            if noise is not None and noise != 1.0:
                total_cycles *= noise
            if total_cycles <= 0.0:
                results.append((total_cycles, 0.0))
                continue
            results.append((total_cycles, instructions[index] / total_cycles))

        if ic_transfers:
            interconnect.stats.transfers += ic_transfers
            interconnect.stats.total_latency = ic_total
        if dram_requests:
            dram.stats.requests += dram_requests
            dram.stats.total_latency = dram_total
        for core_id, cacc in percore.items():
            levels = core_levels[core_id]
            stats = levels[0][1]
            stats.hits += cacc[0]
            stats.misses += cacc[1]
            stats.evictions += cacc[2]
            stats.writebacks += cacc[3]
            stats = levels[1][1]
            stats.hits += cacc[4]
            stats.misses += cacc[5]
            stats.evictions += cacc[6]
            stats.writebacks += cacc[7]
        if percore and (l3_hits or l3_misses):
            stats = core_levels[next(iter(percore))][2][1]
            stats.hits += l3_hits
            stats.misses += l3_misses
            stats.evictions += l3_evictions
            stats.writebacks += l3_writebacks
        return results

    # ------------------------------------------------------------------
    def _execute_many_p1s1(self, entries: Sequence[tuple]) -> List[Tuple[float, float]]:
        """:meth:`execute_many` specialised for one private level over one
        shared level (the low-power shape: L1 private, L2 shared).
        """
        memory = self.memory_system
        interconnect = memory.interconnect
        dram = memory.dram
        record_blocks = self._record_blocks
        max_outstanding = self._max_outstanding
        instructions = self._instructions
        core_level_data = self._core_level_data
        core_levels = self._core_levels
        contention_tables = self.contention_tables
        invalidate_remote = self._invalidate_remote

        ic_transfers = 0
        ic_total = interconnect.stats.total_latency
        dram_requests = 0
        dram_total = dram.stats.total_latency

        tables_for = -1
        ic_latency = dram_latency = 0.0
        l1_exposure = l2_exposure = miss_exposure = None
        l2_hits = l2_misses = l2_evictions = l2_writebacks = 0
        percore: Dict[int, list] = {}
        results: List[Tuple[float, float]] = []
        for index, core_id, active_cores, noise in entries:
            if active_cores < 1:
                active_cores = 1
            if active_cores != tables_for:
                ic_latency, dram_latency, _, exposure = contention_tables(
                    active_cores
                )
                l1_exposure, l2_exposure, miss_exposure = exposure
                tables_for = active_cores

            level_data = core_level_data[core_id]
            l1_sets, l1_assoc = level_data[0][0], level_data[0][1]
            l2_sets, l2_assoc, l2_set_index, l2_tag_index = level_data[1]
            cacc = percore.get(core_id)
            if cacc is None:
                cacc = percore[core_id] = [0] * 4

            l1_hits = l1_misses = l1_evictions = l1_writebacks = 0
            total_cycles = 0.0
            for l1_events, dispatch, repeat in record_blocks[index]:
                exposed_sum = 0.0
                exposed_max = 0.0
                exposed_count = 0
                for l1_set, tag, is_write, coherent, event in l1_events:
                    lines = l1_sets[l1_set]
                    if tag in lines:
                        l1_hits += 1
                        if is_write:
                            line = lines[tag]
                            line.dirty = True
                            line.owner = core_id
                            lines.move_to_end(tag)
                            if coherent:
                                invalidate_remote(core_id, event)
                        else:
                            lines.move_to_end(tag)
                        if l1_exposure is not None:
                            exposed_count += 1
                            if l1_exposure > exposed_max:
                                exposed_max = l1_exposure
                            exposed_sum += l1_exposure
                        continue
                    l1_misses += 1
                    if len(lines) >= l1_assoc:
                        _, victim = lines.popitem(last=False)
                        l1_evictions += 1
                        if victim.dirty:
                            l1_writebacks += 1
                        victim.dirty = is_write
                        victim.owner = core_id
                        lines[tag] = victim
                    else:
                        lines[tag] = _Line(dirty=is_write, owner=core_id)
                    # L2 (shared): the access crossed the interconnect.
                    lines = l2_sets[l2_set_index[event]]
                    tag = l2_tag_index[event]
                    if tag in lines:
                        l2_hits += 1
                        if is_write:
                            line = lines[tag]
                            line.dirty = True
                            line.owner = core_id
                        lines.move_to_end(tag)
                        ic_transfers += 1
                        ic_total += ic_latency
                        exposed = l2_exposure
                    else:
                        l2_misses += 1
                        if len(lines) >= l2_assoc:
                            _, victim = lines.popitem(last=False)
                            l2_evictions += 1
                            if victim.dirty:
                                l2_writebacks += 1
                            victim.dirty = is_write
                            victim.owner = core_id
                            lines[tag] = victim
                        else:
                            lines[tag] = _Line(dirty=is_write, owner=core_id)
                        dram_requests += 1
                        dram_total += dram_latency
                        ic_transfers += 1
                        ic_total += ic_latency
                        exposed = miss_exposure
                    if coherent:
                        invalidate_remote(core_id, event)
                    if exposed is not None:
                        exposed_count += 1
                        if exposed > exposed_max:
                            exposed_max = exposed
                        exposed_sum += exposed
                if exposed_sum <= 0.0:
                    total_cycles += dispatch
                    continue
                mlp = float(exposed_count) if exposed_count > 1 else 1.0
                if mlp > max_outstanding:
                    mlp = max_outstanding
                stall = exposed_sum / mlp
                if exposed_max > stall:
                    stall = exposed_max
                stall += repeat
                total_cycles += dispatch + stall

            cacc[0] += l1_hits
            cacc[1] += l1_misses
            cacc[2] += l1_evictions
            cacc[3] += l1_writebacks
            if total_cycles <= 0.0:
                total_cycles = 1.0
            if noise is not None and noise != 1.0:
                total_cycles *= noise
            if total_cycles <= 0.0:
                results.append((total_cycles, 0.0))
                continue
            results.append((total_cycles, instructions[index] / total_cycles))

        if ic_transfers:
            interconnect.stats.transfers += ic_transfers
            interconnect.stats.total_latency = ic_total
        if dram_requests:
            dram.stats.requests += dram_requests
            dram.stats.total_latency = dram_total
        for core_id, cacc in percore.items():
            levels = core_levels[core_id]
            stats = levels[0][1]
            stats.hits += cacc[0]
            stats.misses += cacc[1]
            stats.evictions += cacc[2]
            stats.writebacks += cacc[3]
        if percore and (l2_hits or l2_misses):
            stats = core_levels[next(iter(percore))][1][1]
            stats.hits += l2_hits
            stats.misses += l2_misses
            stats.evictions += l2_evictions
            stats.writebacks += l2_writebacks
        return results

    # ------------------------------------------------------------------
    def _invalidate_remote(self, writer_core: int, event: int) -> None:
        """Write-invalidate coherence for a shared-data write."""
        for sets, stats, set_index, tag_index in self._invalidate_targets[writer_core]:
            lines = sets.get(set_index[event])
            if lines is None:
                # The set has no working copy; the line can still live in
                # the level store's planes if the kernel adopted the row.
                if not sets.resident_count:
                    continue
                lines = sets.peek(set_index[event])
                if lines is None:
                    continue
            line = lines.pop(tag_index[event], None)
            if line is not None:
                stats.invalidations += 1
                if line.dirty:
                    stats.writebacks += 1
