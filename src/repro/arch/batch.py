"""Batched detailed-mode execution over a columnar trace.

:class:`BatchedCoreExecutor` is the hot-path replacement for calling
:meth:`repro.arch.core.DetailedCoreModel.execute` once per task instance.  It
exploits the columnar trace backbone (:mod:`repro.trace.columns`) to split the
detailed cost model into

* a **static part**, precomputed vectorised over the whole trace at
  construction time: per-block dispatch cycles
  (``instructions * base_cpi / issue_width``), the repeated-access
  serialisation term of the ROB model, and the cache-geometry decomposition
  (per level: set index and tag) of every memory event's address, and
* a **dynamic part**, evaluated at dispatch: the sequential cache-state walk
  (hits, misses, LRU updates, coherence invalidations), the active-core
  contention terms of the interconnect and DRAM models — both constant within
  one task instance, so they are computed once per call instead of once per
  event — and the optional noise factor.

The executor operates **in place** on the same :class:`~repro.arch.cache.Cache`
objects as the per-record model (their ``_sets`` tag stores and statistics
counters), and every floating-point operation replays the exact order of the
per-record implementation.  Detailed-mode cycle counts, IPCs and cache/DRAM
statistics are therefore bit-identical between the two paths — this is
asserted by the equivalence tests — while the batched path avoids the
per-event method dispatch, dataclass allocation and latency-list construction
that dominated the original profile.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.arch.cache import _Line
from repro.arch.config import ArchitectureConfig
from repro.arch.hierarchy import MemorySystem
from repro.arch.rob import RobModel
from repro.trace.columns import TraceColumns


class BatchedCoreExecutor:
    """Executes task instances of one columnar trace in detailed mode.

    Parameters
    ----------
    columns:
        Columnar trace data; instances are addressed by record index.
    architecture:
        Architecture configuration (cache geometry, core parameters).
    memory_system:
        The machine's shared memory state.  The executor reads and mutates
        the same cache tag stores and statistics as the per-record model.
    rob_model:
        The ROB-occupancy timing model shared with the per-record path (its
        parameters seed the precomputed static terms).
    """

    def __init__(
        self,
        columns: TraceColumns,
        architecture: ArchitectureConfig,
        memory_system: MemorySystem,
        rob_model: RobModel,
    ) -> None:
        self.columns = columns
        self.architecture = architecture
        self.memory_system = memory_system
        self.rob_model = rob_model

        core = architecture.core
        self._hide = rob_model.hide_capacity()
        self._l1_threshold = rob_model.l1_latency
        self._max_outstanding = max(1.0, core.rob_size / 32.0)

        # ------------------------------------------------------------------
        # Static precomputation, vectorised over the whole trace — memoised
        # on the columns (keyed by model geometry) so that re-simulating one
        # trace with different thread counts or controllers pays it once.
        # ------------------------------------------------------------------
        hierarchy = memory_system.hierarchy(0)
        caches = hierarchy.caches
        self._num_private = len(hierarchy.private_caches)
        self._have_shared = bool(hierarchy.shared_caches)
        self._num_levels = len(caches)
        self._level_latency: List[int] = [c.config.latency_cycles for c in caches]
        self._level_assoc: List[int] = [c.config.associativity for c in caches]

        plan_key = (
            "batched-executor",
            caches[0].config.line_bytes,
            tuple(c.config.num_sets for c in caches),
            core.base_cpi,
            core.issue_width,
            rob_model.l1_latency,
        )
        plan = columns.plan_cache.get(plan_key)
        if plan is None:
            # Contention-free base cycles: per-block dispatch time at the
            # core's issue width.  int64 -> float64 conversion and the
            # multiply/divide reproduce `instructions * base_cpi /
            # issue_width` bit-exactly.
            block_dispatch = (
                columns.block_instructions.astype(np.float64)
                * core.base_cpi
                / core.issue_width
            ).tolist()

            # Repeated-access serialisation term of RobModel.block_cycles:
            # the per-block sum of (weight - 1) scaled by a constant.
            repeats = np.maximum(columns.event_weight - 1, 0)
            cumulative = np.concatenate(([0], np.cumsum(repeats, dtype=np.int64)))
            offsets = columns.event_offsets
            repeats_per_block = cumulative[offsets[1:]] - cumulative[offsets[:-1]]
            block_repeat = (
                repeats_per_block.astype(np.float64)
                * (rob_model.l1_latency / core.issue_width)
                * 0.1
            ).tolist()

            # Cache geometry: per level, the set index and tag of every event.
            line_numbers = columns.event_address // caches[0].config.line_bytes
            ev_set = []
            ev_tag = []
            for cache in caches:
                num_sets = cache.config.num_sets
                ev_set.append((line_numbers % num_sets).tolist())
                ev_tag.append((line_numbers // num_sets).tolist())

            plan = (
                block_dispatch,
                block_repeat,
                ev_set,
                ev_tag,
                columns.event_is_write.tolist(),
                columns.event_shared.tolist(),
                columns.block_offsets.tolist(),
                columns.event_offsets.tolist(),
                columns.instructions.tolist(),
                columns.detail_events_per_record().tolist(),
            )
            columns.plan_cache[plan_key] = plan
        (
            self._block_dispatch,
            self._block_repeat_term,
            self._ev_set,
            self._ev_tag,
            self._ev_write,
            self._ev_shared,
            self._block_offsets,
            self._event_offsets,
            self._instructions,
            self._detail_events,
        ) = plan

        # Per-core view of the tag stores: [core][level] -> (sets, stats),
        # plus the flattened hot-loop bindings (sets, associativity, per-event
        # set index, per-event tag) hoisted out of the per-call path.
        self._core_levels: List[List[Tuple[list, object]]] = []
        self._core_level_data: List[List[tuple]] = []
        for core_id in range(memory_system.num_cores):
            view = memory_system.hierarchy(core_id)
            caches_for_core = view.private_caches + view.shared_caches
            self._core_levels.append([(c._sets, c.stats) for c in caches_for_core])
            self._core_level_data.append(
                [
                    (
                        caches_for_core[k]._sets,
                        self._level_assoc[k],
                        self._ev_set[k],
                        self._ev_tag[k],
                    )
                    for k in range(self._num_levels)
                ]
            )
        # Invalidation targets of a shared-data write by core c: the private
        # levels of every *other* core, flattened for the coherence loop.
        self._invalidate_targets: List[List[tuple]] = []
        for core_id in range(memory_system.num_cores):
            targets = []
            for other_id in range(memory_system.num_cores):
                if other_id == core_id:
                    continue
                view = memory_system.hierarchy(other_id)
                for level, cache in enumerate(view.private_caches):
                    targets.append(
                        (cache._sets, cache.stats, self._ev_set[level], self._ev_tag[level])
                    )
            self._invalidate_targets.append(targets)

    # ------------------------------------------------------------------
    def detail_events(self, index: int) -> int:
        """Number of memory events the detailed model resolves for ``index``."""
        return self._detail_events[index]

    def execute(
        self,
        index: int,
        core_id: int,
        active_cores: int = 1,
        noise: Optional[float] = None,
    ) -> Tuple[float, float]:
        """Execute record ``index`` on ``core_id``; return ``(cycles, ipc)``.

        Semantics (including every floating-point operation order) match
        ``DetailedCoreModel.execute`` on the equivalent record view.
        """
        if active_cores < 1:
            active_cores = 1
        memory = self.memory_system
        interconnect = memory.interconnect
        dram = memory.dram

        # Dynamic contention terms: constant for the duration of one task
        # instance (active_cores does not change mid-instance), so the
        # per-event model calls collapse to two closed-form latencies.
        ic_config = interconnect.config
        ic_latency = float(ic_config.interconnect_latency_cycles) + (
            ic_config.interconnect_contention_per_core * (active_cores - 1)
        )
        dram_config = dram.config
        dram_base = float(dram_config.dram_latency_cycles)
        demand = 0.02 * active_cores
        utilisation = min(0.95, demand / dram_config.dram_bandwidth_lines_per_cycle)
        dram_latency = dram_base + dram_base * (
            utilisation / (2.0 * (1.0 - utilisation))
        )

        # Walk-latency table: the accumulated latency charged when an access
        # hits at level k, replaying the addition order of
        # CacheHierarchy.access (interconnect crossing after the last private
        # level), plus the full-miss latency.
        num_private = self._num_private
        have_shared = self._have_shared
        walk = 0.0
        hit_latency: List[float] = []
        for level, latency_cycles in enumerate(self._level_latency):
            walk += latency_cycles
            hit_latency.append(walk)
            if level == num_private - 1 and have_shared:
                walk += ic_latency
        if not have_shared:
            walk += ic_latency
        miss_latency = walk + dram_latency

        # Exposure table: the stall latency an access exposes beyond the
        # ROB's hiding capacity is a per-(hit level | miss) constant within
        # one call.  ``None`` marks outcomes that contribute nothing to the
        # block's stall estimate — a latency at or below the L1 threshold, or
        # one fully hidden by the ROB (its ``max(0, lat - hide)`` term is
        # exactly 0.0, and adding 0.0 to a non-negative sum is a bitwise
        # no-op) — so the hot loop skips their bookkeeping entirely.
        hide = self._hide
        l1_threshold = self._l1_threshold
        exposure: List[Optional[float]] = []
        for latency in hit_latency:
            if latency > l1_threshold and latency - hide > 0.0:
                exposure.append(latency - hide)
            else:
                exposure.append(None)
        exposure.append(
            miss_latency - hide
            if miss_latency > l1_threshold and miss_latency - hide > 0.0
            else None
        )
        miss_level = self._num_levels

        # Local bindings for the hot loop.
        levels = self._core_levels[core_id]
        level_data = self._core_level_data[core_id]
        l1_sets, l1_assoc, l1_set_index, l1_tag_index = level_data[0]
        outer_levels = level_data[1:]
        ev_write = self._ev_write
        ev_shared = self._ev_shared
        event_offsets = self._event_offsets
        block_dispatch = self._block_dispatch
        block_repeat = self._block_repeat_term
        l1_exposure = exposure[0]
        max_outstanding = self._max_outstanding

        hits = [0] * self._num_levels
        misses = [0] * self._num_levels
        evictions = [0] * self._num_levels
        writebacks = [0] * self._num_levels
        ic_transfers = 0
        ic_total = interconnect.stats.total_latency
        dram_requests = 0
        dram_total = dram.stats.total_latency

        total_cycles = 0.0
        block_start = self._block_offsets[index]
        block_end = self._block_offsets[index + 1]
        for block in range(block_start, block_end):
            exposed_sum = 0.0
            exposed_max = 0.0
            exposed_count = 0
            for event in range(event_offsets[block], event_offsets[block + 1]):
                is_write = ev_write[event]
                # L1 fast path: with the engine's threshold (== L1 latency)
                # an L1 hit never exposes stall cycles, so only the LRU
                # update and optional coherence action run.
                lines = l1_sets[l1_set_index[event]]
                tag = l1_tag_index[event]
                if tag in lines:
                    hits[0] += 1
                    if is_write:
                        line = lines[tag]
                        line.dirty = True
                        line.owner = core_id
                        lines.move_to_end(tag)
                        if ev_shared[event]:
                            self._invalidate_remote(core_id, event)
                    else:
                        lines.move_to_end(tag)
                    if l1_exposure is not None:
                        exposed_count += 1
                        if l1_exposure > exposed_max:
                            exposed_max = l1_exposure
                        exposed_sum += l1_exposure
                    continue
                misses[0] += 1
                if len(lines) >= l1_assoc:
                    _, victim = lines.popitem(last=False)
                    evictions[0] += 1
                    if victim.dirty:
                        writebacks[0] += 1
                    victim.dirty = is_write
                    victim.owner = core_id
                    lines[tag] = victim
                else:
                    lines[tag] = _Line(dirty=is_write, owner=core_id)
                level = 1
                for sets, associativity, set_index, tag_index in outer_levels:
                    lines = sets[set_index[event]]
                    tag = tag_index[event]
                    if tag in lines:
                        hits[level] += 1
                        line = lines.pop(tag)
                        if is_write:
                            line.dirty = True
                            line.owner = core_id
                        lines[tag] = line
                        if level >= num_private:
                            # Hit in a shared level: the access still crossed
                            # the interconnect out of the private levels.
                            ic_transfers += 1
                            ic_total += ic_latency
                        break
                    misses[level] += 1
                    if len(lines) >= associativity:
                        _, victim = lines.popitem(last=False)
                        evictions[level] += 1
                        if victim.dirty:
                            writebacks[level] += 1
                        victim.dirty = is_write
                        victim.owner = core_id
                        lines[tag] = victim
                    else:
                        lines[tag] = _Line(dirty=is_write, owner=core_id)
                    level += 1
                else:
                    level = miss_level
                    dram_requests += 1
                    dram_total += dram_latency
                    ic_transfers += 1
                    ic_total += ic_latency
                if is_write and ev_shared[event]:
                    self._invalidate_remote(core_id, event)
                exposed = exposure[level]
                if exposed is not None:
                    exposed_count += 1
                    if exposed > exposed_max:
                        exposed_max = exposed
                    exposed_sum += exposed
            if exposed_sum <= 0.0:
                total_cycles += block_dispatch[block]
                continue
            mlp = float(exposed_count) if exposed_count > 1 else 1.0
            if mlp > max_outstanding:
                mlp = max_outstanding
            stall = exposed_sum / mlp
            if exposed_max > stall:
                stall = exposed_max
            stall += block_repeat[block]
            total_cycles += block_dispatch[block] + stall

        # Write the batched statistics back to the shared model state.
        for level in range(self._num_levels):
            stats = levels[level][1]
            stats.hits += hits[level]
            stats.misses += misses[level]
            stats.evictions += evictions[level]
            stats.writebacks += writebacks[level]
        if ic_transfers:
            interconnect.stats.transfers += ic_transfers
            interconnect.stats.total_latency = ic_total
        if dram_requests:
            dram.stats.requests += dram_requests
            dram.stats.total_latency = dram_total

        if total_cycles <= 0.0:
            # Degenerate empty instance: charge one cycle so IPC stays finite.
            total_cycles = 1.0
        if noise is not None and noise != 1.0:
            total_cycles *= noise
        if total_cycles <= 0.0:
            # Only reachable with a non-positive noise factor; mirror
            # InstanceExecution.ipc's guard.
            return total_cycles, 0.0
        return total_cycles, self._instructions[index] / total_cycles

    # ------------------------------------------------------------------
    def _invalidate_remote(self, writer_core: int, event: int) -> None:
        """Write-invalidate coherence for a shared-data write."""
        for sets, stats, set_index, tag_index in self._invalidate_targets[writer_core]:
            lines = sets[set_index[event]]
            line = lines.pop(tag_index[event], None)
            if line is not None:
                stats.invalidations += 1
                if line.dirty:
                    stats.writebacks += 1
