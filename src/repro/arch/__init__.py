"""Architecture models: cores, caches, interconnect and DRAM.

This package provides the micro-architectural substrate of the TaskSim-style
simulator: a set-associative cache model, per-core cache hierarchies with
shared last-level caches, a bandwidth-limited DRAM model, a contended
interconnect and an analytical ROB-occupancy core model in the spirit of
Lee et al. (ISPASS 2009), which is the detailed CPU model TaskSim uses.

The two architecture configurations evaluated in the paper (Table II) are
available as :func:`repro.arch.config.high_performance_config` and
:func:`repro.arch.config.low_power_config`.
"""

from repro.arch.config import (
    ArchitectureConfig,
    CacheConfig,
    CoreConfig,
    MemoryConfig,
    high_performance_config,
    low_power_config,
)
from repro.arch.cache import Cache, CacheStatistics
from repro.arch.hierarchy import CacheHierarchy, MemorySystem
from repro.arch.dram import DramModel
from repro.arch.interconnect import Interconnect
from repro.arch.rob import RobModel
from repro.arch.core import DetailedCoreModel, InstanceExecution
from repro.arch.batch import BatchedCoreExecutor

__all__ = [
    "BatchedCoreExecutor",
    "ArchitectureConfig",
    "CacheConfig",
    "CoreConfig",
    "MemoryConfig",
    "high_performance_config",
    "low_power_config",
    "Cache",
    "CacheStatistics",
    "CacheHierarchy",
    "MemorySystem",
    "DramModel",
    "Interconnect",
    "RobModel",
    "DetailedCoreModel",
    "InstanceExecution",
]
