"""Per-core cache hierarchies and the shared memory system.

The :class:`MemorySystem` owns all components shared between cores (shared
caches, interconnect, DRAM) and hands out one :class:`CacheHierarchy` per
core.  A hierarchy resolves a memory access level by level, accumulating
latency, and models invalidation of privately cached shared data when a
remote core writes it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.arch.cache import Cache
from repro.arch.config import ArchitectureConfig, CacheConfig
from repro.arch.dram import DramModel
from repro.arch.interconnect import Interconnect
from repro.arch.tagstore import LevelTagStore


@dataclass(frozen=True)
class AccessResult:
    """Outcome of resolving one memory access through the hierarchy."""

    latency: float
    level: str          # "L1", "L2", "L3" or "DRAM"
    hit: bool           # True if served by any cache level


class CacheHierarchy:
    """The view of the memory system from a single core.

    A hierarchy chains the core's private caches with the shared levels owned
    by the :class:`MemorySystem`.  All latencies are returned in core cycles.
    """

    def __init__(
        self,
        core_id: int,
        private_caches: List[Cache],
        shared_caches: List[Cache],
        interconnect: Interconnect,
        dram: DramModel,
    ) -> None:
        self.core_id = core_id
        self.private_caches = private_caches
        self.shared_caches = shared_caches
        self.interconnect = interconnect
        self.dram = dram

    @property
    def caches(self) -> List[Cache]:
        """All cache levels visible to this core, from L1 outwards."""
        return self.private_caches + self.shared_caches

    def access(self, address: int, is_write: bool, active_cores: int = 1) -> AccessResult:
        """Resolve one access and return its latency and the serving level.

        The access walks the levels in order; the first hit ends the walk and
        its level's latency (plus the latencies of the levels already missed)
        is charged.  A full miss additionally pays the interconnect and DRAM
        latencies, both of which depend on the number of active cores.
        """
        latency = 0.0
        for index, cache in enumerate(self.caches):
            latency += cache.config.latency_cycles
            if cache.access(address, is_write=is_write, requester=self.core_id):
                return AccessResult(latency=latency, level=cache.name, hit=True)
            if index == len(self.private_caches) - 1 and self.shared_caches:
                # Crossing from private to shared levels traverses the
                # interconnect even when the shared cache then hits.
                latency += self.interconnect.transfer_latency(active_cores)
        if not self.shared_caches:
            latency += self.interconnect.transfer_latency(active_cores)
        latency += self.dram.access_latency(active_cores)
        return AccessResult(latency=latency, level="DRAM", hit=False)

    def invalidate(self, address: int) -> None:
        """Invalidate ``address`` from this core's private caches."""
        for cache in self.private_caches:
            cache.invalidate(address)

    def flush_private(self) -> None:
        """Drop all private cache contents (e.g. at simulation reset)."""
        for cache in self.private_caches:
            cache.flush()

    def occupancy(self) -> float:
        """Mean occupancy across the private levels, in [0, 1]."""
        if not self.private_caches:
            return 0.0
        return sum(cache.occupancy() for cache in self.private_caches) / len(
            self.private_caches
        )


class MemorySystem:
    """All memory-side state of a simulated machine.

    Instantiating a memory system builds the shared caches, the interconnect
    and the DRAM model once, and a private-cache stack per core according to
    the architecture configuration.
    """

    def __init__(self, config: ArchitectureConfig, num_cores: int) -> None:
        if num_cores < 1:
            raise ValueError("num_cores must be >= 1")
        self.config = config
        self.num_cores = num_cores
        self.interconnect = Interconnect(config.memory)
        self.dram = DramModel(config.memory)

        level_configs: List[tuple] = [("L1", config.l1), ("L2", config.l2)]
        if config.l3 is not None:
            level_configs.append(("L3", config.l3))

        self._shared_caches: List[Cache] = []
        shared_templates: List[tuple] = []
        private_templates: List[tuple] = []
        for name, level in level_configs:
            if level.shared:
                shared_templates.append((name, level))
            else:
                private_templates.append((name, level))

        # One authoritative tag store per level, in L1-outwards order
        # (private levels first, matching ``CacheHierarchy.caches``): a
        # private level's store spans all cores (row = core * num_sets +
        # set, views attached in core order below), a shared level's store
        # has a single view.  The caches' per-set dict working copies are
        # lazy views of these stores; the vector kernel walks the stores'
        # NumPy planes directly.
        private_stores = [
            LevelTagStore(level.num_sets, level.associativity)
            for _name, level in private_templates
        ]
        shared_stores = [
            LevelTagStore(level.num_sets, level.associativity)
            for _name, level in shared_templates
        ]
        self.stores: List[LevelTagStore] = private_stores + shared_stores

        for (name, level), store in zip(shared_templates, shared_stores):
            self._shared_caches.append(Cache(level, name=name, store=store))

        self.hierarchies: List[CacheHierarchy] = []
        for core_id in range(num_cores):
            private = [
                Cache(level, name=name, store=store)
                for (name, level), store in zip(private_templates, private_stores)
            ]
            self.hierarchies.append(
                CacheHierarchy(
                    core_id=core_id,
                    private_caches=private,
                    shared_caches=self._shared_caches,
                    interconnect=self.interconnect,
                    dram=self.dram,
                )
            )

    # ------------------------------------------------------------------
    def hierarchy(self, core_id: int) -> CacheHierarchy:
        """Return the cache hierarchy of ``core_id``."""
        return self.hierarchies[core_id]

    @property
    def shared_caches(self) -> List[Cache]:
        """The caches shared by all cores (possibly empty)."""
        return self._shared_caches

    def invalidate_remote(self, writer_core: int, address: int) -> None:
        """Invalidate ``address`` in the private caches of all other cores.

        This is a simplified write-invalidate coherence action used when a
        task instance writes shared data: remote copies are dropped so later
        readers on other cores miss and re-fetch.
        """
        for hierarchy in self.hierarchies:
            if hierarchy.core_id != writer_core:
                hierarchy.invalidate(address)

    def reset_statistics(self) -> None:
        """Zero the statistics of all caches, the interconnect and DRAM."""
        for hierarchy in self.hierarchies:
            for cache in hierarchy.private_caches:
                cache.reset_statistics()
        for cache in self._shared_caches:
            cache.reset_statistics()
        self.interconnect.reset_statistics()
        self.dram.reset_statistics()

    def cache_snapshot(self) -> Dict[str, object]:
        """Return a nested summary of all cache statistics for reporting."""
        return {
            "shared": [cache.snapshot() for cache in self._shared_caches],
            "private": [
                [cache.snapshot() for cache in hierarchy.private_caches]
                for hierarchy in self.hierarchies
            ],
            "dram_avg_latency": self.dram.stats.average_latency,
            "interconnect_avg_latency": self.interconnect.stats.average_latency,
        }
