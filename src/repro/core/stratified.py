"""Two-phase stratified sampling engine with confidence intervals.

TaskPoint's periodic/lazy policies sample task instances uniformly in time,
which spends detailed-simulation budget on low-variance task types and
reports point estimates with no error bars.  This module implements the
profile-then-stratify alternative ("CPU Simulation Using Two-Phase Stratified
Sampling", Ekman — see PAPERS.md):

**Phase 1 — profile (no simulation).**  Cheap per-instance signatures are
read straight off the columnar trace
(:meth:`repro.trace.columns.TraceColumns.instance_signatures`: op counts,
block geometry, dependency fan-in/out) and instances are clustered into
*strata*: within each task type, equal-frequency bins of a rank-composite
signature score.  Stratification is pure array math and fully deterministic.

**Phase 2 — sample and allocate.**  At run time the controller first takes a
small *pilot* of detailed samples from every stratum, then splits the
remaining detailed budget across strata proportionally to ``N_h * s_h``
(**Neyman allocation** — stratum size times unbiased sample standard
deviation), so high-variance strata get more of the budget and homogeneous
strata are fast-forwarded almost entirely at their stratum-mean IPC.

The final estimate carries a **95% confidence interval**: every stratum's
fast-forwarded cycles inherit the relative standard error of that stratum's
mean IPC (detailed-simulated cycles are exact and contribute none), combined
across strata as independent errors with per-stratum Student-t multipliers
(conservative at pilot-sized sample counts).  The CI describes the
*fast-forward estimation* uncertainty — scheduling interactions of burst
durations are first-order linear in them, which is the usual delta-method
approximation.

Resampling triggers mirror :class:`repro.core.controller.TaskPointController`
(and reuse its :class:`~repro.core.controller.ResampleReason` enum): a
persistent active-thread-count change or an unprofiled task type discards the
per-stratum IPC statistics *and* the Neyman allocation, re-warms, and
re-runs the pilot — allocations are never reused across a resample, since
they were computed from discarded samples.

All dispersion/CI math uses the unbiased (``ddof=1``) estimators of
:mod:`repro.core.history`; the legacy biased CoV path is untouched (see the
note there).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Set

import numpy as np

from repro.core.controller import ResampleReason, TaskPointStatistics
from repro.core.history import t_critical_95
from repro.runtime.task import TaskInstance
from repro.sim.modes import (
    DETAILED_DECISION,
    DETAILED_WARMUP_DECISION,
    CompletionInfo,
    ModeDecision,
    SimulationMode,
    burst_decision,
)


@dataclass(frozen=True)
class StratifiedConfig:
    """Configuration of the stratified sampling engine.

    Attributes
    ----------
    budget:
        Target fraction of all task instances simulated in detail (warm-up
        and pilot included).  The budget is a target, not a hard cap: the
        pilot and per-worker warm-up establish a floor, and resampling
        triggers may re-spend.
    strata_per_type:
        Maximum number of strata each task type is split into.
    min_stratum_size:
        Task types with fewer than ``strata_per_type * min_stratum_size``
        instances get proportionally fewer strata (never zero).
    pilot_samples:
        Detailed samples taken from every stratum before the Neyman
        allocation of the remaining budget (phase 2's first stage).
    warmup_instances:
        Detailed instances each worker simulates at start purely to warm
        micro-architectural state (as TaskPoint's W; not valid samples).
    resample_warmup_instances:
        Warm-up budget per worker after a resampling trigger.
    resample_on_new_task_type / resample_on_thread_change /
    thread_change_tolerance / thread_change_persistence:
        The TaskPoint resampling triggers, with identical semantics.
    """

    budget: float = 0.02
    strata_per_type: int = 3
    min_stratum_size: int = 16
    pilot_samples: int = 3
    warmup_instances: int = 1
    resample_warmup_instances: int = 1
    resample_on_new_task_type: bool = True
    resample_on_thread_change: bool = True
    thread_change_tolerance: float = 0.5
    thread_change_persistence: int = 5

    def __post_init__(self) -> None:
        if not 0.0 < self.budget <= 1.0:
            raise ValueError("budget must be a fraction in (0, 1]")
        if self.strata_per_type < 1:
            raise ValueError("strata_per_type must be >= 1")
        if self.min_stratum_size < 1:
            raise ValueError("min_stratum_size must be >= 1")
        if self.pilot_samples < 2:
            raise ValueError("pilot_samples must be >= 2 (variance needs 2 samples)")
        if self.warmup_instances < 0:
            raise ValueError("warmup_instances must be non-negative")
        if self.resample_warmup_instances < 0:
            raise ValueError("resample_warmup_instances must be non-negative")
        if self.thread_change_tolerance < 0:
            raise ValueError("thread_change_tolerance must be non-negative")
        if self.thread_change_persistence < 1:
            raise ValueError("thread_change_persistence must be >= 1")

    def with_budget(self, budget: float) -> "StratifiedConfig":
        """Return a copy with a different detailed budget."""
        return replace(self, budget=budget)


class StratumState:
    """Runtime sampling state of one stratum.

    Samples are accumulated in **CPI space** (cycles per instruction,
    ``1/ipc``): fast-forwarded cycles are ``instructions * CPI``, so the
    estimator that makes the *cycle* estimate unbiased under within-stratum
    sampling is the arithmetic mean of CPI — equivalently the harmonic mean
    of IPC.  Fast-forwarding at the arithmetic-mean IPC instead would be
    Jensen-biased low on cycles (``E[1/IPC] >= 1/E[IPC]``).  The confidence
    interval is likewise computed from the CPI sample variance.
    """

    __slots__ = (
        "stratum_id",
        "task_type",
        "size",
        "pilot_target",
        "target",
        "decided_detailed",
        "count",
        "cpi_mean",
        "cpi_m2",
        "fast_forwarded",
        "ff_cycles",
    )

    def __init__(self, stratum_id: int, task_type: str, size: int, pilot_target: int) -> None:
        self.stratum_id = stratum_id
        self.task_type = task_type
        self.size = size              # N_h: instances in this stratum
        self.pilot_target = pilot_target
        self.target = pilot_target    # current detailed target (pilot or Neyman)
        self.decided_detailed = 0     # detailed decisions issued
        self.count = 0                # completed valid samples (n_h)
        self.cpi_mean = 0.0           # running mean CPI (Welford)
        self.cpi_m2 = 0.0             # running sum of squared CPI deviations
        self.fast_forwarded = 0
        self.ff_cycles = 0.0          # simulated cycles spent fast-forwarding

    def observe(self, ipc: float) -> None:
        """Welford update with one valid detailed IPC sample (as CPI)."""
        cpi = 1.0 / ipc
        self.count += 1
        delta = cpi - self.cpi_mean
        self.cpi_mean += delta / self.count
        self.cpi_m2 += delta * (cpi - self.cpi_mean)

    def fast_forward_ipc(self) -> Optional[float]:
        """Harmonic-mean IPC of the samples, or ``None`` without samples."""
        if self.count < 1 or self.cpi_mean <= 0:
            return None
        return 1.0 / self.cpi_mean

    def std(self) -> float:
        """Unbiased (ddof=1) CPI standard deviation; 0.0 below 2 samples."""
        if self.count < 2:
            return 0.0
        return math.sqrt(self.cpi_m2 / (self.count - 1))

    def relative_standard_error(self) -> Optional[float]:
        """CPI relative standard error ``s_h / (sqrt(n_h) * mean_h)``.

        Relative error of the stratum-mean CPI equals the relative error of
        the fast-forwarded cycles (cycles are linear in CPI).  ``None``
        below 2 samples.
        """
        if self.count < 2 or self.cpi_mean <= 0:
            return None
        return self.std() / (math.sqrt(self.count) * self.cpi_mean)

    def reset_samples(self) -> None:
        """Discard samples and allocation (resampling trigger)."""
        self.target = self.pilot_target
        self.decided_detailed = 0
        self.count = 0
        self.cpi_mean = 0.0
        self.cpi_m2 = 0.0


@dataclass
class StratifiedStatistics(TaskPointStatistics):
    """TaskPoint-shaped counters plus the stratified engine's CI state.

    Extends :class:`~repro.core.controller.TaskPointStatistics` so everything
    that consumes sampling statistics (``ExperimentResult.from_simulation``,
    the accuracy analysis, result metadata) accepts it unchanged; the extra
    state feeds :meth:`confidence_summary`.
    """

    num_strata: int = 0
    pilot_target_total: int = 0
    budget_instances: int = 0
    allocations: int = 0
    strata: List[StratumState] = field(default_factory=list)

    def confidence_summary(self, total_cycles: float) -> Optional[Dict[str, object]]:
        """95% CI of the estimated execution time, as a JSON-friendly dict.

        The half-width combines, across strata, the fast-forwarded cycles
        weighted by the relative standard error of the stratum-mean CPI,
        each scaled by the stratum's Student-t 95% critical value (errors
        independent across strata).  Strata that fast-forwarded without at
        least two samples fall back to the widest observed relative error
        (conservative).  Returns ``None`` when nothing was fast-forwarded
        (the estimate is exact — a detailed run).
        """
        if total_cycles <= 0:
            return None
        contributions: List[float] = []
        pending: float = 0.0  # ff cycles of strata without their own error
        widest = 0.0
        for stratum in self.strata:
            if stratum.ff_cycles <= 0:
                continue
            rse = stratum.relative_standard_error()
            if rse is None:
                pending += stratum.ff_cycles
                continue
            scaled = t_critical_95(stratum.count - 1) * rse
            widest = max(widest, scaled)
            contributions.append(stratum.ff_cycles * scaled)
        if pending > 0:
            # No per-stratum error estimate: assume the widest scaled
            # relative error seen anywhere (or 100% if none exists at all).
            contributions.append(pending * (widest if widest > 0 else 1.0))
        if not contributions:
            return None
        half_width = math.sqrt(sum(value * value for value in contributions))
        return {
            "level": 0.95,
            "half_width_cycles": half_width,
            "half_width_percent": 100.0 * half_width / total_cycles,
            "lower_cycles": total_cycles - half_width,
            "upper_cycles": total_cycles + half_width,
            "num_strata": self.num_strata,
            "sampled_strata": sum(1 for s in self.strata if s.count >= 2),
        }


def build_strata(columns, strata_per_type: int, min_stratum_size: int) -> np.ndarray:
    """Assign every trace record to a stratum (phase 1).

    Within each task type, records are ranked by a composite of their
    normalised signature-column ranks (instructions, block geometry, memory
    events and accesses, dependency fan-in/out) and split into equal-frequency
    bins — at most ``strata_per_type``, fewer when the type has less than
    ``min_stratum_size`` instances per stratum.  Returns an ``int64`` array
    mapping record index to a globally unique stratum id; ids are dense and
    deterministic (types in interned order, bins in ascending score order).
    """
    signatures = columns.instance_signatures()
    type_ids = columns.task_type_id
    stratum_of = np.zeros(columns.num_records, dtype=np.int64)
    next_stratum = 0
    for type_id in range(len(columns.types)):
        members = np.nonzero(type_ids == type_id)[0]
        m = members.size
        if m == 0:
            continue
        bins = min(strata_per_type, max(1, m // min_stratum_size))
        if bins <= 1:
            stratum_of[members] = next_stratum
            next_stratum += 1
            continue
        # Composite score: mean of per-column normalised ranks.  Rank-based
        # so no column dominates by scale, deterministic under ties (stable
        # argsort on record order).
        score = np.zeros(m, dtype=np.float64)
        sub = signatures[members]
        for column in range(sub.shape[1]):
            values = sub[:, column]
            if values.max() == values.min():
                continue  # constant column carries no information
            order = np.argsort(values, kind="stable")
            ranks = np.empty(m, dtype=np.float64)
            ranks[order] = np.arange(m, dtype=np.float64)
            score += ranks / (m - 1)
        # Equal-frequency bins of the composite score (again rank-based:
        # every bin gets m/bins members up to rounding, never empty).
        order = np.argsort(score, kind="stable")
        ranks = np.empty(m, dtype=np.int64)
        ranks[order] = np.arange(m, dtype=np.int64)
        stratum_of[members] = next_stratum + (ranks * bins) // m
        next_stratum += bins
    return stratum_of


class StratifiedController:
    """Mode controller implementing two-phase stratified sampling.

    Implements the :class:`repro.sim.modes.ModeController` interface, so it
    plugs into :class:`repro.sim.simulator.TaskSimSimulator` exactly like
    :class:`~repro.core.controller.TaskPointController`.

    Parameters
    ----------
    trace:
        The application trace about to be simulated (or its
        :class:`~repro.trace.columns.TraceColumns`); phase 1 profiles its
        columnar signatures at construction time.
    config:
        Engine parameters; ``None`` selects the defaults.
    """

    def __init__(self, trace, config: Optional[StratifiedConfig] = None) -> None:
        self.config = config if config is not None else StratifiedConfig()
        columns = getattr(trace, "columns", trace)
        self._columns = columns
        # ---- Phase 1: profile + stratify (no simulation) ----
        self._stratum_of = build_strata(
            columns, self.config.strata_per_type, self.config.min_stratum_size
        )
        self._profiled_types = set(columns.types.names)
        num_strata = int(self._stratum_of.max()) + 1 if columns.num_records else 0
        sizes = np.bincount(self._stratum_of, minlength=num_strata)
        type_names = columns.types.names
        stratum_type = [""] * num_strata
        if columns.num_records:
            # The type of a stratum is the type of any member (strata never
            # span types).
            first_member = np.full(num_strata, -1, dtype=np.int64)
            reversed_ids = self._stratum_of[::-1]
            first_member[reversed_ids] = np.arange(columns.num_records)[::-1]
            for stratum_id in range(num_strata):
                member = int(first_member[stratum_id])
                stratum_type[stratum_id] = type_names[
                    int(columns.task_type_id[member])
                ]
        self.strata: List[StratumState] = [
            StratumState(
                stratum_id=stratum_id,
                task_type=stratum_type[stratum_id],
                size=int(sizes[stratum_id]),
                pilot_target=min(self.config.pilot_samples, int(sizes[stratum_id])),
            )
            for stratum_id in range(num_strata)
        ]
        self._type_cpi: Dict[str, List[float]] = {}  # [cpi sum, count] per type

        self.stats = StratifiedStatistics(
            num_strata=num_strata,
            pilot_target_total=sum(s.pilot_target for s in self.strata),
            budget_instances=max(1, int(round(self.config.budget * columns.num_records)))
            if columns.num_records
            else 0,
            strata=self.strata,
        )

        # ---- Phase 2 runtime state ----
        self.allocated = False
        self._detailed_decided = 0
        # Explicit per-worker warm-up budgets (initial W versus the short
        # resample budget) — same accounting as TaskPointController: a
        # worker first participating after a resample still warms with the
        # full W, only already-warmed workers re-warm with the short budget.
        self._warmup_remaining: Dict[int, int] = {}
        self._warmed_workers: Set[int] = set()
        self._sampled_thread_count: Optional[int] = None
        self._thread_change_streak = 0
        # Detailed instances in flight across a resample must not feed the
        # fresh stratum statistics (they were decided under the discarded
        # conditions — e.g. the old thread count).  Decisions are stamped
        # with the resample epoch; a mismatch on completion makes the sample
        # invalid, mirroring TaskPoint's invalid-sample handling.
        self._epoch = 0
        self._decision_epoch: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Resampling and allocation
    # ------------------------------------------------------------------
    def _trigger_resample(self, reason: ResampleReason) -> None:
        """Discard stratum samples *and* the Neyman allocation; re-pilot.

        The allocation was computed from the discarded samples, so keeping it
        would steer the fresh budget by stale variances — everything phase-2
        goes back to its pilot state and the allocation is recomputed from
        the new samples.
        """
        self.stats.resamples += 1
        self.stats.resample_reasons[reason] += 1
        for stratum in self.strata:
            stratum.reset_samples()
        self.allocated = False
        self._detailed_decided = 0
        self._sampled_thread_count = None
        self._thread_change_streak = 0
        self._epoch += 1
        self._warmup_remaining.clear()

    def _remaining_warmup(self, worker_id: int) -> int:
        """This worker's warm-up budget: full initial W on first
        participation (even after a resample), the short resample budget
        for already-warmed workers after a resample cleared the table."""
        remaining = self._warmup_remaining.get(worker_id)
        if remaining is None:
            remaining = (
                self.config.resample_warmup_instances
                if worker_id in self._warmed_workers
                else self.config.warmup_instances
            )
            self._warmup_remaining[worker_id] = remaining
        return remaining

    def _thread_count_changed(self, active_workers: int) -> bool:
        """TaskPoint's Figure 4a trigger with tolerance and persistence."""
        if not self.config.resample_on_thread_change:
            return False
        if not self._sampled_thread_count:
            return False
        change = (
            abs(active_workers - self._sampled_thread_count)
            / self._sampled_thread_count
        )
        if change > self.config.thread_change_tolerance:
            self._thread_change_streak += 1
        else:
            self._thread_change_streak = 0
        return self._thread_change_streak >= self.config.thread_change_persistence

    def _pilot_complete(self) -> bool:
        return all(
            stratum.decided_detailed >= stratum.pilot_target
            for stratum in self.strata
        )

    def _allocate(self, active_workers: int) -> None:
        """Neyman allocation of the remaining detailed budget.

        Each stratum's share of the remaining budget is proportional to
        ``N_h * s_h`` (size times unbiased standard deviation of its pilot
        CPI samples).  Two degeneracies are handled so the budget the user
        asked for is actually spent: when *every* stratum shows zero pilot
        variance the Neyman weights collapse and the allocation degrades to
        the proportional one (weights = remaining capacity); and a share
        exceeding its stratum's capacity is capped with the overflow
        re-distributed over the strata that still have room.  Integer shares
        are distributed by largest remainder, so the allocation is
        deterministic and sums exactly.
        """
        for stratum in self.strata:
            stratum.target = min(stratum.size, stratum.decided_detailed)
        remaining = self.stats.budget_instances - self._detailed_decided
        while remaining > 0:
            active = [s for s in self.strata if s.target < s.size]
            if not active:
                break
            weights = [(s.size - s.target) * s.std() for s in active]
            if sum(weights) == 0:
                weights = [float(s.size - s.target) for s in active]
            total_weight = sum(weights)
            raw = [remaining * weight / total_weight for weight in weights]
            shares = [int(share) for share in raw]
            leftovers = sorted(
                range(len(raw)),
                key=lambda index: (-(raw[index] - shares[index]), index),
            )
            for index in leftovers[: remaining - sum(shares)]:
                shares[index] += 1
            granted = 0
            for stratum, share in zip(active, shares):
                extra = min(share, stratum.size - stratum.target)
                stratum.target += extra
                granted += extra
            remaining -= granted
            if granted == 0:
                break
        self.allocated = True
        self.stats.allocations += 1
        self.stats.transitions_to_fast += 1
        self._sampled_thread_count = active_workers
        self._thread_change_streak = 0

    # ------------------------------------------------------------------
    # Fast-forward IPC
    # ------------------------------------------------------------------
    def _fast_forward_ipc(self, stratum: StratumState, task_type: str) -> Optional[float]:
        """Stratum harmonic-mean IPC, falling back to the type-level one."""
        ipc = stratum.fast_forward_ipc()
        if ipc is not None:
            return ipc
        aggregate = self._type_cpi.get(task_type)
        if aggregate is not None and aggregate[1] > 0 and aggregate[0] > 0:
            self.stats.fallback_estimates += 1
            return aggregate[1] / aggregate[0]
        return None

    # ------------------------------------------------------------------
    # ModeController interface
    # ------------------------------------------------------------------
    def choose_mode(
        self,
        instance: TaskInstance,
        worker_id: int,
        active_workers: int,
        current_cycle: float,
    ) -> ModeDecision:
        """Decide how the simulator should execute ``instance``."""
        instance_id = instance.instance_id
        task_type = instance.task_type.name
        if (
            not 0 <= instance_id < self._stratum_of.shape[0]
            or task_type not in self._profiled_types
        ):
            # The instance was not part of the profiled trace (unprofiled
            # task type / foreign trace): the stratification does not cover
            # it.  Simulate it in detail and, if configured, discard the
            # per-stratum statistics the same way TaskPoint reacts to an
            # unsampled type.
            if self.config.resample_on_new_task_type:
                self._trigger_resample(ResampleReason.NEW_TASK_TYPE)
            return self._issue_detailed(None, instance_id, worker_id)

        stratum = self.strata[int(self._stratum_of[instance_id])]

        if self._remaining_warmup(worker_id) > 0:
            return self._issue_detailed(stratum, instance_id, worker_id)

        if self.allocated and self._thread_count_changed(active_workers):
            self._trigger_resample(ResampleReason.THREAD_COUNT_CHANGE)
            return self._issue_detailed(stratum, instance_id, worker_id)

        if not self.allocated and self._pilot_complete():
            self._allocate(active_workers)

        if stratum.decided_detailed < stratum.target:
            return self._issue_detailed(stratum, instance_id, worker_id)

        # Budget saturation: when the unspent budget covers every instance
        # that has not been decided yet, estimating gains nothing — spend
        # the budget the caller asked for (budget=1.0 degrades to a fully
        # detailed run even though allocation happens mid-run).
        undecided = (
            self._stratum_of.shape[0]
            - self._detailed_decided
            - self.stats.fast_forwarded
        )
        if self.stats.budget_instances - self._detailed_decided >= undecided:
            return self._issue_detailed(stratum, instance_id, worker_id)

        ipc = self._fast_forward_ipc(stratum, task_type)
        if ipc is None:
            # Nothing measured for this stratum or its type yet (its pilot
            # decisions are still in flight): impossible to fast-forward.
            if stratum.count == 0:
                self._trigger_resample(ResampleReason.EMPTY_HISTORY)
            return self._issue_detailed(stratum, instance_id, worker_id)
        stratum.fast_forwarded += 1
        self.stats.fast_forwarded += 1
        return burst_decision(ipc)

    def _issue_detailed(
        self,
        stratum: Optional[StratumState],
        instance_id: int,
        worker_id: int,
    ) -> ModeDecision:
        """Issue a detailed decision with budget and pilot accounting.

        Warm-up instances consume budget but never count toward a stratum's
        pilot/allocation target — their IPCs are excluded from the stratum
        estimator (cold-cache biased), so counting them would let a stratum
        look piloted with zero usable samples.
        """
        self._detailed_decided += 1
        if self._remaining_warmup(worker_id) > 0:
            return DETAILED_WARMUP_DECISION
        if stratum is not None:
            stratum.decided_detailed += 1
        self._decision_epoch[instance_id] = self._epoch
        return DETAILED_DECISION

    def notify_completion(self, info: CompletionInfo) -> None:
        """Fold a completed instance into stratum statistics."""
        instance_id = info.instance.instance_id
        in_profile = 0 <= instance_id < self._stratum_of.shape[0]
        stratum = (
            self.strata[int(self._stratum_of[instance_id])] if in_profile else None
        )
        if info.mode is not SimulationMode.DETAILED:
            if stratum is not None:
                stratum.ff_cycles += info.cycles
            return
        self._warmed_workers.add(info.worker_id)
        if info.ipc <= 0:
            return
        task_type = info.instance.task_type.name
        aggregate = self._type_cpi.setdefault(task_type, [0.0, 0])
        aggregate[0] += 1.0 / info.ipc
        aggregate[1] += 1
        if info.is_warmup:
            # Warm-up IPCs are cold-cache biased: they feed only the
            # type-level fallback mean, never the stratum estimator.
            self.stats.warmup_instances += 1
            remaining = self._remaining_warmup(info.worker_id)
            if remaining > 0:
                self._warmup_remaining[info.worker_id] = remaining - 1
            return
        epoch = self._decision_epoch.pop(instance_id, self._epoch)
        if stratum is None or epoch != self._epoch:
            # Out of profile, or decided before a resample discarded the
            # conditions it was decided under: usable for the type-level
            # fallback mean (fed above) but not as a stratum sample.
            self.stats.invalid_samples += 1
            return
        stratum.observe(info.ipc)
        self.stats.valid_samples += 1
