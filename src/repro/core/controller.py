"""The TaskPoint controller: sampling mechanism driving the simulator modes.

The controller implements the :class:`repro.sim.modes.ModeController`
interface and realises the sampling mechanism of paper §III-B:

1. **Warm-up** — at simulation start each thread simulates
   ``warmup_instances`` (W) task instances in detail; their IPCs are added
   only to the history of *all* samples.
2. **Sampling** — subsequent instances are simulated in detail as *valid
   samples* (added to both histories).  Sampling ends — and fast-forwarding
   begins — when either every observed task type's valid history is full, or
   every thread has simulated ``rare_type_cutoff`` instances in a row without
   encountering an instance of a not-yet-fully-sampled (rare) task type.
3. **Fast-forward** — instances are advanced in burst mode at the mean IPC of
   their type's valid history (falling back to the history of all samples for
   rare types).  Instances that started in detailed mode before the switch
   run to completion in detailed mode but are only added to the history of
   all samples.
4. **Resampling** — triggered by the sampling policy (periodic sampling after
   P fast-forwarded instances per thread; never for lazy sampling), by a
   change in the number of threads participating in execution, or by an
   instance whose task type has no samples at all.  Resampling discards the
   valid histories, re-warms each thread with one detailed instance and then
   samples again.
"""

from __future__ import annotations

import enum
from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from repro.core.config import TaskPointConfig
from repro.core.fastforward import FastForwardEstimator
from repro.core.history import HistoryTable
from repro.core.policies import SamplingPolicy, make_policy
from repro.runtime.task import TaskInstance
from repro.sim.modes import (
    DETAILED_DECISION,
    DETAILED_WARMUP_DECISION,
    CompletionInfo,
    ModeDecision,
    SimulationMode,
    burst_decision,
)


class SamplingPhase(enum.Enum):
    """Global phase of the sampling mechanism."""

    SAMPLING = "sampling"            # detailed simulation (warm-up or valid samples)
    FAST_FORWARD = "fast_forward"    # burst simulation at per-type IPC


class ResampleReason(enum.Enum):
    """Why a resampling interval was triggered."""

    PERIOD_ELAPSED = "period_elapsed"
    THREAD_COUNT_CHANGE = "thread_count_change"
    NEW_TASK_TYPE = "new_task_type"
    EMPTY_HISTORY = "empty_history"
    #: Per-type drift re-open of the fidelity controller: the type's
    #: prequential residual window shifted outside its error allowance.
    DRIFT = "drift"


#: IPC recorded for a detailed completion that measured no forward progress
#: (``ipc <= 0``, e.g. a zero-instruction task type).  Recording a floor
#: sample instead of dropping the completion keeps the type's history
#: non-empty — fast-forwarding a zero-instruction instance at this IPC
#: costs ``0 / ZERO_IPC_FLOOR = 0`` cycles, while dropping it made every
#: fast-forward attempt of the type fire an EMPTY_HISTORY resample
#: (degrading the whole run to detailed simulation).
ZERO_IPC_FLOOR = 1e-9


@dataclass
class TaskPointStatistics:
    """Counters describing what the sampling mechanism did during a run."""

    warmup_instances: int = 0
    valid_samples: int = 0
    invalid_samples: int = 0
    fast_forwarded: int = 0
    transitions_to_fast: int = 0
    resamples: int = 0
    resample_reasons: Counter = field(default_factory=Counter)
    fallback_estimates: int = 0

    @property
    def detailed_instances(self) -> int:
        """Total task instances simulated in detailed mode."""
        return self.warmup_instances + self.valid_samples + self.invalid_samples

    @property
    def total_instances(self) -> int:
        """Total task instances the controller made a decision for."""
        return self.detailed_instances + self.fast_forwarded

    @property
    def detailed_fraction(self) -> float:
        """Fraction of instances simulated in detail."""
        total = self.total_instances
        return self.detailed_instances / total if total else 0.0


class TaskPointController:
    """Drives a TaskSim-style simulator according to the TaskPoint methodology.

    Parameters
    ----------
    config:
        TaskPoint model parameters (W, H, P and the resampling triggers).
    policy:
        Sampling policy.  ``None`` derives the policy from
        ``config.sampling_period`` (periodic for an integer, lazy for
        ``None``).
    """

    def __init__(
        self,
        config: Optional[TaskPointConfig] = None,
        policy: Optional[SamplingPolicy] = None,
    ) -> None:
        self.config = config if config is not None else TaskPointConfig()
        self.policy = policy if policy is not None else make_policy(self.config.sampling_period)
        self.histories = HistoryTable(self.config.history_size)
        self.estimator = FastForwardEstimator(self.histories)
        self.stats = TaskPointStatistics()

        self.phase = SamplingPhase.SAMPLING
        # Per-worker warm-up budget.  Tracked explicitly per worker rather
        # than via a defaultdict factory: a worker's *first* participation
        # always warms with the full W (``warmup_instances``), even when it
        # joins after a resample; only workers that already warmed re-warm
        # with the short ``resample_warmup_instances`` budget.  (The former
        # factory swap in ``_trigger_resample`` gave late-joining workers
        # the short budget for their initial warm-up.)
        self._warmup_remaining: Dict[int, int] = {}
        self._warmed_workers: Set[int] = set()
        # Per-worker count of consecutive completed instances whose type was
        # already fully sampled (used for the rare-type sampling cut-off).
        self._since_rare: Dict[int, int] = defaultdict(int)
        # Per-worker count of instances fast-forwarded since the last
        # sampling interval (used by the periodic policy).
        self._fast_forwarded: Dict[int, int] = defaultdict(int)
        # Number of threads participating in execution when the current
        # samples were taken; None until the first transition to fast mode.
        self._sampled_thread_count: Optional[int] = None
        # Consecutive fast-forward decisions that observed a thread count
        # outside the tolerance band (Figure 4a trigger with persistence).
        self._thread_change_streak: int = 0

    # ------------------------------------------------------------------
    # Phase transitions
    # ------------------------------------------------------------------
    def _sampling_complete(self) -> bool:
        """Evaluate the two sampling-termination conditions of the paper."""
        states = self.histories.states
        if not states:
            return False
        if self.histories.all_fully_sampled():
            return True
        # Cut-off: every worker that has completed work has gone
        # ``rare_type_cutoff`` instances without meeting a rare type, and at
        # least one type is usable for fast-forwarding.
        if not self._since_rare:
            return False
        any_usable = any(not state.all.is_empty for state in states)
        if not any_usable:
            return False
        return all(
            count >= self.config.rare_type_cutoff for count in self._since_rare.values()
        )

    def _enter_fast_forward(self, active_workers: int) -> None:
        self.phase = SamplingPhase.FAST_FORWARD
        self.stats.transitions_to_fast += 1
        self._sampled_thread_count = active_workers
        self._thread_change_streak = 0
        self._fast_forwarded.clear()
        self.policy.reset()

    def _trigger_resample(self, reason: ResampleReason) -> None:
        """Discard valid samples and return to the sampling phase."""
        self.phase = SamplingPhase.SAMPLING
        self.stats.resamples += 1
        self.stats.resample_reasons[reason] += 1
        self.histories.clear_valid()
        self._since_rare.clear()
        self._fast_forwarded.clear()
        self._thread_change_streak = 0
        # Re-warm already-warmed threads with the (short) resample warm-up
        # budget; a worker first participating after this still gets the
        # full initial W (see ``_remaining_warmup``).
        self._warmup_remaining.clear()

    def _thread_count_changed(self, active_workers: int) -> bool:
        """Check the Figure 4a trigger with tolerance and persistence.

        A resample is only triggered once the active-thread count has stayed
        outside the tolerance band for ``thread_change_persistence``
        consecutive fast-forward decisions, so momentary dips at dependency
        boundaries do not discard otherwise valid samples.
        """
        if not self.config.resample_on_thread_change:
            return False
        if self._sampled_thread_count is None or self._sampled_thread_count == 0:
            return False
        change = abs(active_workers - self._sampled_thread_count) / self._sampled_thread_count
        if change > self.config.thread_change_tolerance:
            self._thread_change_streak += 1
        else:
            self._thread_change_streak = 0
        return self._thread_change_streak >= self.config.thread_change_persistence

    # ------------------------------------------------------------------
    # ModeController interface
    # ------------------------------------------------------------------
    def choose_mode(
        self,
        instance: TaskInstance,
        worker_id: int,
        active_workers: int,
        current_cycle: float,
    ) -> ModeDecision:
        """Decide how the simulator should execute ``instance``."""
        task_type = instance.task_type.name
        first_encounter = not self.histories.known(task_type)
        state = self.histories.state(task_type)

        if self.phase is SamplingPhase.SAMPLING:
            if self._sampling_complete():
                self._enter_fast_forward(active_workers)
            else:
                return self._detailed_decision(worker_id)

        # Fast-forward phase: check the resampling triggers in the order the
        # paper discusses them (correctness triggers first, then the policy).
        if first_encounter and self.config.resample_on_new_task_type:
            self._trigger_resample(ResampleReason.NEW_TASK_TYPE)
            return self._detailed_decision(worker_id)
        if self._thread_count_changed(active_workers):
            self._trigger_resample(ResampleReason.THREAD_COUNT_CHANGE)
            return self._detailed_decision(worker_id)
        if self.policy.should_resample(self._fast_forwarded[worker_id]):
            self._trigger_resample(ResampleReason.PERIOD_ELAPSED)
            return self._detailed_decision(worker_id)

        estimate = self.estimator.estimate_type(task_type, instance.instructions)
        if estimate is None:
            # No sample of any kind for this type: impossible to fast-forward.
            self._trigger_resample(ResampleReason.EMPTY_HISTORY)
            return self._detailed_decision(worker_id)
        if estimate.used_fallback:
            self.stats.fallback_estimates += 1
        self._fast_forwarded[worker_id] += 1
        state.record_fast_forward()
        self.stats.fast_forwarded += 1
        return burst_decision(estimate.ipc)

    def _remaining_warmup(self, worker_id: int) -> int:
        """This worker's current warm-up budget, lazily initialised.

        A worker absent from ``_warmup_remaining`` is starting (or
        re-starting after a resample cleared the table): its budget is the
        short resample warm-up if it has warmed before, the full initial W
        otherwise.
        """
        remaining = self._warmup_remaining.get(worker_id)
        if remaining is None:
            remaining = (
                self.config.resample_warmup_instances
                if worker_id in self._warmed_workers
                else self.config.warmup_instances
            )
            self._warmup_remaining[worker_id] = remaining
        return remaining

    def _detailed_decision(self, worker_id: int) -> ModeDecision:
        if self._remaining_warmup(worker_id) > 0:
            return DETAILED_WARMUP_DECISION
        return DETAILED_DECISION

    def notify_completion(self, info: CompletionInfo) -> None:
        """Record the measured IPC of a detailed instance in the histories."""
        if info.mode is not SimulationMode.DETAILED:
            return
        self._warmed_workers.add(info.worker_id)
        # A detailed completion that measured no forward progress (a
        # zero-instruction task type) still records a floor sample: it must
        # populate the history and run the warm-up / rare-type bookkeeping
        # below, otherwise the type stays unestimable and every fast-forward
        # attempt fires an EMPTY_HISTORY resample (a resample storm that
        # degrades the run to fully detailed).
        ipc = info.ipc if info.ipc > 0 else ZERO_IPC_FLOOR
        state = self.histories.state(info.instance.task_type.name)
        if info.is_warmup:
            # Warm-up instances only feed the history of all samples.
            state.record_detailed(ipc, valid=False)
            self.stats.warmup_instances += 1
            remaining = self._remaining_warmup(info.worker_id)
            if remaining > 0:
                self._warmup_remaining[info.worker_id] = remaining - 1
        elif self.phase is SamplingPhase.SAMPLING:
            state.record_detailed(ipc, valid=True)
            self.stats.valid_samples += 1
            dispersion = state.valid.coefficient_of_variation()
            if dispersion is not None:
                self.policy.observe_dispersion(dispersion)
        else:
            # The instance started in detail before the transition to fast
            # mode and finished afterwards: only the history of all samples.
            state.record_detailed(ipc, valid=False)
            self.stats.invalid_samples += 1

        # Rare-type cut-off bookkeeping: a completed detailed instance of a
        # not-yet-fully-sampled type resets the worker's streak.
        if state.is_rare:
            self._since_rare[info.worker_id] = 0
        else:
            self._since_rare[info.worker_id] += 1
