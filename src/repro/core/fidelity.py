"""Online error-budget fidelity controller.

TaskPoint fixes its speed/accuracy trade-off at configuration time: the user
picks a policy (periodic P, lazy, or a stratified budget) and gets whatever
error falls out.  This module inverts the knob — the user declares an **error
budget** (``--error-budget 0.02``) and a per-task-type online controller
drives each type between detailed and fast-forward simulation to meet it
(grounded in PAPERS.md's "Task-Informed Fidelity Management for Speeding Up
Robotics Simulation": adaptive per-component fidelity against an error
budget).

Per task type the controller maintains an **online linear cost model** in CPI
space: ``cycles/instructions ~ theta . (1, detail_events/instructions,
memory_accesses/instructions)``, fit by accumulated normal equations over the
type's detailed completions (per-worker warm-up completions are excluded —
their cold-cache CPIs would bias the model).  The signature features come
straight off the columnar trace
(:meth:`repro.trace.columns.TraceColumns.instance_signatures`), so the model
costs no extra simulation.  With the ratio features constant the model
degenerates gracefully to the type's mean CPI — the classic TaskPoint
estimator — while heterogeneous types (sparse kernels whose instances differ
in size and memory intensity) get a per-instance prediction instead of a
single mean.

The error signal is **prequential**: before a detailed completion updates the
model, the *previous* model predicts it, and the relative residual
``(predicted - actual) / actual`` lands in a bounded window.  The window's
t-based 95% confidence interval (``ddof=1``, via the PR-8 estimator helpers
in :mod:`repro.core.history`) bounds the relative bias of fast-forwarding
this type:

* **commit** (start fast-forwarding) when ``|mean| + half_width`` falls
  inside the type's share of the error budget,
* **drift re-open** (resume sampling, per type — histories and model are
  *kept*, unlike the global resample of the other engines) when the window
  shifts clearly outside it: ``|mean| > allowance`` or ``|mean| +
  half_width > reopen_factor * allowance``.

The per-type allowance divides the budget by the square root of the type's
running share of simulated work (``budget / sqrt(share)``, capped), so types
that dominate execution time are held to the full budget while a type
carrying 1% of the cycles may carry a proportionally wider relative error —
the *workload-level* error, which is what the user budgets for, is the
work-weighted combination.

Committed types are audited by **detailed probes**: every ``probe_period``-th
fast-forward of the type runs detailed instead, feeds the model and re-checks
the criterion.  Consecutive clean probes stretch the probe spacing
(doubling up to ``max_probe_period``); a drift re-open resets it.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Deque, Dict, List, Optional

import numpy as np

from repro.core.controller import ResampleReason, TaskPointStatistics
from repro.core.history import t_critical_95, unbiased_std
from repro.runtime.task import TaskInstance
from repro.sim.modes import (
    DETAILED_DECISION,
    DETAILED_WARMUP_DECISION,
    CompletionInfo,
    ModeDecision,
    SimulationMode,
    burst_decision,
)

#: Columns of ``instance_signatures()`` used by the cost model.
_SIG_INSTRUCTIONS = 0
_SIG_DETAIL_EVENTS = 2
_SIG_MEMORY_ACCESSES = 3

#: Number of model features: intercept + two per-instruction ratios.
_NUM_FEATURES = 3


@dataclass(frozen=True)
class FidelityConfig:
    """Configuration of the online error-budget fidelity controller.

    Attributes
    ----------
    error_budget:
        Target relative execution-time error (fraction, e.g. ``0.02``).
        This is the one knob: everything below tunes *how* the controller
        meets it, not *what* it aims for.
    min_samples:
        Valid detailed samples a type needs before it may commit to
        fast-forwarding.
    min_residuals:
        Prequential residuals a type needs before the CI criterion is
        evaluated (a CI from fewer points is too noisy to act on).
    residual_window:
        Bounded window of most-recent prequential residuals the commit /
        drift criterion is computed over.
    probe_period:
        Fast-forwarded instances of a committed type between detailed
        probes (the drift detector's sensor).
    max_probe_period:
        Ceiling the probe spacing grows to while probes stay clean
        (doubling per clean probe).
    reopen_factor:
        Hysteresis of the drift detector: a committed type re-opens when
        ``|mean| + half_width`` exceeds ``reopen_factor`` times its
        allowance (or the mean alone exceeds the allowance), not at the
        commit threshold — otherwise boundary types flap.
    share_floor:
        Lower clamp of a type's running work share in the allowance
        computation.
    allowance_cap:
        Upper clamp of the per-type allowance, as a multiple of the error
        budget.
    warmup_instances:
        Detailed instances each worker simulates first to warm
        micro-architectural state (TaskPoint's W); excluded from the model.
    resample_warmup_instances:
        Warm-up budget per already-warmed worker after a thread-count
        resample.
    resample_on_thread_change / thread_change_tolerance /
    thread_change_persistence:
        TaskPoint's Figure 4a trigger, with identical semantics.  A
        persistent thread-count change re-opens *every* type (the
        contention regime changed) but keeps the models — the drift
        detector corrects them instead of discarding history.
    """

    error_budget: float = 0.02
    min_samples: int = 4
    min_residuals: int = 4
    residual_window: int = 16
    probe_period: int = 25
    max_probe_period: int = 200
    reopen_factor: float = 1.5
    share_floor: float = 0.01
    allowance_cap: float = 5.0
    warmup_instances: int = 2
    resample_warmup_instances: int = 1
    resample_on_thread_change: bool = True
    thread_change_tolerance: float = 0.5
    thread_change_persistence: int = 5

    def __post_init__(self) -> None:
        if not 0.0 < self.error_budget < 1.0:
            raise ValueError("error_budget must be a fraction in (0, 1)")
        if self.min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        if self.min_residuals < 2:
            raise ValueError("min_residuals must be >= 2 (a CI needs 2 samples)")
        if self.residual_window < self.min_residuals:
            raise ValueError("residual_window must be >= min_residuals")
        if self.probe_period < 1:
            raise ValueError("probe_period must be >= 1")
        if self.max_probe_period < self.probe_period:
            raise ValueError("max_probe_period must be >= probe_period")
        if self.reopen_factor < 1.0:
            raise ValueError("reopen_factor must be >= 1.0")
        if not 0.0 < self.share_floor <= 1.0:
            raise ValueError("share_floor must be a fraction in (0, 1]")
        if self.allowance_cap < 1.0:
            raise ValueError("allowance_cap must be >= 1.0")
        if self.warmup_instances < 0:
            raise ValueError("warmup_instances must be non-negative")
        if self.resample_warmup_instances < 0:
            raise ValueError("resample_warmup_instances must be non-negative")
        if self.thread_change_tolerance < 0:
            raise ValueError("thread_change_tolerance must be non-negative")
        if self.thread_change_persistence < 1:
            raise ValueError("thread_change_persistence must be >= 1")

    def with_error_budget(self, error_budget: float) -> "FidelityConfig":
        """Return a copy targeting a different error budget."""
        return replace(self, error_budget=error_budget)


class FidelityTypeState:
    """Per-task-type model, residual window and fast-forward state."""

    __slots__ = (
        "task_type",
        "gram",
        "rhs",
        "samples",
        "theta",
        "residuals",
        "committed",
        "commits",
        "reopens",
        "probes",
        "since_probe",
        "probe_period",
        "work_cycles",
        "ff_cycles",
        "fast_forwarded",
        "last_mean",
        "last_half_width",
    )

    def __init__(self, task_type: str) -> None:
        self.task_type = task_type
        # Normal equations of the CPI-space least-squares fit, accumulated
        # over all valid samples of the type (never discarded — a drift
        # re-open keeps the model and lets new samples correct it).
        self.gram = np.zeros((_NUM_FEATURES, _NUM_FEATURES), dtype=np.float64)
        self.rhs = np.zeros(_NUM_FEATURES, dtype=np.float64)
        self.samples = 0
        self.theta: Optional[np.ndarray] = None
        self.residuals: Optional[Deque[float]] = None  # created lazily
        self.committed = False
        self.commits = 0
        self.reopens = 0
        self.probes = 0
        self.since_probe = 0
        self.probe_period = 0  # set by the controller on first use
        self.work_cycles = 0.0  # observed + predicted cycles of the type
        self.ff_cycles = 0.0    # predicted cycles of fast-forwarded instances
        self.fast_forwarded = 0
        self.last_mean: Optional[float] = None
        self.last_half_width: Optional[float] = None

    def predict_cycles(self, features: np.ndarray, instructions: float) -> Optional[float]:
        """Predicted cycles of one instance; ``None`` before any sample."""
        if self.theta is None:
            return None
        return max(1.0, float(features @ self.theta) * instructions)

    def observe(self, features: np.ndarray, cpi: float) -> None:
        """Fold one valid detailed sample into the normal equations."""
        self.gram += np.outer(features, features)
        self.rhs += features * cpi
        self.samples += 1
        # ``lstsq`` rather than ``solve``: with few samples (or constant
        # ratio features) the Gram matrix is singular and the minimum-norm
        # solution is exactly the right degeneracy — mean CPI.
        self.theta = np.linalg.lstsq(self.gram, self.rhs, rcond=None)[0]

    def criterion(self) -> Optional[tuple]:
        """``(|mean|, half_width)`` of the residual window, or ``None``.

        The half-width is the t-based 95% CI of the window mean
        (``ddof=1`` via :func:`repro.core.history.unbiased_std`).
        """
        window = self.residuals
        if window is None or len(window) < 2:
            return None
        values = list(window)
        mean = sum(values) / len(values)
        half_width = (
            t_critical_95(len(values) - 1)
            * unbiased_std(values)
            / math.sqrt(len(values))
        )
        self.last_mean = mean
        self.last_half_width = half_width
        return abs(mean), half_width


@dataclass
class FidelityStatistics(TaskPointStatistics):
    """TaskPoint-shaped counters plus the fidelity controller's state.

    Extends :class:`~repro.core.controller.TaskPointStatistics` so every
    consumer of sampling statistics (``ExperimentResult.from_simulation``,
    the accuracy analysis, result metadata) accepts it unchanged; the extra
    state feeds :meth:`confidence_summary` and :meth:`fidelity_summary`.
    """

    error_budget: float = 0.0
    types: List[FidelityTypeState] = field(default_factory=list)

    def confidence_summary(self, total_cycles: float) -> Optional[Dict[str, object]]:
        """95% CI of the estimated execution time, as a JSON-friendly dict.

        Each type's fast-forwarded cycles carry the relative uncertainty of
        its residual window (``|mean| + half_width`` — bias plus CI, the
        same quantity the commit criterion bounds), combined across types
        as independent errors.  Types that fast-forwarded without a usable
        window fall back to the widest scaled error seen (conservative).
        Returns ``None`` when nothing was fast-forwarded.
        """
        if total_cycles <= 0:
            return None
        contributions: List[float] = []
        pending = 0.0
        widest = 0.0
        for state in self.types:
            if state.ff_cycles <= 0:
                continue
            crit = state.criterion()
            if crit is None:
                pending += state.ff_cycles
                continue
            scaled = crit[0] + crit[1]
            widest = max(widest, scaled)
            contributions.append(state.ff_cycles * scaled)
        if pending > 0:
            contributions.append(pending * (widest if widest > 0 else 1.0))
        if not contributions:
            return None
        # Plain floats throughout: the dict must survive json.dumps (store
        # records, worker frames) and NumPy scalars leak in via ff_cycles.
        half_width = float(math.sqrt(sum(value * value for value in contributions)))
        total_cycles = float(total_cycles)
        return {
            "level": 0.95,
            "half_width_cycles": half_width,
            "half_width_percent": 100.0 * half_width / total_cycles,
            "lower_cycles": total_cycles - half_width,
            "upper_cycles": total_cycles + half_width,
            "num_types": len(self.types),
            "committed_types": sum(1 for s in self.types if s.committed),
        }

    def fidelity_summary(self) -> Dict[str, object]:
        """Controller outcome, as a JSON-friendly dict (result metadata)."""
        return {
            "error_budget": self.error_budget,
            "num_types": len(self.types),
            "committed_types": sum(1 for s in self.types if s.committed),
            "commits": sum(s.commits for s in self.types),
            "reopens": sum(s.reopens for s in self.types),
            "probes": sum(s.probes for s in self.types),
        }


class FidelityController:
    """Mode controller meeting a user-declared error budget online.

    Implements the :class:`repro.sim.modes.ModeController` interface, so it
    plugs into :class:`repro.sim.simulator.TaskSimSimulator` exactly like
    :class:`~repro.core.controller.TaskPointController`.

    Parameters
    ----------
    trace:
        The application trace about to be simulated (or its
        :class:`~repro.trace.columns.TraceColumns`); the per-instance
        signature features of the cost model are read off its columns at
        construction time.
    config:
        Controller parameters; ``None`` selects the defaults (2% budget).
    """

    def __init__(self, trace, config: Optional[FidelityConfig] = None) -> None:
        self.config = config if config is not None else FidelityConfig()
        columns = getattr(trace, "columns", trace)
        signatures = columns.instance_signatures().astype(np.float64)
        if signatures.shape[0]:
            instructions = np.maximum(signatures[:, _SIG_INSTRUCTIONS], 1.0)
            self._features = np.column_stack(
                [
                    np.ones(signatures.shape[0]),
                    signatures[:, _SIG_DETAIL_EVENTS] / instructions,
                    signatures[:, _SIG_MEMORY_ACCESSES] / instructions,
                ]
            )
            self._instructions = instructions
        else:
            self._features = np.zeros((0, _NUM_FEATURES), dtype=np.float64)
            self._instructions = np.zeros(0, dtype=np.float64)
        self._num_records = signatures.shape[0]

        self._states: Dict[str, FidelityTypeState] = {}
        self.stats = FidelityStatistics(error_budget=self.config.error_budget)
        self._total_work = 0.0

        # Per-worker warm-up: full W for a worker's first participation,
        # the short resample budget for already-warmed workers after a
        # thread-count resample (tracked explicitly — see the warm-up
        # accounting note in TaskPointController).
        self._warmup_remaining: Dict[int, int] = {}
        self._warmed_workers: set = set()
        self._sampled_thread_count: Optional[int] = None
        self._thread_change_streak = 0

    # ------------------------------------------------------------------
    # Per-type state and budget allocation
    # ------------------------------------------------------------------
    def _state(self, task_type: str) -> FidelityTypeState:
        state = self._states.get(task_type)
        if state is None:
            state = FidelityTypeState(task_type)
            state.probe_period = self.config.probe_period
            self._states[task_type] = state
            self.stats.types.append(state)
        return state

    def _allowance(self, state: FidelityTypeState) -> float:
        """Per-type error allowance from the running work share.

        ``budget / sqrt(share)``, clamped: the workload-level error is the
        work-weighted combination of per-type biases, so a type carrying a
        small share of the cycles may carry a proportionally wider relative
        error without moving the total.  The dominant type (share -> 1) is
        held to the raw budget.
        """
        budget = self.config.error_budget
        if self._total_work <= 0 or state.work_cycles <= 0:
            return budget
        share = max(state.work_cycles / self._total_work, self.config.share_floor)
        return min(budget / math.sqrt(share), budget * self.config.allowance_cap)

    def _update_commitment(self, state: FidelityTypeState, was_probe: bool) -> None:
        """Re-evaluate the commit / drift criterion after a valid sample."""
        if state.samples < self.config.min_samples:
            return
        window = state.residuals
        if window is None or len(window) < self.config.min_residuals:
            return
        crit = state.criterion()
        if crit is None:
            return
        mean_abs, half_width = crit
        allowance = self._allowance(state)
        if state.committed:
            if (
                mean_abs > allowance
                or mean_abs + half_width > self.config.reopen_factor * allowance
            ):
                # Drift: the window shifted clearly outside the allowance.
                # Re-open sampling for this type only — model and counters
                # are kept, new samples steer the fit back.
                state.committed = False
                state.reopens += 1
                state.probe_period = self.config.probe_period
                self.stats.resamples += 1
                self.stats.resample_reasons[ResampleReason.DRIFT] += 1
            elif was_probe and mean_abs + half_width <= allowance:
                # Clean probe: stretch the probe spacing.
                state.probe_period = min(
                    self.config.max_probe_period, state.probe_period * 2
                )
        elif mean_abs + half_width <= allowance:
            state.committed = True
            state.commits += 1
            state.probe_period = self.config.probe_period
            state.since_probe = 0
            if state.commits == 1:
                self.stats.transitions_to_fast += 1

    # ------------------------------------------------------------------
    # Warm-up accounting (explicit initial-vs-resample budgets)
    # ------------------------------------------------------------------
    def _remaining_warmup(self, worker_id: int) -> int:
        remaining = self._warmup_remaining.get(worker_id)
        if remaining is None:
            remaining = (
                self.config.resample_warmup_instances
                if worker_id in self._warmed_workers
                else self.config.warmup_instances
            )
            self._warmup_remaining[worker_id] = remaining
        return remaining

    def _thread_count_changed(self, active_workers: int) -> bool:
        """TaskPoint's Figure 4a trigger with tolerance and persistence."""
        if not self.config.resample_on_thread_change:
            return False
        if not self._sampled_thread_count:
            return False
        change = (
            abs(active_workers - self._sampled_thread_count)
            / self._sampled_thread_count
        )
        if change > self.config.thread_change_tolerance:
            self._thread_change_streak += 1
        else:
            self._thread_change_streak = 0
        return self._thread_change_streak >= self.config.thread_change_persistence

    def _resample_thread_change(self) -> None:
        """Re-open every type after a persistent thread-count change.

        The contention regime the models were fitted under changed, so
        committed types go back to sampling — but the models are *kept*
        (new samples shift the fit) and the residual windows are cleared so
        stale-regime residuals cannot immediately re-commit a type.
        """
        self.stats.resamples += 1
        self.stats.resample_reasons[ResampleReason.THREAD_COUNT_CHANGE] += 1
        for state in self._states.values():
            state.committed = False
            state.probe_period = self.config.probe_period
            state.since_probe = 0
            if state.residuals is not None:
                state.residuals.clear()
        self._sampled_thread_count = None
        self._thread_change_streak = 0
        # Already-warmed workers re-warm with the short resample budget;
        # workers first participating later still get the full W.
        self._warmup_remaining.clear()

    # ------------------------------------------------------------------
    # ModeController interface
    # ------------------------------------------------------------------
    def choose_mode(
        self,
        instance: TaskInstance,
        worker_id: int,
        active_workers: int,
        current_cycle: float,
    ) -> ModeDecision:
        """Decide how the simulator should execute ``instance``."""
        instance_id = instance.instance_id
        state = self._state(instance.task_type.name)

        if self._remaining_warmup(worker_id) > 0:
            return DETAILED_WARMUP_DECISION

        if self._thread_count_changed(active_workers):
            self._resample_thread_change()
            return self._issue_detailed(worker_id)

        if not 0 <= instance_id < self._num_records:
            # Not part of the profiled trace: no signature features exist,
            # so the instance cannot be predicted — simulate it in detail.
            return self._issue_detailed(worker_id)

        if state.committed and state.since_probe < state.probe_period:
            features = self._features[instance_id]
            instructions = self._instructions[instance_id]
            predicted = state.predict_cycles(features, instructions)
            if predicted is not None:
                state.since_probe += 1
                state.fast_forwarded += 1
                state.work_cycles += predicted
                state.ff_cycles += predicted
                self._total_work += predicted
                self.stats.fast_forwarded += 1
                if self._sampled_thread_count is None:
                    self._sampled_thread_count = active_workers
                return burst_decision(instructions / predicted)

        # Sampling (not committed) or a detailed probe of a committed type.
        if state.committed:
            state.since_probe = 0
            state.probes += 1
        return self._issue_detailed(worker_id)

    def _issue_detailed(self, worker_id: int) -> ModeDecision:
        if self._remaining_warmup(worker_id) > 0:
            return DETAILED_WARMUP_DECISION
        return DETAILED_DECISION

    def notify_completion(self, info: CompletionInfo) -> None:
        """Fold a completed detailed instance into its type's model."""
        if info.mode is not SimulationMode.DETAILED:
            return  # fast-forwarded: already accounted at decision time
        state = self._state(info.instance.task_type.name)
        cycles = max(float(info.cycles), 1.0)
        state.work_cycles += cycles
        self._total_work += cycles

        worker_id = info.worker_id
        self._warmed_workers.add(worker_id)
        if info.is_warmup:
            self.stats.warmup_instances += 1
            remaining = self._remaining_warmup(worker_id)
            if remaining > 0:
                self._warmup_remaining[worker_id] = remaining - 1
            return

        instance_id = info.instance.instance_id
        if not 0 <= instance_id < self._num_records:
            self.stats.invalid_samples += 1
            return

        features = self._features[instance_id]
        instructions = self._instructions[instance_id]
        was_probe = state.committed
        predicted = state.predict_cycles(features, instructions)
        if predicted is not None:
            if state.residuals is None:
                state.residuals = deque(maxlen=self.config.residual_window)
            state.residuals.append((predicted - cycles) / cycles)
        state.observe(features, cycles / instructions)
        self.stats.valid_samples += 1
        if self._sampled_thread_count is None:
            self._sampled_thread_count = info.active_workers
        self._update_commitment(state, was_probe)
