"""Sampling policies: when to resample a fast-forwarding simulation.

The sampling *mechanism* (warm-up, histories, fast-forward) is independent of
the *policy* deciding when a simulation running in fast-forward mode should be
resampled (paper §III).  Two policies are evaluated in the paper:

* **periodic sampling** — resample after a thread has fast-forwarded P task
  instances, and
* **lazy sampling** — never resample on account of elapsed instances
  (P = ∞); resampling still happens for correctness reasons (new task type,
  thread-count change).

As an extension beyond the paper this module also provides an **adaptive**
policy that shortens the period when the per-type IPC samples are noisy and
lengthens it when they are stable.
"""

from __future__ import annotations

import abc
from typing import Optional


class SamplingPolicy(abc.ABC):
    """Decides whether a worker's fast-forward progress warrants resampling."""

    #: Human-readable policy name used in reports.
    name: str = "abstract"

    @abc.abstractmethod
    def should_resample(self, worker_fast_forwarded: int) -> bool:
        """Return ``True`` if a worker that fast-forwarded this many instances
        since the last sampling interval should trigger resampling."""

    def observe_dispersion(self, coefficient_of_variation: float) -> None:
        """Receive the current dispersion of the IPC samples (optional hook).

        Policies that adapt their period (see
        :class:`AdaptiveSamplingPolicy`) override this; the default is a
        no-op.
        """

    def reset(self) -> None:
        """Called when a resampling interval completes (optional hook)."""


class PeriodicSamplingPolicy(SamplingPolicy):
    """Resample after every P fast-forwarded task instances per thread."""

    name = "periodic"

    def __init__(self, period: int) -> None:
        if period < 1:
            raise ValueError("sampling period must be >= 1")
        self.period = period

    def should_resample(self, worker_fast_forwarded: int) -> bool:
        """Trigger once a worker has fast-forwarded ``period`` instances."""
        return worker_fast_forwarded >= self.period


class LazySamplingPolicy(SamplingPolicy):
    """Never resample based on elapsed instances (infinite period)."""

    name = "lazy"

    def should_resample(self, worker_fast_forwarded: int) -> bool:
        """Lazy sampling never triggers period-based resampling."""
        return False


class AdaptiveSamplingPolicy(SamplingPolicy):
    """Extension: adapt the sampling period to the observed IPC stability.

    The policy starts from ``initial_period`` and, every time the controller
    reports the dispersion (coefficient of variation) of the recorded valid
    samples, nudges the period towards ``min_period`` when dispersion exceeds
    ``target_dispersion`` and towards ``max_period`` when it is below.  This
    trades speedup for accuracy only on benchmarks that need it (e.g. dedup,
    freqmine) instead of globally.
    """

    name = "adaptive"

    def __init__(
        self,
        initial_period: int = 250,
        min_period: int = 50,
        max_period: int = 2000,
        target_dispersion: float = 0.05,
    ) -> None:
        if not (1 <= min_period <= initial_period <= max_period):
            raise ValueError("periods must satisfy 1 <= min <= initial <= max")
        if target_dispersion <= 0:
            raise ValueError("target_dispersion must be positive")
        self.period = initial_period
        self.min_period = min_period
        self.max_period = max_period
        self.target_dispersion = target_dispersion

    def should_resample(self, worker_fast_forwarded: int) -> bool:
        """Trigger once a worker has fast-forwarded the current period."""
        return worker_fast_forwarded >= self.period

    def observe_dispersion(self, coefficient_of_variation: float) -> None:
        """Shrink the period when samples are noisy, grow it when stable."""
        if coefficient_of_variation > self.target_dispersion:
            self.period = max(self.min_period, int(self.period * 0.5))
        else:
            self.period = min(self.max_period, int(self.period * 1.25) + 1)


def make_policy(sampling_period: Optional[int]) -> SamplingPolicy:
    """Create the policy matching a :class:`TaskPointConfig` period value.

    ``None`` selects lazy sampling; any positive integer selects periodic
    sampling with that period.
    """
    if sampling_period is None:
        return LazySamplingPolicy()
    return PeriodicSamplingPolicy(sampling_period)
