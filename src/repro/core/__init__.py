"""TaskPoint: sampled simulation of task-based programs.

This package implements the paper's primary contribution.  TaskPoint treats
task instances as sampling units: a small number of instances of each task
type are simulated in detail (to warm the simulated micro-architecture and to
measure per-type IPC), and the remaining instances are *fast-forwarded* at
the average IPC recorded for their task type, scaled by each instance's
dynamic instruction count.

The implementation separates the **sampling mechanism** (histories, warm-up,
validity of samples, fast-forward IPC estimation, resampling triggers) from
the **sampling policy** (when to resample a simulation running in
fast-forward mode):

* :class:`~repro.core.config.TaskPointConfig` collects the model parameters
  W (warm-up), H (history size) and P (sampling period),
* :class:`~repro.core.history.SampleHistory` and
  :class:`~repro.core.history.TaskTypeState` hold the per-type IPC histories
  (valid samples and all samples),
* :class:`~repro.core.fastforward.FastForwardEstimator` predicts the cycles
  of a fast-forwarded instance (``C_i = I_i / IPC_T``),
* :mod:`~repro.core.policies` provides the periodic and lazy sampling
  policies of the paper plus an adaptive extension,
* :class:`~repro.core.controller.TaskPointController` plugs all of the above
  into the simulator's mode-controller interface.

Typical use::

    from repro.core import sampled_simulation
    result = sampled_simulation(trace, num_threads=64)
"""

from repro.core.config import TaskPointConfig
from repro.core.history import SampleHistory, TaskTypeState
from repro.core.fastforward import FastForwardEstimate, FastForwardEstimator
from repro.core.policies import (
    AdaptiveSamplingPolicy,
    LazySamplingPolicy,
    PeriodicSamplingPolicy,
    SamplingPolicy,
    make_policy,
)
from repro.core.controller import ResampleReason, SamplingPhase, TaskPointController, TaskPointStatistics
from repro.core.fidelity import (
    FidelityConfig,
    FidelityController,
    FidelityStatistics,
)
from repro.core.stratified import (
    StratifiedConfig,
    StratifiedController,
    StratifiedStatistics,
)
from repro.core.api import (
    compare_with_detailed,
    fidelity_simulation,
    sampled_simulation,
    stratified_simulation,
)

__all__ = [
    "TaskPointConfig",
    "SampleHistory",
    "TaskTypeState",
    "FastForwardEstimate",
    "FastForwardEstimator",
    "SamplingPolicy",
    "PeriodicSamplingPolicy",
    "LazySamplingPolicy",
    "AdaptiveSamplingPolicy",
    "make_policy",
    "TaskPointController",
    "TaskPointStatistics",
    "SamplingPhase",
    "ResampleReason",
    "StratifiedConfig",
    "StratifiedController",
    "StratifiedStatistics",
    "FidelityConfig",
    "FidelityController",
    "FidelityStatistics",
    "sampled_simulation",
    "stratified_simulation",
    "fidelity_simulation",
    "compare_with_detailed",
]
