"""Per-task-type IPC sample histories, plus variance and CI estimators.

For each task type TaskPoint maintains two FIFO buffers of size H (paper
§III-B):

* the **history of valid samples** — IPCs of instances simulated in detail
  after the simulation was properly warmed; this is the history normally used
  to fast-forward, and the one discarded on resampling, and
* the **history of all samples** — IPCs of every instance simulated in
  detail, warmed or not; it serves as a fallback for rare task types that
  never accumulate enough valid samples.

Two dispersion estimators coexist, and which callers use which matters:

* :meth:`SampleHistory.coefficient_of_variation` is the **legacy biased**
  (``ddof=0``) estimator.  Its callers are
  :meth:`repro.core.controller.TaskPointController.notify_completion` (which
  feeds the dispersion to ``SamplingPolicy.observe_dispersion``) and
  :meth:`HistoryTable.mean_dispersion`; both predate the stratified engine
  and their arithmetic is pinned bit-identical by the golden fingerprints in
  ``tests/test_golden_values.py``, so the divisor stays ``n``.
* :func:`unbiased_variance` / :func:`unbiased_coefficient_of_variation` are
  the **unbiased** (``ddof=1``) estimators used by the stratified sampling
  engine (:mod:`repro.core.stratified`) and the confidence-interval helpers
  below.  New code should use these.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence


class SampleHistory:
    """A FIFO buffer of the most recent IPC samples of one task type.

    The mean (queried by the fast-forward estimator on *every* burst-mode
    decision) is maintained as a running sum while the buffer is filling and
    cached between mutations, making :meth:`mean` O(1) on the hot path.  The
    sum is deliberately **not** updated incrementally across evictions
    (``running -= evicted; running += new`` changes the floating-point
    rounding sequence): when the buffer is full, the cached sum is recomputed
    in buffer order, which keeps every mean bit-identical to the naive
    ``sum(samples) / len(samples)`` the estimator historically computed.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("history capacity must be >= 1")
        self.capacity = capacity
        self._samples: Deque[float] = deque(maxlen=capacity)
        self._sum = 0.0
        self._cov: Optional[float] = None
        self._cov_valid = False

    def add(self, ipc: float) -> None:
        """Append a sample; the oldest sample is dropped when full."""
        if ipc <= 0:
            raise ValueError(f"IPC samples must be positive, got {ipc}")
        if len(self._samples) == self.capacity:
            # Eviction: recompute the sum in buffer order (see class note).
            self._samples.append(ipc)
            total = 0.0
            for value in self._samples:
                total += value
            self._sum = total
        else:
            self._samples.append(ipc)
            self._sum += ipc
        self._cov_valid = False

    def clear(self) -> None:
        """Discard all samples (used when the simulation is resampled)."""
        self._samples.clear()
        self._sum = 0.0
        self._cov_valid = False

    @property
    def samples(self) -> List[float]:
        """Current samples, oldest first."""
        return list(self._samples)

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def is_empty(self) -> bool:
        """``True`` when no samples are recorded."""
        return not self._samples

    @property
    def is_full(self) -> bool:
        """``True`` when the buffer holds ``capacity`` samples."""
        return len(self._samples) == self.capacity

    def mean(self) -> Optional[float]:
        """Average IPC of the recorded samples, or ``None`` if empty."""
        if not self._samples:
            return None
        return self._sum / len(self._samples)

    def coefficient_of_variation(self) -> Optional[float]:
        """Relative dispersion (stddev / mean) of the samples, if >= 2 samples.

        This is the **legacy biased** estimator (population variance,
        ``ddof=0``): its callers — the TaskPoint controller's dispersion feed
        to the sampling policy and :meth:`HistoryTable.mean_dispersion` — are
        pinned bit-identical by the golden fingerprints, so the divisor stays
        ``n``.  The stratified engine uses the unbiased module-level
        :func:`unbiased_coefficient_of_variation` instead.

        Return policy (explicit, so callers can tell the cases apart):

        * fewer than 2 samples — ``None`` (dispersion undefined),
        * zero mean — ``math.inf`` (infinite *relative* dispersion).  This is
          unreachable through :meth:`add`, which rejects non-positive IPCs,
          but generic sample sets (e.g. signed residuals) hit it.

        Cached between mutations; the underlying arithmetic is unchanged.
        """
        if self._cov_valid:
            return self._cov
        if len(self._samples) < 2:
            self._cov = None
        else:
            mean = self._sum / len(self._samples)
            if mean == 0:
                self._cov = math.inf
            else:
                variance = sum(
                    (value - mean) ** 2 for value in self._samples
                ) / len(self._samples)
                self._cov = variance ** 0.5 / mean
        self._cov_valid = True
        return self._cov


@dataclass
class TaskTypeState:
    """Sampling state of one task type."""

    task_type: str
    valid: SampleHistory
    all: SampleHistory
    detailed_count: int = 0
    fast_forwarded_count: int = 0

    @classmethod
    def create(cls, task_type: str, history_size: int) -> "TaskTypeState":
        """Create fresh (empty) state for ``task_type``."""
        return cls(
            task_type=task_type,
            valid=SampleHistory(history_size),
            all=SampleHistory(history_size),
        )

    @property
    def is_fully_sampled(self) -> bool:
        """``True`` when the history of valid samples is full."""
        return self.valid.is_full

    @property
    def is_rare(self) -> bool:
        """``True`` when the type has been observed but not fully sampled.

        The paper calls task types that occur too infrequently to fill their
        valid history within a sampling interval *rare task types*.
        """
        return not self.valid.is_full

    def record_detailed(self, ipc: float, valid: bool) -> None:
        """Record the IPC of an instance simulated in detail."""
        self.all.add(ipc)
        if valid:
            self.valid.add(ipc)
        self.detailed_count += 1

    def record_fast_forward(self) -> None:
        """Record that one instance of this type was fast-forwarded."""
        self.fast_forwarded_count += 1

    def fast_forward_ipc(self) -> Optional[float]:
        """IPC to use when fast-forwarding an instance of this type.

        Preference order (paper §III-B): mean of the valid history, then mean
        of the history of all samples, then ``None`` (impossible to
        fast-forward — the caller must trigger resampling).
        """
        ipc = self.valid.mean()
        if ipc is not None:
            return ipc
        return self.all.mean()


class HistoryTable:
    """All per-task-type sampling state of one simulation."""

    def __init__(self, history_size: int) -> None:
        if history_size < 1:
            raise ValueError("history_size must be >= 1")
        self.history_size = history_size
        self._types: Dict[str, TaskTypeState] = {}

    def state(self, task_type: str) -> TaskTypeState:
        """Return (creating if necessary) the state of ``task_type``."""
        state = self._types.get(task_type)
        if state is None:
            state = TaskTypeState.create(task_type, self.history_size)
            self._types[task_type] = state
        return state

    def known(self, task_type: str) -> bool:
        """``True`` if ``task_type`` has been observed before."""
        return task_type in self._types

    @property
    def states(self) -> List[TaskTypeState]:
        """All per-type states, in order of first observation."""
        return list(self._types.values())

    def all_fully_sampled(self) -> bool:
        """``True`` when every observed type's valid history is full."""
        return bool(self._types) and all(
            state.is_fully_sampled for state in self._types.values()
        )

    def clear_valid(self) -> None:
        """Discard the valid histories of all types (on resampling)."""
        for state in self._types.values():
            state.valid.clear()

    def mean_dispersion(self) -> Optional[float]:
        """Average coefficient of variation across types with enough samples.

        Uses the legacy biased (``ddof=0``) per-history estimator; see
        :meth:`SampleHistory.coefficient_of_variation`.
        """
        values = [
            state.valid.coefficient_of_variation()
            for state in self._types.values()
        ]
        values = [value for value in values if value is not None]
        if not values:
            return None
        return sum(values) / len(values)


# ----------------------------------------------------------------------
# Unbiased estimators and confidence-interval math (stratified engine)
# ----------------------------------------------------------------------

#: Two-sided 95% Student-t critical values for 1..30 degrees of freedom;
#: beyond that the normal quantile 1.96 is used.  Embedded because the
#: environment has no scipy and the stratified CI only ever needs the 95%
#: level (the level the paper-style accuracy tables report).
_T95 = (
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
)

_Z95 = 1.959964


def t_critical_95(degrees_of_freedom: int) -> float:
    """Two-sided 95% Student-t critical value for ``degrees_of_freedom``.

    Falls back to the normal quantile above 30 degrees of freedom; raises
    for non-positive degrees of freedom (no CI exists from one sample).
    """
    if degrees_of_freedom < 1:
        raise ValueError("t critical value requires >= 1 degree of freedom")
    if degrees_of_freedom <= len(_T95):
        return _T95[degrees_of_freedom - 1]
    return _Z95


def unbiased_variance(values: Sequence[float]) -> float:
    """Unbiased (``ddof=1``) sample variance; requires at least 2 samples."""
    n = len(values)
    if n < 2:
        raise ValueError("unbiased variance requires at least 2 samples")
    mean = sum(values) / n
    return sum((value - mean) ** 2 for value in values) / (n - 1)


def unbiased_std(values: Sequence[float]) -> float:
    """Unbiased-variance sample standard deviation (``ddof=1``)."""
    return math.sqrt(unbiased_variance(values))


def unbiased_coefficient_of_variation(values: Sequence[float]) -> Optional[float]:
    """Relative dispersion stddev/mean with the unbiased variance (ddof=1).

    Return policy mirrors :meth:`SampleHistory.coefficient_of_variation`:
    ``None`` for fewer than 2 samples (undefined), ``math.inf`` for a
    zero-mean sample set (infinite relative dispersion) — the two cases are
    deliberately distinguishable.
    """
    if len(values) < 2:
        return None
    mean = sum(values) / len(values)
    if mean == 0:
        return math.inf
    return unbiased_std(values) / mean


@dataclass(frozen=True)
class ConfidenceInterval:
    """A two-sided confidence interval around a sample mean."""

    mean: float
    half_width: float
    level: float = 0.95

    @property
    def lower(self) -> float:
        """Lower bound of the interval."""
        return self.mean - self.half_width

    @property
    def upper(self) -> float:
        """Upper bound of the interval."""
        return self.mean + self.half_width

    def covers(self, value: float) -> bool:
        """``True`` when ``value`` lies inside the interval (inclusive)."""
        return self.lower <= value <= self.upper


def mean_confidence_interval(values: Sequence[float]) -> ConfidenceInterval:
    """95% Student-t confidence interval for the mean of ``values``.

    Uses the unbiased (``ddof=1``) variance; requires at least 2 samples.
    """
    n = len(values)
    if n < 2:
        raise ValueError("a confidence interval requires at least 2 samples")
    mean = sum(values) / n
    half_width = t_critical_95(n - 1) * unbiased_std(values) / math.sqrt(n)
    return ConfidenceInterval(mean=mean, half_width=half_width)
