"""TaskPoint model parameters.

The paper's sensitivity analysis (Section V-A, Figure 6) determines the
default values used for the evaluation: a warm-up interval of W = 2 task
instances per thread, a sample-history size of H = 4 and a sampling period of
P = 250 for periodic sampling (P = ∞, i.e. ``None`` here, selects lazy
sampling).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional


@dataclass(frozen=True)
class TaskPointConfig:
    """Configuration of the TaskPoint sampling methodology.

    Attributes
    ----------
    warmup_instances:
        W — number of task instances each thread simulates in detail at
        simulation start purely to warm micro-architectural state.
    history_size:
        H — capacity of the per-task-type FIFO histories (both the history of
        valid samples and the history of all samples).
    sampling_period:
        P — number of task instances a thread may fast-forward before the
        periodic sampling policy triggers resampling.  ``None`` means an
        infinite period, i.e. lazy sampling.
    rare_type_cutoff:
        Number of consecutive task instances every thread must simulate
        without encountering an instance of a not-yet-fully-sampled (rare)
        task type before sampling is cut off (paper uses 5).
    resample_warmup_instances:
        Number of detailed instances each thread simulates to re-warm state
        before resampling measurements begin (paper uses 1).
    resample_on_new_task_type:
        Trigger resampling when fast-forward encounters a task type whose
        histories are both empty (Figure 4b).
    resample_on_thread_change:
        Trigger resampling when the number of threads participating in task
        execution changes relative to when the current samples were taken
        (Figure 4a).
    thread_change_tolerance:
        Relative change in the number of active threads required to trigger
        the thread-change resample (0.5 means the active-thread count must
        grow or shrink by at least 50%).  Small transient fluctuations at
        task boundaries are thereby ignored.
    thread_change_persistence:
        Number of consecutive fast-forward decisions that must observe the
        changed thread count before resampling is triggered.  This filters
        out the momentary dips in available parallelism that occur at task
        dependency boundaries without affecting genuine phase changes.
    """

    warmup_instances: int = 2
    history_size: int = 4
    sampling_period: Optional[int] = 250
    rare_type_cutoff: int = 5
    resample_warmup_instances: int = 1
    resample_on_new_task_type: bool = True
    resample_on_thread_change: bool = True
    thread_change_tolerance: float = 0.5
    thread_change_persistence: int = 5

    def __post_init__(self) -> None:
        if self.warmup_instances < 0:
            raise ValueError("warmup_instances must be non-negative")
        if self.history_size < 1:
            raise ValueError("history_size must be >= 1")
        if self.sampling_period is not None and self.sampling_period < 1:
            raise ValueError("sampling_period must be >= 1 or None for lazy sampling")
        if self.rare_type_cutoff < 1:
            raise ValueError("rare_type_cutoff must be >= 1")
        if self.resample_warmup_instances < 0:
            raise ValueError("resample_warmup_instances must be non-negative")
        if self.thread_change_tolerance < 0:
            raise ValueError("thread_change_tolerance must be non-negative")
        if self.thread_change_persistence < 1:
            raise ValueError("thread_change_persistence must be >= 1")

    # ------------------------------------------------------------------
    @property
    def is_lazy(self) -> bool:
        """``True`` when the sampling period is infinite (lazy sampling)."""
        return self.sampling_period is None

    def with_period(self, sampling_period: Optional[int]) -> "TaskPointConfig":
        """Return a copy with a different sampling period."""
        return replace(self, sampling_period=sampling_period)

    def with_warmup(self, warmup_instances: int) -> "TaskPointConfig":
        """Return a copy with a different warm-up interval."""
        return replace(self, warmup_instances=warmup_instances)

    def with_history(self, history_size: int) -> "TaskPointConfig":
        """Return a copy with a different history size."""
        return replace(self, history_size=history_size)


def periodic_config(
    sampling_period: int = 250,
    warmup_instances: int = 2,
    history_size: int = 4,
) -> TaskPointConfig:
    """The paper's periodic-sampling configuration (W=2, H=4, P=250)."""
    return TaskPointConfig(
        warmup_instances=warmup_instances,
        history_size=history_size,
        sampling_period=sampling_period,
    )


def lazy_config(warmup_instances: int = 2, history_size: int = 4) -> TaskPointConfig:
    """The paper's lazy-sampling configuration (W=2, H=4, P=∞)."""
    return TaskPointConfig(
        warmup_instances=warmup_instances,
        history_size=history_size,
        sampling_period=None,
    )
