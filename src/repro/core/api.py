"""Convenience API for running TaskPoint-sampled simulations.

These helpers wire the TaskPoint controller into the TaskSim-style simulator
and provide the comparison against full detailed simulation that the paper's
evaluation (and this repository's benchmark harness) is built on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.arch.config import ArchitectureConfig
from repro.core.config import TaskPointConfig
from repro.core.controller import TaskPointController, TaskPointStatistics
from repro.core.fidelity import FidelityConfig, FidelityController
from repro.core.policies import SamplingPolicy
from repro.core.stratified import StratifiedConfig, StratifiedController
from repro.sim.results import SimulationResult
from repro.sim.simulator import TaskSimSimulator
from repro.trace.trace import ApplicationTrace


def sampled_simulation(
    trace: ApplicationTrace,
    num_threads: int = 8,
    architecture: Optional[ArchitectureConfig] = None,
    config: Optional[TaskPointConfig] = None,
    policy: Optional[SamplingPolicy] = None,
    scheduler: str = "fifo",
    scheduler_seed: int = 0,
) -> SimulationResult:
    """Simulate ``trace`` with TaskPoint sampling and return the result.

    The TaskPoint statistics of the run (number of warm-up instances, valid
    samples, fast-forwarded instances, resamples, ...) are attached to the
    result's metadata under ``"taskpoint"``.
    """
    controller = TaskPointController(config=config, policy=policy)
    simulator = TaskSimSimulator(
        architecture=architecture, scheduler=scheduler, scheduler_seed=scheduler_seed
    )
    result = simulator.run(trace, num_threads=num_threads, controller=controller)
    result.metadata["taskpoint"] = controller.stats
    return result


def stratified_simulation(
    trace: ApplicationTrace,
    num_threads: int = 8,
    architecture: Optional[ArchitectureConfig] = None,
    config: Optional[StratifiedConfig] = None,
    scheduler: str = "fifo",
    scheduler_seed: int = 0,
) -> SimulationResult:
    """Simulate ``trace`` with two-phase stratified sampling.

    Like :func:`sampled_simulation`, the run's sampling statistics are
    attached to the result metadata under ``"taskpoint"`` (the stratified
    statistics are a superset of TaskPoint's).  Additionally, the 95%
    confidence interval of the execution-time estimate — the headline output
    of the stratified engine — is attached under ``"confidence"`` (``None``
    when nothing was fast-forwarded, i.e. the estimate is exact).
    """
    controller = StratifiedController(trace, config=config)
    simulator = TaskSimSimulator(
        architecture=architecture, scheduler=scheduler, scheduler_seed=scheduler_seed
    )
    result = simulator.run(trace, num_threads=num_threads, controller=controller)
    result.metadata["taskpoint"] = controller.stats
    result.metadata["confidence"] = controller.stats.confidence_summary(
        result.total_cycles
    )
    return result


def fidelity_simulation(
    trace: ApplicationTrace,
    num_threads: int = 8,
    architecture: Optional[ArchitectureConfig] = None,
    config: Optional[FidelityConfig] = None,
    scheduler: str = "fifo",
    scheduler_seed: int = 0,
) -> SimulationResult:
    """Simulate ``trace`` under the online error-budget fidelity controller.

    Each task type is switched between detailed simulation and fast-forward
    on the fly so that the run's estimated relative error stays within
    ``config.error_budget``.  As with :func:`stratified_simulation`, the
    sampling statistics land in the result metadata under ``"taskpoint"``
    and the 95% confidence interval of the execution-time estimate under
    ``"confidence"`` (``None`` when nothing was fast-forwarded).
    """
    controller = FidelityController(trace, config=config)
    simulator = TaskSimSimulator(
        architecture=architecture, scheduler=scheduler, scheduler_seed=scheduler_seed
    )
    result = simulator.run(trace, num_threads=num_threads, controller=controller)
    result.metadata["taskpoint"] = controller.stats
    result.metadata["confidence"] = controller.stats.confidence_summary(
        result.total_cycles
    )
    return result


@dataclass(frozen=True)
class SampledVersusDetailed:
    """Outcome of comparing a sampled simulation with full detailed simulation."""

    benchmark: str
    architecture: str
    num_threads: int
    detailed: SimulationResult
    sampled: SimulationResult
    taskpoint_stats: TaskPointStatistics

    @property
    def error(self) -> float:
        """Absolute relative execution-time error (fraction)."""
        return self.sampled.error_versus(self.detailed)

    @property
    def error_percent(self) -> float:
        """Absolute relative execution-time error in percent."""
        return self.error * 100.0

    @property
    def speedup(self) -> float:
        """Deterministic (cost-model) simulation speedup."""
        return self.sampled.speedup_versus(self.detailed)

    @property
    def wall_speedup(self) -> Optional[float]:
        """Wall-clock simulation speedup, if both runs were timed."""
        return self.sampled.wall_speedup_versus(self.detailed)


def compare_with_detailed(
    trace: ApplicationTrace,
    num_threads: int = 8,
    architecture: Optional[ArchitectureConfig] = None,
    config: Optional[TaskPointConfig] = None,
    policy: Optional[SamplingPolicy] = None,
    scheduler: str = "fifo",
    scheduler_seed: int = 0,
) -> SampledVersusDetailed:
    """Run full detailed and TaskPoint-sampled simulations of ``trace``.

    This is the core experiment of the paper: the detailed run provides the
    reference execution time and the reference simulation cost; the sampled
    run provides the estimate whose error and speedup are reported.
    """
    simulator = TaskSimSimulator(
        architecture=architecture, scheduler=scheduler, scheduler_seed=scheduler_seed
    )
    detailed = simulator.run(trace, num_threads=num_threads, controller=None)
    controller = TaskPointController(config=config, policy=policy)
    sampled = simulator.run(trace, num_threads=num_threads, controller=controller)
    sampled.metadata["taskpoint"] = controller.stats
    return SampledVersusDetailed(
        benchmark=trace.name,
        architecture=simulator.architecture.name,
        num_threads=num_threads,
        detailed=detailed,
        sampled=sampled,
        taskpoint_stats=controller.stats,
    )
