"""Accurate fast-forwarding of task instances.

During fast-forward, the duration of a task instance is calculated at the
beginning of its execution from the mean IPC of its task type's sample
history and the instance's dynamic instruction count (paper §IV):

    C_i = I_i / IPC_T

This captures the two effects the paper identifies as essential for
dynamically scheduled programs: different task types progress at different
rates, and instances of the same type with different input sizes take
proportionally different times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.history import HistoryTable
from repro.trace.records import TaskTraceRecord


@dataclass(frozen=True)
class FastForwardEstimate:
    """Estimated fast-forward timing of one task instance."""

    ipc: float
    cycles: float
    used_fallback: bool  # True when the history of all samples was used


class FastForwardEstimator:
    """Predicts burst-mode IPC and cycle counts from the sample histories."""

    def __init__(self, histories: HistoryTable) -> None:
        self.histories = histories

    def estimate(self, record: TaskTraceRecord) -> Optional[FastForwardEstimate]:
        """Return the fast-forward estimate for ``record``.

        Returns ``None`` when neither history of the instance's task type
        holds any sample, in which case the caller must fall back to detailed
        simulation (and trigger resampling).
        """
        return self.estimate_type(record.task_type, record.instructions)

    def estimate_type(
        self, task_type: str, instructions: int
    ) -> Optional[FastForwardEstimate]:
        """Estimate from scalars (hot path: no record view required)."""
        state = self.histories.state(task_type)
        ipc = state.valid.mean()
        used_fallback = False
        if ipc is None:
            ipc = state.all.mean()
            used_fallback = True
        if ipc is None or ipc <= 0:
            return None
        cycles = max(1.0, instructions / ipc)
        return FastForwardEstimate(ipc=ipc, cycles=cycles, used_fallback=used_fallback)
