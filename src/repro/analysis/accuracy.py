"""Execution-time error and simulation speedup (Figures 7-10, summary).

The paper's accuracy metric is the absolute relative difference between the
execution time predicted by the sampled simulation and the execution time of
a full detailed simulation of the same workload, architecture and thread
count; its performance metric is the simulation speedup of the sampled run
over the detailed run.  This module expresses those experiment pairs as
:class:`~repro.exp.spec.ExperimentSpec` grids submitted to the experiment
orchestrator (:func:`repro.exp.run_experiments`), which deduplicates the
shared detailed baselines, optionally runs the grid on a process pool and
caches every result persistently.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.arch.config import ArchitectureConfig
from repro.core.api import compare_with_detailed
from repro.core.config import TaskPointConfig
from repro.exp.backends import ExecutionBackend, Store, run_experiments
from repro.exp.spec import ExperimentResult, ExperimentSpec, SamplingConfig
from repro.trace.trace import ApplicationTrace


@dataclass(frozen=True)
class AccuracyResult:
    """Error/speedup of one (benchmark, architecture, threads) experiment.

    The ``ci_*`` fields are only populated for sampling modes that report a
    confidence interval (the stratified and fidelity engines); they stay
    ``None`` for TaskPoint's periodic/lazy modes.  ``ci_covers_detailed`` is
    the headline check — whether the reported 95% interval contains the
    detailed-mode execution time the sampled run is estimating.  The
    ``error_budget_percent``/``within_budget`` pair is populated only for
    fidelity-mode runs: the budget the controller was asked to meet and
    whether the achieved error met it.
    """

    benchmark: str
    architecture: str
    num_threads: int
    error_percent: float
    speedup: float
    wall_speedup: Optional[float]
    detailed_cycles: float
    sampled_cycles: float
    detailed_fraction: float
    resamples: int
    ci_half_width_percent: Optional[float] = None
    ci_lower_cycles: Optional[float] = None
    ci_upper_cycles: Optional[float] = None
    ci_covers_detailed: Optional[bool] = None
    error_budget_percent: Optional[float] = None
    within_budget: Optional[bool] = None


@dataclass(frozen=True)
class AccuracySummary:
    """Aggregate over a set of accuracy results (one figure's 'average' bar).

    ``ci_coverage`` and ``average_ci_half_width_percent`` aggregate the
    confidence intervals of results that carry one; both are ``None`` when no
    result in the set does (periodic/lazy grids).  ``budget_hit_rate`` is the
    fraction of fidelity-mode rows whose achieved error stayed within the
    declared error budget (``None`` outside fidelity grids).
    """

    average_error_percent: float
    median_error_percent: float
    max_error_percent: float
    average_speedup: float
    min_speedup: float
    max_speedup: float
    count: int
    ci_coverage: Optional[float] = None
    average_ci_half_width_percent: Optional[float] = None
    budget_hit_rate: Optional[float] = None


def evaluate_benchmark(
    trace: ApplicationTrace,
    num_threads: int,
    architecture: Optional[ArchitectureConfig] = None,
    config: Optional[TaskPointConfig] = None,
    scheduler_seed: int = 0,
) -> AccuracyResult:
    """Run the detailed-versus-sampled comparison for one in-memory trace.

    This is the single-experiment convenience path for traces that exist only
    in memory (e.g. custom workloads); grids of named benchmarks should go
    through :func:`evaluate_grid` / :func:`evaluate_specs` instead, which
    parallelise and cache.
    """
    comparison = compare_with_detailed(
        trace,
        num_threads=num_threads,
        architecture=architecture,
        config=config,
        scheduler_seed=scheduler_seed,
    )
    return AccuracyResult(
        benchmark=comparison.benchmark,
        architecture=comparison.architecture,
        num_threads=num_threads,
        error_percent=comparison.error_percent,
        speedup=comparison.speedup,
        wall_speedup=comparison.wall_speedup,
        detailed_cycles=comparison.detailed.total_cycles,
        sampled_cycles=comparison.sampled.total_cycles,
        detailed_fraction=comparison.sampled.cost.detailed_fraction,
        resamples=comparison.taskpoint_stats.resamples,
    )


def accuracy_from_experiments(
    sampled: ExperimentResult, detailed: ExperimentResult
) -> AccuracyResult:
    """Combine a sampled run and its detailed baseline into an accuracy row."""
    ci_half_width = ci_lower = ci_upper = None
    ci_covers = None
    confidence = (sampled.taskpoint or {}).get("confidence")
    if confidence:
        ci_half_width = float(confidence["half_width_percent"])
        ci_lower = float(confidence["lower_cycles"])
        ci_upper = float(confidence["upper_cycles"])
        ci_covers = ci_lower <= detailed.total_cycles <= ci_upper
    budget_percent = None
    within_budget = None
    fidelity = (sampled.taskpoint or {}).get("fidelity")
    error_percent = float(sampled.error_versus(detailed) * 100.0)
    if fidelity:
        budget_percent = float(fidelity["error_budget"]) * 100.0
        within_budget = bool(error_percent <= budget_percent)
    return AccuracyResult(
        benchmark=sampled.benchmark,
        architecture=sampled.architecture,
        num_threads=sampled.num_threads,
        error_percent=error_percent,
        speedup=sampled.speedup_versus(detailed),
        wall_speedup=sampled.wall_speedup_versus(detailed),
        detailed_cycles=detailed.total_cycles,
        sampled_cycles=sampled.total_cycles,
        detailed_fraction=sampled.cost.detailed_fraction,
        resamples=sampled.resamples,
        ci_half_width_percent=ci_half_width,
        ci_lower_cycles=ci_lower,
        ci_upper_cycles=ci_upper,
        ci_covers_detailed=ci_covers,
        error_budget_percent=budget_percent,
        within_budget=within_budget,
    )


def evaluate_specs(
    specs: Sequence[ExperimentSpec],
    backend: Optional[ExecutionBackend] = None,
    store: Optional[Store] = None,
    on_error: str = "raise",
) -> List[AccuracyResult]:
    """Evaluate sampled experiment specs against their detailed baselines.

    Every spec must describe a sampled experiment; its baseline spec is
    derived automatically and the whole set — sampled runs plus deduplicated
    baselines — is submitted to the orchestrator in one batch, so arbitrary
    grids (multi-architecture, multi-scheduler, multi-seed) are a one-liner.

    ``on_error="skip"`` drops the rows whose sampled run or baseline failed
    (the failures are still recorded in the store by the orchestrator)
    instead of raising, so one broken workload does not take down a whole
    figure.
    """
    if on_error not in ("raise", "skip"):
        raise ValueError("on_error must be 'raise' or 'skip'")
    submitted: List[ExperimentSpec] = []
    for spec in specs:
        if spec.is_detailed:
            raise ValueError(
                f"evaluate_specs expects sampled experiment specs, got detailed"
                f" baseline {spec.label()!r}"
            )
        submitted.append(spec)
        submitted.append(spec.baseline())
    results = run_experiments(
        submitted,
        backend=backend,
        store=store,
        on_error="raise" if on_error == "raise" else "record",
    )
    return [
        accuracy_from_experiments(results[index], results[index + 1])
        for index in range(0, len(results), 2)
        if results[index] is not None and results[index + 1] is not None
    ]


def grid_specs(
    benchmarks: Sequence[str],
    thread_counts: Sequence[int],
    architecture: Optional[ArchitectureConfig] = None,
    config: Optional[SamplingConfig] = None,
    scale: float = 0.08,
    seed: int = 1,
    scheduler: str = "fifo",
    scheduler_seed: int = 0,
) -> List[ExperimentSpec]:
    """Sampled specs for every (benchmark, thread count) pair of one figure.

    ``config`` may be a :class:`TaskPointConfig` (periodic/lazy sampling,
    the default) or a :class:`repro.core.stratified.StratifiedConfig`.
    """
    config = config if config is not None else TaskPointConfig()
    return [
        ExperimentSpec(
            benchmark=name,
            num_threads=threads,
            scale=scale,
            trace_seed=seed,
            architecture=architecture,
            config=config,
            scheduler=scheduler,
            scheduler_seed=scheduler_seed,
        )
        for name in benchmarks
        for threads in thread_counts
    ]


def evaluate_grid(
    benchmarks: Sequence[str],
    thread_counts: Sequence[int],
    architecture: Optional[ArchitectureConfig] = None,
    config: Optional[SamplingConfig] = None,
    scale: float = 0.08,
    seed: int = 1,
    scheduler: str = "fifo",
    scheduler_seed: int = 0,
    backend: Optional[ExecutionBackend] = None,
    store: Optional[Store] = None,
) -> List[AccuracyResult]:
    """Evaluate every (benchmark, thread count) pair of one figure.

    Parameters
    ----------
    benchmarks:
        Benchmark names (Table I names).
    thread_counts:
        Simulated thread counts (e.g. ``[8, 16, 32, 64]`` for Figure 7).
    architecture:
        Architecture configuration; defaults to the high-performance one.
    config:
        TaskPoint configuration (periodic P=250 or lazy); defaults to the
        paper's periodic configuration.
    scale:
        Workload scale passed to the generators (fraction of Table I's
        instance counts).
    seed:
        Trace-generation seed.
    scheduler / scheduler_seed:
        Dynamic scheduling policy of the simulated runtime.
    backend:
        Execution backend (e.g. ``ProcessPoolBackend(max_workers=4)``);
        defaults to serial in-process execution.
    store:
        Optional result store; a warm store re-runs the grid without a
        single new simulation.
    """
    specs = grid_specs(
        benchmarks,
        thread_counts,
        architecture=architecture,
        config=config,
        scale=scale,
        seed=seed,
        scheduler=scheduler,
        scheduler_seed=scheduler_seed,
    )
    return evaluate_specs(specs, backend=backend, store=store)


def summarize(results: Iterable[AccuracyResult]) -> AccuracySummary:
    """Aggregate a set of accuracy results into the figure-level summary."""
    results = list(results)
    if not results:
        raise ValueError("cannot summarise an empty result set")
    errors = [result.error_percent for result in results]
    speedups = [result.speedup for result in results]
    with_ci = [r for r in results if r.ci_covers_detailed is not None]
    ci_coverage = None
    average_ci_half_width = None
    if with_ci:
        ci_coverage = sum(1 for r in with_ci if r.ci_covers_detailed) / len(with_ci)
        average_ci_half_width = sum(
            r.ci_half_width_percent for r in with_ci
        ) / len(with_ci)
    with_budget = [r for r in results if r.within_budget is not None]
    budget_hit_rate = None
    if with_budget:
        budget_hit_rate = sum(1 for r in with_budget if r.within_budget) / len(
            with_budget
        )
    return AccuracySummary(
        average_error_percent=sum(errors) / len(errors),
        median_error_percent=statistics.median(errors),
        max_error_percent=max(errors),
        average_speedup=sum(speedups) / len(speedups),
        min_speedup=min(speedups),
        max_speedup=max(speedups),
        count=len(results),
        ci_coverage=ci_coverage,
        average_ci_half_width_percent=average_ci_half_width,
        budget_hit_rate=budget_hit_rate,
    )


def group_by_threads(results: Iterable[AccuracyResult]) -> Dict[int, AccuracySummary]:
    """Summaries keyed by thread count (the per-colour averages of Fig. 7-10)."""
    buckets: Dict[int, List[AccuracyResult]] = {}
    for result in results:
        buckets.setdefault(result.num_threads, []).append(result)
    return {threads: summarize(bucket) for threads, bucket in sorted(buckets.items())}
