"""Execution-time error and simulation speedup (Figures 7-10, summary).

The paper's accuracy metric is the absolute relative difference between the
execution time predicted by the sampled simulation and the execution time of
a full detailed simulation of the same workload, architecture and thread
count; its performance metric is the simulation speedup of the sampled run
over the detailed run.  This module runs those experiment pairs and
aggregates them into per-figure data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.arch.config import ArchitectureConfig
from repro.core.api import compare_with_detailed
from repro.core.config import TaskPointConfig
from repro.trace.trace import ApplicationTrace
from repro.workloads.registry import get_workload


@dataclass(frozen=True)
class AccuracyResult:
    """Error/speedup of one (benchmark, architecture, threads) experiment."""

    benchmark: str
    architecture: str
    num_threads: int
    error_percent: float
    speedup: float
    wall_speedup: Optional[float]
    detailed_cycles: float
    sampled_cycles: float
    detailed_fraction: float
    resamples: int


@dataclass(frozen=True)
class AccuracySummary:
    """Aggregate over a set of accuracy results (one figure's 'average' bar)."""

    average_error_percent: float
    max_error_percent: float
    average_speedup: float
    min_speedup: float
    max_speedup: float
    count: int


def evaluate_benchmark(
    trace: ApplicationTrace,
    num_threads: int,
    architecture: Optional[ArchitectureConfig] = None,
    config: Optional[TaskPointConfig] = None,
    scheduler_seed: int = 0,
) -> AccuracyResult:
    """Run the detailed-versus-sampled comparison for one experiment point."""
    comparison = compare_with_detailed(
        trace,
        num_threads=num_threads,
        architecture=architecture,
        config=config,
        scheduler_seed=scheduler_seed,
    )
    return AccuracyResult(
        benchmark=comparison.benchmark,
        architecture=comparison.architecture,
        num_threads=num_threads,
        error_percent=comparison.error_percent,
        speedup=comparison.speedup,
        wall_speedup=comparison.wall_speedup,
        detailed_cycles=comparison.detailed.total_cycles,
        sampled_cycles=comparison.sampled.total_cycles,
        detailed_fraction=comparison.sampled.cost.detailed_fraction,
        resamples=comparison.taskpoint_stats.resamples,
    )


def evaluate_grid(
    benchmarks: Sequence[str],
    thread_counts: Sequence[int],
    architecture: Optional[ArchitectureConfig] = None,
    config: Optional[TaskPointConfig] = None,
    scale: float = 0.08,
    seed: int = 1,
    traces: Optional[Dict[str, ApplicationTrace]] = None,
) -> List[AccuracyResult]:
    """Evaluate every (benchmark, thread count) pair of one figure.

    Parameters
    ----------
    benchmarks:
        Benchmark names (Table I names).
    thread_counts:
        Simulated thread counts (e.g. ``[8, 16, 32, 64]`` for Figure 7).
    architecture:
        Architecture configuration; defaults to the high-performance one.
    config:
        TaskPoint configuration (periodic P=250 or lazy).
    scale:
        Workload scale passed to the generators (fraction of Table I's
        instance counts).
    seed:
        Trace-generation seed.
    traces:
        Pre-generated traces keyed by benchmark name; generated on demand
        when missing (useful to share trace generation across figures).
    """
    results: List[AccuracyResult] = []
    traces = dict(traces) if traces else {}
    for name in benchmarks:
        trace = traces.get(name)
        if trace is None:
            trace = get_workload(name).generate(scale=scale, seed=seed)
            traces[name] = trace
        for threads in thread_counts:
            results.append(
                evaluate_benchmark(
                    trace,
                    num_threads=threads,
                    architecture=architecture,
                    config=config,
                )
            )
    return results


def summarize(results: Iterable[AccuracyResult]) -> AccuracySummary:
    """Aggregate a set of accuracy results into the figure-level summary."""
    results = list(results)
    if not results:
        raise ValueError("cannot summarise an empty result set")
    errors = [result.error_percent for result in results]
    speedups = [result.speedup for result in results]
    return AccuracySummary(
        average_error_percent=sum(errors) / len(errors),
        max_error_percent=max(errors),
        average_speedup=sum(speedups) / len(speedups),
        min_speedup=min(speedups),
        max_speedup=max(speedups),
        count=len(results),
    )


def group_by_threads(results: Iterable[AccuracyResult]) -> Dict[int, AccuracySummary]:
    """Summaries keyed by thread count (the per-colour averages of Fig. 7-10)."""
    buckets: Dict[int, List[AccuracyResult]] = {}
    for result in results:
        buckets.setdefault(result.num_threads, []).append(result)
    return {threads: summarize(bucket) for threads, bucket in sorted(buckets.items())}
