"""Plain-text rendering of tables and figure data.

The benchmark harnesses and examples print their results with these helpers
so every regenerated table/figure has a consistent, diff-friendly format.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.analysis.accuracy import AccuracyResult, group_by_threads, summarize
from repro.analysis.variation import VariationReport


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render ``rows`` under ``headers`` as an aligned plain-text table."""
    rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match header length")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(header.ljust(widths[index]) for index, header in enumerate(headers)),
        "  ".join("-" * widths[index] for index in range(len(headers))),
    ]
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row)))
    return "\n".join(lines)


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def render_accuracy_table(results: Sequence[AccuracyResult], title: str = "") -> str:
    """Render per-benchmark error/speedup rows plus per-thread averages.

    When any result carries a confidence interval (stratified- or
    fidelity-mode runs), a ``ci95 [%]`` half-width column and a per-row
    coverage marker are added, and the overall summary reports the CI
    coverage — the fraction of rows whose reported interval contains the
    detailed-mode execution time.  When any result carries an error budget
    (fidelity-mode runs), ``budget [%]``/``within`` columns compare the
    achieved error against the declared budget and the summary reports the
    budget hit rate.
    """
    with_ci = any(result.ci_covers_detailed is not None for result in results)
    with_budget = any(result.within_budget is not None for result in results)
    headers = ["benchmark", "threads", "error [%]", "speedup", "detailed frac", "resamples"]
    if with_ci:
        headers += ["ci95 [%]", "covers"]
    if with_budget:
        headers += ["budget [%]", "within"]
    rows: List[List[object]] = []
    for result in results:
        row: List[object] = [
            result.benchmark,
            result.num_threads,
            result.error_percent,
            result.speedup,
            result.detailed_fraction,
            result.resamples,
        ]
        if with_ci:
            if result.ci_covers_detailed is None:
                row += ["-", "-"]
            else:
                row += [
                    result.ci_half_width_percent,
                    "yes" if result.ci_covers_detailed else "no",
                ]
        if with_budget:
            if result.within_budget is None:
                row += ["-", "-"]
            else:
                row += [
                    result.error_budget_percent,
                    "yes" if result.within_budget else "no",
                ]
        rows.append(row)
    text = format_table(headers, rows)
    summary_lines = []
    for threads, summary in group_by_threads(results).items():
        summary_lines.append(
            f"average ({threads} threads): error {summary.average_error_percent:.2f}%"
            f", speedup {summary.average_speedup:.1f}x"
        )
    overall = summarize(results)
    overall_line = (
        f"overall: avg error {overall.average_error_percent:.2f}%"
        f", median error {overall.median_error_percent:.2f}%"
        f", max error {overall.max_error_percent:.2f}%"
        f", avg speedup {overall.average_speedup:.1f}x"
    )
    if overall.ci_coverage is not None:
        overall_line += (
            f", ci coverage {overall.ci_coverage * 100.0:.0f}%"
            f" (avg halfwidth {overall.average_ci_half_width_percent:.2f}%)"
        )
    if overall.budget_hit_rate is not None:
        overall_line += f", budget hit rate {overall.budget_hit_rate * 100.0:.0f}%"
    summary_lines.append(overall_line)
    parts = []
    if title:
        parts.append(title)
    parts.append(text)
    parts.extend(summary_lines)
    return "\n".join(parts)


def render_variation_report(reports: Dict[str, VariationReport], title: str = "") -> str:
    """Render the Figure 1 / Figure 5 box-plot statistics as a table."""
    headers = [
        "benchmark", "instances", "p5 [%]", "q1 [%]", "median [%]",
        "q3 [%]", "p95 [%]", "within +/-5%",
    ]
    rows = []
    for name, report in reports.items():
        rows.append(
            [
                name,
                report.box.count,
                report.box.percentile_5,
                report.box.quartile_1,
                report.box.median,
                report.box.quartile_3,
                report.box.percentile_95,
                "yes" if report.within_5_percent else "no",
            ]
        )
    text = format_table(headers, rows)
    within = sum(1 for report in reports.values() if report.within_5_percent)
    footer = f"{within} of {len(reports)} benchmarks within +/-5%"
    parts = []
    if title:
        parts.append(title)
    parts.extend([text, footer])
    return "\n".join(parts)
