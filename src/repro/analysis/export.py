"""Export of experiment results to CSV and JSON.

The benchmark harnesses print plain-text tables; for downstream plotting
(matplotlib, pandas, gnuplot) it is more convenient to have the raw data.
This module serialises the analysis objects — accuracy results, parameter
sweeps and IPC-variation reports — to CSV or JSON files without requiring
any third-party dependency.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Union

from repro.analysis.accuracy import AccuracyResult
from repro.analysis.sweep import SweepPoint
from repro.analysis.variation import VariationReport

PathLike = Union[str, Path]


def accuracy_rows(results: Iterable[AccuracyResult]) -> List[Dict[str, object]]:
    """Flatten accuracy results into serialisable dictionaries."""
    return [
        {
            "benchmark": result.benchmark,
            "architecture": result.architecture,
            "threads": result.num_threads,
            "error_percent": result.error_percent,
            "speedup": result.speedup,
            "wall_speedup": result.wall_speedup,
            "detailed_cycles": result.detailed_cycles,
            "sampled_cycles": result.sampled_cycles,
            "detailed_fraction": result.detailed_fraction,
            "resamples": result.resamples,
        }
        for result in results
    ]


def sweep_rows(points: Iterable[SweepPoint]) -> List[Dict[str, object]]:
    """Flatten sweep points into serialisable dictionaries."""
    return [
        {
            "parameter": point.parameter,
            "value": point.value,
            "average_error_percent": point.average_error_percent,
            "average_speedup": point.average_speedup,
            "experiments": point.experiments,
        }
        for point in points
    ]


def variation_rows(reports: Dict[str, VariationReport]) -> List[Dict[str, object]]:
    """Flatten variation reports (one row per benchmark) for export."""
    rows = []
    for name, report in reports.items():
        box = report.box
        rows.append(
            {
                "benchmark": name,
                "threads": report.num_threads,
                "instances": box.count,
                "p5": box.percentile_5,
                "q1": box.quartile_1,
                "median": box.median,
                "q3": box.quartile_3,
                "p95": box.percentile_95,
                "within_5_percent": report.within_5_percent,
            }
        )
    return rows


def write_csv(rows: Sequence[Dict[str, object]], path: PathLike) -> Path:
    """Write dictionaries to ``path`` as CSV (header from the first row)."""
    if not rows:
        raise ValueError("cannot export an empty row set")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(rows[0].keys()))
        writer.writeheader()
        writer.writerows(rows)
    return path


def write_json(rows: Sequence[Dict[str, object]], path: PathLike) -> Path:
    """Write dictionaries to ``path`` as a JSON array."""
    if not rows:
        raise ValueError("cannot export an empty row set")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(list(rows), indent=2), encoding="utf-8")
    return path


def export_accuracy(results: Iterable[AccuracyResult], path: PathLike) -> Path:
    """Export accuracy results; format chosen from the file suffix."""
    rows = accuracy_rows(results)
    if str(path).endswith(".json"):
        return write_json(rows, path)
    return write_csv(rows, path)


def export_sweep(points: Iterable[SweepPoint], path: PathLike) -> Path:
    """Export sweep points; format chosen from the file suffix."""
    rows = sweep_rows(points)
    if str(path).endswith(".json"):
        return write_json(rows, path)
    return write_csv(rows, path)


def export_variation(reports: Dict[str, VariationReport], path: PathLike) -> Path:
    """Export variation reports; format chosen from the file suffix."""
    rows = variation_rows(reports)
    if str(path).endswith(".json"):
        return write_json(rows, path)
    return write_csv(rows, path)
