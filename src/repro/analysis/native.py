"""Native-execution substitute.

The paper's Figure 1 reports IPC variation measured on real hardware (an
Intel SandyBridge-EP E5-2670).  Real hardware is not available to this
reproduction, so native execution is *substituted* by the detailed simulator
plus a calibrated system-noise model: every task instance's execution time is
perturbed by a small multiplicative log-normal factor (cache/TLB/frequency
jitter) and, with low probability, an additional OS-noise spike (a timer
interrupt or scheduler preemption hitting the task).

The substitution preserves what the paper uses native execution for: showing
that per-type IPC variation is small for most benchmarks, slightly larger in
native execution than in simulation, and that the ±5% classification of
benchmarks agrees between the two.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.arch.config import ArchitectureConfig
from repro.runtime.task import TaskInstance
from repro.sim.results import SimulationResult
from repro.sim.simulator import simulate
from repro.trace.trace import ApplicationTrace


class NativeExecutionModel:
    """Multiplicative noise model applied to detailed-mode cycle counts.

    Parameters
    ----------
    jitter_sigma:
        Standard deviation of the log-normal jitter applied to every task
        instance (0.015 corresponds to roughly ±1.5% of run-to-run noise).
    os_noise_probability:
        Probability that an instance is hit by an OS-noise event.
    os_noise_magnitude:
        Relative slow-down of an instance hit by OS noise.
    seed:
        Seed of the noise generator.
    """

    def __init__(
        self,
        jitter_sigma: float = 0.015,
        os_noise_probability: float = 0.02,
        os_noise_magnitude: float = 0.08,
        seed: int = 0,
    ) -> None:
        if jitter_sigma < 0:
            raise ValueError("jitter_sigma must be non-negative")
        if not 0.0 <= os_noise_probability <= 1.0:
            raise ValueError("os_noise_probability must be in [0, 1]")
        if os_noise_magnitude < 0:
            raise ValueError("os_noise_magnitude must be non-negative")
        self.jitter_sigma = jitter_sigma
        self.os_noise_probability = os_noise_probability
        self.os_noise_magnitude = os_noise_magnitude
        self._rng = random.Random(seed)

    def __call__(self, instance: TaskInstance) -> float:
        """Return the multiplicative cycle-count factor for ``instance``."""
        factor = 1.0
        if self.jitter_sigma > 0:
            factor *= max(0.5, self._rng.lognormvariate(0.0, self.jitter_sigma))
        if self._rng.random() < self.os_noise_probability:
            factor *= 1.0 + self._rng.uniform(0.0, self.os_noise_magnitude)
        return factor


def native_execution(
    trace: ApplicationTrace,
    num_threads: int = 8,
    architecture: Optional[ArchitectureConfig] = None,
    noise: Optional[NativeExecutionModel] = None,
    scheduler: str = "fifo",
    scheduler_seed: int = 0,
) -> SimulationResult:
    """Run the native-execution substitute for ``trace``.

    Returns a full detailed simulation whose per-instance cycle counts are
    perturbed by the noise model; the result is analysed with
    :func:`repro.analysis.variation.ipc_variation` exactly like a simulated
    run.
    """
    noise = noise if noise is not None else NativeExecutionModel(seed=scheduler_seed + 1)
    return simulate(
        trace,
        num_threads=num_threads,
        architecture=architecture,
        controller=None,
        scheduler=scheduler,
        scheduler_seed=scheduler_seed,
        noise_model=noise,
    )
