"""Parameter sensitivity sweeps (Figure 6).

The paper determines the TaskPoint model parameters incrementally: first the
warm-up interval W (with H=10 and P=∞), then the history size H (with W=2 and
P=∞), then the sampling period P (with W=2 and H=4).  Each sweep reports
error and speedup averaged over the sensitivity benchmark subset and over
simulations with 32 and 64 threads.

Every sweep builds one flat list of experiment specs — all parameter values ×
benchmarks × thread counts — and submits it to the experiment orchestrator in
a single batch.  The detailed baselines are shared between all parameter
values (they do not depend on W, H or P), so the orchestrator's content-key
deduplication simulates each baseline exactly once per sweep, and a process
pool parallelises the whole sweep at spec granularity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.analysis.accuracy import evaluate_specs, grid_specs
from repro.arch.config import ArchitectureConfig
from repro.core.config import TaskPointConfig
from repro.exp.backends import ExecutionBackend, Store
from repro.workloads.registry import SENSITIVITY_SUBSET


@dataclass(frozen=True)
class SweepPoint:
    """Average error/speedup of one parameter value."""

    parameter: str
    value: object
    average_error_percent: float
    average_speedup: float
    experiments: int


def _sweep(
    parameter: str,
    configs: Sequence[Tuple[object, TaskPointConfig]],
    benchmarks: Sequence[str],
    thread_counts: Sequence[int],
    architecture: Optional[ArchitectureConfig],
    scale: float,
    seed: int,
    backend: Optional[ExecutionBackend],
    store: Optional[Store],
) -> List[SweepPoint]:
    specs = []
    for _, config in configs:
        specs.extend(
            grid_specs(
                benchmarks,
                thread_counts,
                architecture=architecture,
                config=config,
                scale=scale,
                seed=seed,
            )
        )
    results = evaluate_specs(specs, backend=backend, store=store)
    per_value = len(benchmarks) * len(thread_counts)
    points: List[SweepPoint] = []
    for index, (value, _) in enumerate(configs):
        chunk = results[index * per_value:(index + 1) * per_value]
        errors = [result.error_percent for result in chunk]
        speedups = [result.speedup for result in chunk]
        points.append(
            SweepPoint(
                parameter=parameter,
                value=value,
                average_error_percent=sum(errors) / len(errors),
                average_speedup=sum(speedups) / len(speedups),
                experiments=len(chunk),
            )
        )
    return points


def warmup_sweep(
    warmup_values: Sequence[int] = (0, 1, 2, 4, 6, 8, 10),
    benchmarks: Sequence[str] = tuple(SENSITIVITY_SUBSET),
    thread_counts: Sequence[int] = (32, 64),
    architecture: Optional[ArchitectureConfig] = None,
    history_size: int = 10,
    scale: float = 0.08,
    seed: int = 1,
    backend: Optional[ExecutionBackend] = None,
    store: Optional[Store] = None,
) -> List[SweepPoint]:
    """Figure 6a: error/speedup for different warm-up sizes W (H=10, P=∞)."""
    configs = [
        (w, TaskPointConfig(warmup_instances=w, history_size=history_size, sampling_period=None))
        for w in warmup_values
    ]
    return _sweep("W", configs, benchmarks, thread_counts, architecture, scale, seed,
                  backend, store)


def history_sweep(
    history_values: Sequence[int] = (1, 2, 3, 4, 5, 6, 7, 8, 9, 10),
    benchmarks: Sequence[str] = tuple(SENSITIVITY_SUBSET),
    thread_counts: Sequence[int] = (32, 64),
    architecture: Optional[ArchitectureConfig] = None,
    warmup_instances: int = 2,
    scale: float = 0.08,
    seed: int = 1,
    backend: Optional[ExecutionBackend] = None,
    store: Optional[Store] = None,
) -> List[SweepPoint]:
    """Figure 6b: error/speedup for different history sizes H (W=2, P=∞)."""
    configs = [
        (h, TaskPointConfig(warmup_instances=warmup_instances, history_size=h, sampling_period=None))
        for h in history_values
    ]
    return _sweep("H", configs, benchmarks, thread_counts, architecture, scale, seed,
                  backend, store)


def period_sweep(
    period_values: Sequence[int] = (10, 25, 50, 100, 250, 500, 1000),
    benchmarks: Sequence[str] = tuple(SENSITIVITY_SUBSET),
    thread_counts: Sequence[int] = (32, 64),
    architecture: Optional[ArchitectureConfig] = None,
    warmup_instances: int = 2,
    history_size: int = 4,
    scale: float = 0.08,
    seed: int = 1,
    backend: Optional[ExecutionBackend] = None,
    store: Optional[Store] = None,
) -> List[SweepPoint]:
    """Figure 6c: error/speedup for different sampling periods P (W=2, H=4)."""
    configs = [
        (
            p,
            TaskPointConfig(
                warmup_instances=warmup_instances,
                history_size=history_size,
                sampling_period=p,
            ),
        )
        for p in period_values
    ]
    return _sweep("P", configs, benchmarks, thread_counts, architecture, scale, seed,
                  backend, store)
