"""Parameter sensitivity sweeps (Figure 6).

The paper determines the TaskPoint model parameters incrementally: first the
warm-up interval W (with H=10 and P=∞), then the history size H (with W=2 and
P=∞), then the sampling period P (with W=2 and H=4).  Each sweep reports
error and speedup averaged over the sensitivity benchmark subset and over
simulations with 32 and 64 threads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.accuracy import evaluate_benchmark
from repro.arch.config import ArchitectureConfig
from repro.core.config import TaskPointConfig
from repro.trace.trace import ApplicationTrace
from repro.workloads.registry import SENSITIVITY_SUBSET, get_workload


@dataclass(frozen=True)
class SweepPoint:
    """Average error/speedup of one parameter value."""

    parameter: str
    value: object
    average_error_percent: float
    average_speedup: float
    experiments: int


def _traces_for(
    benchmarks: Sequence[str], scale: float, seed: int,
    traces: Optional[Dict[str, ApplicationTrace]] = None,
) -> Dict[str, ApplicationTrace]:
    prepared = dict(traces) if traces else {}
    for name in benchmarks:
        if name not in prepared:
            prepared[name] = get_workload(name).generate(scale=scale, seed=seed)
    return prepared


def _sweep(
    parameter: str,
    configs: Sequence[tuple],
    benchmarks: Sequence[str],
    thread_counts: Sequence[int],
    architecture: Optional[ArchitectureConfig],
    scale: float,
    seed: int,
    traces: Optional[Dict[str, ApplicationTrace]],
) -> List[SweepPoint]:
    prepared = _traces_for(benchmarks, scale, seed, traces)
    points: List[SweepPoint] = []
    for value, config in configs:
        errors: List[float] = []
        speedups: List[float] = []
        for name in benchmarks:
            for threads in thread_counts:
                result = evaluate_benchmark(
                    prepared[name],
                    num_threads=threads,
                    architecture=architecture,
                    config=config,
                )
                errors.append(result.error_percent)
                speedups.append(result.speedup)
        points.append(
            SweepPoint(
                parameter=parameter,
                value=value,
                average_error_percent=sum(errors) / len(errors),
                average_speedup=sum(speedups) / len(speedups),
                experiments=len(errors),
            )
        )
    return points


def warmup_sweep(
    warmup_values: Sequence[int] = (0, 1, 2, 4, 6, 8, 10),
    benchmarks: Sequence[str] = tuple(SENSITIVITY_SUBSET),
    thread_counts: Sequence[int] = (32, 64),
    architecture: Optional[ArchitectureConfig] = None,
    history_size: int = 10,
    scale: float = 0.08,
    seed: int = 1,
    traces: Optional[Dict[str, ApplicationTrace]] = None,
) -> List[SweepPoint]:
    """Figure 6a: error/speedup for different warm-up sizes W (H=10, P=∞)."""
    configs = [
        (w, TaskPointConfig(warmup_instances=w, history_size=history_size, sampling_period=None))
        for w in warmup_values
    ]
    return _sweep("W", configs, benchmarks, thread_counts, architecture, scale, seed, traces)


def history_sweep(
    history_values: Sequence[int] = (1, 2, 3, 4, 5, 6, 7, 8, 9, 10),
    benchmarks: Sequence[str] = tuple(SENSITIVITY_SUBSET),
    thread_counts: Sequence[int] = (32, 64),
    architecture: Optional[ArchitectureConfig] = None,
    warmup_instances: int = 2,
    scale: float = 0.08,
    seed: int = 1,
    traces: Optional[Dict[str, ApplicationTrace]] = None,
) -> List[SweepPoint]:
    """Figure 6b: error/speedup for different history sizes H (W=2, P=∞)."""
    configs = [
        (h, TaskPointConfig(warmup_instances=warmup_instances, history_size=h, sampling_period=None))
        for h in history_values
    ]
    return _sweep("H", configs, benchmarks, thread_counts, architecture, scale, seed, traces)


def period_sweep(
    period_values: Sequence[int] = (10, 25, 50, 100, 250, 500, 1000),
    benchmarks: Sequence[str] = tuple(SENSITIVITY_SUBSET),
    thread_counts: Sequence[int] = (32, 64),
    architecture: Optional[ArchitectureConfig] = None,
    warmup_instances: int = 2,
    history_size: int = 4,
    scale: float = 0.08,
    seed: int = 1,
    traces: Optional[Dict[str, ApplicationTrace]] = None,
) -> List[SweepPoint]:
    """Figure 6c: error/speedup for different sampling periods P (W=2, H=4)."""
    configs = [
        (
            p,
            TaskPointConfig(
                warmup_instances=warmup_instances,
                history_size=history_size,
                sampling_period=p,
            ),
        )
        for p in period_values
    ]
    return _sweep("P", configs, benchmarks, thread_counts, architecture, scale, seed, traces)
