"""Per-task-type IPC variation analysis (Figures 1 and 5).

The paper motivates TaskPoint by showing that the IPC of task instances is
regular *within a task type*: for 15 of the 19 benchmarks the normalized IPC
of all instances stays within ±5% of their type's mean.  This module computes
exactly the statistics the paper plots: per-benchmark box plots of the IPC of
every task instance normalized to the mean IPC of its task type (quartiles,
5th/95th percentile whiskers, extreme outliers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.arch.config import ArchitectureConfig
from repro.exp.backends import ExecutionBackend, Store, run_experiments
from repro.exp.spec import ExperimentResult, ExperimentSpec
from repro.sim.results import SimulationResult

#: Either a full simulation result or a condensed, stored experiment result;
#: both expose ``benchmark``, ``num_threads`` and ``ipc_by_type()``.
MeasuredResult = Union[SimulationResult, ExperimentResult]


@dataclass(frozen=True)
class BoxPlotStats:
    """The statistics one box plot of Figure 1 / Figure 5 encodes.

    Values are normalized IPC deviations in percent (0 means the instance ran
    exactly at its task type's mean IPC).
    """

    minimum: float
    percentile_5: float
    quartile_1: float
    median: float
    quartile_3: float
    percentile_95: float
    maximum: float
    count: int

    @property
    def whisker_range(self) -> float:
        """Distance between the 5th and 95th percentile (the whisker span)."""
        return self.percentile_95 - self.percentile_5

    @property
    def within_5_percent(self) -> bool:
        """``True`` if the whiskers stay within +/-5% (the paper's criterion)."""
        return self.percentile_95 <= 5.0 and self.percentile_5 >= -5.0

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "BoxPlotStats":
        """Compute the statistics from normalized IPC deviations (percent)."""
        if len(values) == 0:
            raise ValueError("cannot compute box-plot statistics of an empty sample")
        array = np.asarray(values, dtype=float)
        return cls(
            minimum=float(array.min()),
            percentile_5=float(np.percentile(array, 5)),
            quartile_1=float(np.percentile(array, 25)),
            median=float(np.percentile(array, 50)),
            quartile_3=float(np.percentile(array, 75)),
            percentile_95=float(np.percentile(array, 95)),
            maximum=float(array.max()),
            count=int(array.size),
        )


@dataclass(frozen=True)
class TypeVariation:
    """IPC statistics of one task type."""

    task_type: str
    mean_ipc: float
    count: int
    coefficient_of_variation: float


@dataclass(frozen=True)
class VariationReport:
    """Variation analysis of one benchmark run."""

    benchmark: str
    num_threads: int
    box: BoxPlotStats
    per_type: List[TypeVariation]

    @property
    def within_5_percent(self) -> bool:
        """Paper's classification: does variation stay within +/-5%?"""
        return self.box.within_5_percent


def normalized_deviations(result: MeasuredResult) -> List[float]:
    """Normalized IPC deviations (percent) of all measured task instances.

    Each detailed, non-warm-up instance's IPC is normalized to the mean IPC
    of its task type; the returned values are ``(ipc / mean - 1) * 100``.
    """
    deviations: List[float] = []
    for task_type, values in result.ipc_by_type(detailed_only=True).items():
        if not values:
            continue
        mean = sum(values) / len(values)
        if mean <= 0:
            continue
        deviations.extend((value / mean - 1.0) * 100.0 for value in values)
    return deviations


def ipc_variation(result: MeasuredResult) -> VariationReport:
    """Compute the Figure 1 / Figure 5 statistics for one simulation result.

    Accepts either a live :class:`~repro.sim.results.SimulationResult` or a
    condensed :class:`~repro.exp.spec.ExperimentResult` coming out of the
    experiment orchestrator's result store.
    """
    per_type: List[TypeVariation] = []
    for task_type, values in sorted(result.ipc_by_type(detailed_only=True).items()):
        if not values:
            continue
        array = np.asarray(values, dtype=float)
        mean = float(array.mean())
        cv = float(array.std() / mean) if mean > 0 else 0.0
        per_type.append(
            TypeVariation(
                task_type=task_type,
                mean_ipc=mean,
                count=int(array.size),
                coefficient_of_variation=cv,
            )
        )
    deviations = normalized_deviations(result)
    if not deviations:
        raise ValueError(
            "simulation result contains no detailed task instances to analyse"
        )
    return VariationReport(
        benchmark=result.benchmark,
        num_threads=result.num_threads,
        box=BoxPlotStats.from_values(deviations),
        per_type=per_type,
    )


def variation_grid(
    benchmarks: Sequence[str],
    num_threads: int = 8,
    architecture: Optional[ArchitectureConfig] = None,
    scale: float = 0.08,
    seed: int = 1,
    scheduler: str = "fifo",
    scheduler_seed: int = 0,
    backend: Optional[ExecutionBackend] = None,
    store: Optional[Store] = None,
) -> Dict[str, VariationReport]:
    """Variation reports for a set of benchmarks, keyed by benchmark name.

    The detailed runs the analysis needs are expressed as experiment specs
    and submitted to the orchestrator, so they parallelise across a process
    pool, hit the persistent result store, and are shared with any accuracy
    grid that uses the same baselines.
    """
    specs = [
        ExperimentSpec(
            benchmark=name,
            num_threads=num_threads,
            scale=scale,
            trace_seed=seed,
            architecture=architecture,
            config=None,
            scheduler=scheduler,
            scheduler_seed=scheduler_seed,
        )
        for name in benchmarks
    ]
    results = run_experiments(specs, backend=backend, store=store)
    return {result.benchmark: ipc_variation(result) for result in results}


def classification_agreement(
    native: Dict[str, VariationReport], simulated: Dict[str, VariationReport]
) -> float:
    """Fraction of benchmarks classified identically (within/over 5%).

    The paper reports that native execution and simulation agree on the
    +/-5% classification for 18 of the 19 benchmarks.
    """
    common = sorted(set(native) & set(simulated))
    if not common:
        raise ValueError("no common benchmarks between the two report sets")
    agreeing = sum(
        1
        for name in common
        if native[name].within_5_percent == simulated[name].within_5_percent
    )
    return agreeing / len(common)
