"""Analysis and evaluation tooling.

This package contains everything needed to regenerate the paper's evaluation:

* :mod:`repro.analysis.variation` — per-task-type IPC variation statistics
  (the box plots of Figures 1 and 5),
* :mod:`repro.analysis.native` — the native-execution substitute (detailed
  simulation plus a calibrated system-noise model),
* :mod:`repro.analysis.accuracy` — execution-time error and simulation
  speedup of sampled versus detailed simulation (Figures 7-10),
* :mod:`repro.analysis.sweep` — parameter sensitivity sweeps over W, H and P
  (Figure 6),
* :mod:`repro.analysis.reporting` — plain-text rendering of the tables and
  figure data series.
"""

from repro.analysis.variation import (
    BoxPlotStats,
    TypeVariation,
    VariationReport,
    ipc_variation,
    variation_grid,
)
from repro.analysis.native import NativeExecutionModel, native_execution
from repro.analysis.accuracy import (
    AccuracyResult,
    AccuracySummary,
    accuracy_from_experiments,
    evaluate_benchmark,
    evaluate_grid,
    evaluate_specs,
    grid_specs,
    summarize,
)
from repro.analysis.sweep import SweepPoint, history_sweep, period_sweep, warmup_sweep
from repro.analysis.reporting import format_table, render_accuracy_table, render_variation_report
from repro.analysis.export import export_accuracy, export_sweep, export_variation

__all__ = [
    "BoxPlotStats",
    "TypeVariation",
    "VariationReport",
    "ipc_variation",
    "variation_grid",
    "NativeExecutionModel",
    "native_execution",
    "AccuracyResult",
    "AccuracySummary",
    "accuracy_from_experiments",
    "evaluate_benchmark",
    "evaluate_grid",
    "evaluate_specs",
    "grid_specs",
    "summarize",
    "SweepPoint",
    "warmup_sweep",
    "history_sweep",
    "period_sweep",
    "format_table",
    "render_accuracy_table",
    "render_variation_report",
    "export_accuracy",
    "export_sweep",
    "export_variation",
]
