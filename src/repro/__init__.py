"""Reproduction of *TaskPoint: Sampled Simulation of Task-Based Programs*.

The library is organised in layers, from the substrate upwards:

* :mod:`repro.trace` — application traces (task instances, instruction counts,
  memory behaviour) and trace I/O,
* :mod:`repro.workloads` — the 19 task-based benchmarks of the paper's
  Table I as synthetic trace generators,
* :mod:`repro.runtime` — the OmpSs-style dynamic task runtime (dependency
  tracking, ready queues, schedulers),
* :mod:`repro.arch` — architecture models (caches, ROB-occupancy core model,
  interconnect, DRAM) and the Table II configurations,
* :mod:`repro.sim` — the TaskSim-style trace-driven multi-core simulator with
  detailed and burst modes,
* :mod:`repro.core` — TaskPoint itself: sample histories, warm-up, sampling
  policies, accurate fast-forwarding and the sampling controller,
* :mod:`repro.exp` — the experiment orchestration layer: hashable
  experiment specs, serial/process-pool/distributed-async execution
  backends and the persistent sharded result store every evaluation
  runs on,
* :mod:`repro.analysis` — IPC-variation analysis, accuracy/speedup metrics,
  parameter sweeps and the experiment drivers behind every figure and table.

Quick start::

    from repro import get_workload, sampled_simulation, compare_with_detailed

    trace = get_workload("cholesky").generate(scale=0.05, seed=1)
    comparison = compare_with_detailed(trace, num_threads=8)
    print(comparison.error_percent, comparison.speedup)
"""

from repro.arch.config import (
    ArchitectureConfig,
    high_performance_config,
    low_power_config,
)
from repro.core.api import compare_with_detailed, sampled_simulation
from repro.core.config import TaskPointConfig, lazy_config, periodic_config
from repro.core.controller import TaskPointController
from repro.exp import (
    AsyncWorkerBackend,
    ExperimentFailure,
    ExperimentResult,
    ExperimentSpec,
    ProcessPoolBackend,
    ResultStore,
    SerialBackend,
    run_experiments,
)
from repro.sim.simulator import TaskSimSimulator, simulate
from repro.trace.trace import ApplicationTrace
from repro.workloads.registry import get_workload, list_workloads

__version__ = "1.0.0"

__all__ = [
    "ApplicationTrace",
    "ArchitectureConfig",
    "high_performance_config",
    "low_power_config",
    "TaskPointConfig",
    "periodic_config",
    "lazy_config",
    "TaskPointController",
    "ExperimentSpec",
    "ExperimentResult",
    "ExperimentFailure",
    "SerialBackend",
    "ProcessPoolBackend",
    "AsyncWorkerBackend",
    "ResultStore",
    "run_experiments",
    "TaskSimSimulator",
    "simulate",
    "sampled_simulation",
    "compare_with_detailed",
    "get_workload",
    "list_workloads",
    "__version__",
]
