"""High-level simulator facade.

:class:`TaskSimSimulator` is the public entry point of the simulation
substrate: it binds an architecture configuration and a scheduling policy and
exposes :meth:`TaskSimSimulator.run` to simulate any application trace with
any mode controller.  The module-level :func:`simulate` function is the
one-call convenience wrapper used by the examples and the quickstart.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.arch.config import ArchitectureConfig, high_performance_config
from repro.runtime.scheduler import Scheduler, make_scheduler
from repro.sim.engine import NoiseModel, SimulationEngine
from repro.sim.modes import ModeController
from repro.sim.results import SimulationResult
from repro.trace.trace import ApplicationTrace


class TaskSimSimulator:
    """Trace-driven multi-core simulator with detailed and burst modes.

    Parameters
    ----------
    architecture:
        Architecture configuration; defaults to the paper's high-performance
        configuration (Table II).
    scheduler:
        Name of the dynamic scheduling policy (``"fifo"``, ``"locality"`` or
        ``"random"``).
    scheduler_seed:
        Seed for randomised schedulers; changing it changes which thread
        executes which task instance, emulating run-to-run scheduling noise.
    """

    def __init__(
        self,
        architecture: Optional[ArchitectureConfig] = None,
        scheduler: str = "fifo",
        scheduler_seed: int = 0,
    ) -> None:
        self.architecture = architecture if architecture is not None else high_performance_config()
        self.scheduler_name = scheduler
        self.scheduler_seed = scheduler_seed

    def _make_scheduler(self) -> Scheduler:
        return make_scheduler(self.scheduler_name, seed=self.scheduler_seed)

    def run(
        self,
        trace: ApplicationTrace,
        num_threads: int,
        controller: Optional[ModeController] = None,
        noise_model: Optional[NoiseModel] = None,
        measure_wall_time: bool = True,
    ) -> SimulationResult:
        """Simulate ``trace`` on ``num_threads`` simulated cores.

        Parameters
        ----------
        trace:
            The application trace to replay.
        num_threads:
            Number of simulated worker threads.
        controller:
            Mode controller (e.g. a
            :class:`repro.core.controller.TaskPointController`); ``None``
            selects full detailed simulation.
        noise_model:
            Optional per-instance noise factor applied in detailed mode.
        measure_wall_time:
            Record host wall-clock time in the result (on by default).
        """
        engine = SimulationEngine(
            trace=trace,
            architecture=self.architecture,
            num_threads=num_threads,
            scheduler=self._make_scheduler(),
            controller=controller,
            noise_model=noise_model,
        )
        start = time.perf_counter() if measure_wall_time else None
        result = engine.run()
        if start is not None:
            result.wall_seconds = time.perf_counter() - start
        return result


def simulate(
    trace: ApplicationTrace,
    num_threads: int = 8,
    architecture: Optional[ArchitectureConfig] = None,
    controller: Optional[ModeController] = None,
    scheduler: str = "fifo",
    scheduler_seed: int = 0,
    noise_model: Optional[NoiseModel] = None,
) -> SimulationResult:
    """Simulate ``trace`` in one call (convenience wrapper).

    See :class:`TaskSimSimulator` for parameter semantics.
    """
    simulator = TaskSimSimulator(
        architecture=architecture,
        scheduler=scheduler,
        scheduler_seed=scheduler_seed,
    )
    return simulator.run(
        trace,
        num_threads=num_threads,
        controller=controller,
        noise_model=noise_model,
    )
