"""Simulation-cost accounting.

The paper reports simulation *speedup*: the ratio between the time a full
detailed simulation takes and the time the sampled simulation takes.  Host
wall-clock time is noisy and machine dependent, so this reproduction tracks a
deterministic cost model alongside it:

* simulating a task instance in **detailed** mode costs work proportional to
  the instance's dynamic instruction count (a proxy for the per-instruction /
  per-event work a cycle-level simulator performs), and
* simulating an instance in **burst** mode costs a small constant, because the
  simulator merely advances the clock by ``instructions / IPC``.

Speedup numbers computed from this model reproduce the paper's trends exactly
(they depend only on which instances were simulated in which mode), while the
pytest-benchmark harnesses additionally record real wall-clock time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Cost units charged per dynamic instruction simulated in detailed mode.
DETAILED_COST_PER_INSTRUCTION = 1.0

#: Flat cost units charged per task instance simulated in burst mode.  The
#: value models the per-instance event handling (scheduling, clock update)
#: that burst mode still performs; it is small compared to the tens of
#: thousands of instructions of a typical task instance.
BURST_COST_PER_INSTANCE = 25.0


@dataclass
class SimulationCost:
    """Accumulated simulation cost of one run."""

    detailed_instructions: int = 0
    detailed_instances: int = 0
    burst_instances: int = 0
    detailed_memory_events: int = 0

    def charge_detailed(self, instructions: int, memory_events: int) -> None:
        """Account for one task instance simulated in detailed mode."""
        self.detailed_instructions += instructions
        self.detailed_instances += 1
        self.detailed_memory_events += memory_events

    def charge_burst(self) -> None:
        """Account for one task instance simulated in burst mode."""
        self.burst_instances += 1

    @property
    def total_units(self) -> float:
        """Total cost in abstract units (higher = slower simulation)."""
        return (
            self.detailed_instructions * DETAILED_COST_PER_INSTRUCTION
            + self.burst_instances * BURST_COST_PER_INSTANCE
        )

    @property
    def detailed_fraction(self) -> float:
        """Fraction of task instances simulated in detailed mode."""
        total = self.detailed_instances + self.burst_instances
        return self.detailed_instances / total if total else 0.0

    def speedup_over(self, baseline: "SimulationCost") -> float:
        """Return ``baseline.total_units / self.total_units``.

        By convention the baseline is the full detailed simulation, so values
        greater than one mean the sampled simulation is faster.
        """
        if self.total_units <= 0:
            return float("inf")
        return baseline.total_units / self.total_units
