"""Discrete-event simulation engine.

The engine drives the co-simulation of the runtime system and the
architecture model: idle worker threads request ready task instances from the
runtime, the mode controller decides how each instance is simulated, and the
engine advances simulated time from task completion to task completion.

Mode switching happens only at task-instance boundaries, exactly as in the
paper: when the controller switches from sampling to fast-forward, instances
that already started in detailed mode run to completion in detailed mode
while newly dispatched instances start in burst mode, so short mixed phases
occur naturally.

Dispatch is index based: detailed execution goes through the
:class:`~repro.arch.batch.BatchedCoreExecutor`, which resolves a task
instance by its record index on the columnar trace backbone, and results
accumulate into a columnar :class:`~repro.sim.results.InstanceTable`.  The
original per-record model (``use_batched=False``) is kept for equivalence
testing and as the baseline of the hot-path microbenchmark; both paths
produce bit-identical results.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional

from repro.arch.batch import BatchedCoreExecutor
from repro.arch.config import ArchitectureConfig
from repro.arch.core import DetailedCoreModel
from repro.arch.hierarchy import MemorySystem
from repro.arch.rob import RobModel
from repro.runtime.runtime import RuntimeSystem
from repro.runtime.scheduler import Scheduler
from repro.runtime.task import TaskInstance
from repro.sim.cost import SimulationCost
from repro.sim.modes import (
    AlwaysDetailedController,
    CompletionInfo,
    ModeController,
    ModeDecision,
    SimulationMode,
)
from repro.sim.results import InstanceTable, SimulationResult
from repro.trace.trace import ApplicationTrace

#: Type of the optional per-instance noise callback: maps a task instance to a
#: multiplicative factor applied to its detailed-mode cycle count.
NoiseModel = Callable[[TaskInstance], float]


class DeadlockError(RuntimeError):
    """Raised when no task is ready, none is running, but work remains."""


#: Completion-queue entries are plain tuples
#: ``(end_cycle, sequence, worker_id, instance, decision, ipc)`` — ordered by
#: time then dispatch sequence; the unique sequence number guarantees the
#: comparison never reaches the non-orderable payload fields, and tuple
#: comparison stays in C.


class SimulationEngine:
    """Simulates one application trace on one machine configuration.

    Parameters
    ----------
    trace:
        Application trace to replay.
    architecture:
        Architecture configuration (see :mod:`repro.arch.config`).
    num_threads:
        Number of simulated worker threads (one per simulated core).
    scheduler:
        Dynamic task scheduler; defaults to the runtime's FIFO scheduler.
    controller:
        Mode controller; defaults to full detailed simulation.
    noise_model:
        Optional multiplicative noise applied to detailed-mode cycle counts
        (used by the native-execution substitute).
    use_batched:
        Use the batched columnar executor for detailed mode (default).  The
        per-record ``DetailedCoreModel`` path produces bit-identical results
        and remains available as the microbenchmark baseline.
    """

    def __init__(
        self,
        trace: ApplicationTrace,
        architecture: ArchitectureConfig,
        num_threads: int,
        scheduler: Optional[Scheduler] = None,
        controller: Optional[ModeController] = None,
        noise_model: Optional[NoiseModel] = None,
        use_batched: bool = True,
    ) -> None:
        if num_threads < 1:
            raise ValueError("num_threads must be >= 1")
        self.trace = trace
        self.architecture = architecture
        self.num_threads = num_threads
        self.runtime = RuntimeSystem(trace, scheduler)
        self.controller: ModeController = (
            controller if controller is not None else AlwaysDetailedController()
        )
        self.noise_model = noise_model
        self.memory_system = MemorySystem(architecture, num_threads)
        rob = RobModel(architecture.core, l1_latency=architecture.l1.latency_cycles)
        self.cores = [
            DetailedCoreModel(core_id, self.memory_system, rob)
            for core_id in range(num_threads)
        ]
        self.batched: Optional[BatchedCoreExecutor] = (
            BatchedCoreExecutor(trace.columns, architecture, self.memory_system, rob)
            if use_batched
            else None
        )
        self.cost = SimulationCost()
        self._sequence = 0

    # ------------------------------------------------------------------
    def _execute_detailed(
        self, worker_id: int, instance: TaskInstance, active_workers: int
    ) -> tuple:
        """Run ``instance`` through the detailed model; return (cycles, ipc)."""
        noise = self.noise_model(instance) if self.noise_model is not None else None
        batched = self.batched
        if batched is not None:
            index = instance.instance_id
            cycles, ipc = batched.execute(
                index, worker_id, active_cores=active_workers, noise=noise
            )
            self.cost.charge_detailed(
                instructions=instance.instructions,
                memory_events=batched.detail_events(index),
            )
            return cycles, ipc
        execution = self.cores[worker_id].execute(
            instance.record, active_cores=active_workers, noise=noise
        )
        self.cost.charge_detailed(
            instructions=instance.instructions,
            memory_events=execution.memory_events,
        )
        return execution.cycles, execution.ipc

    def _execute_burst(self, instance: TaskInstance, ipc: float) -> tuple:
        """Advance ``instance`` in burst mode at ``ipc``; return (cycles, ipc)."""
        cycles = max(1.0, instance.instructions / ipc)
        self.cost.charge_burst()
        return cycles, instance.instructions / cycles

    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Simulate the complete application and return the result."""
        current_cycle = 0.0
        # Min-heap of idle worker ids: dispatch always picks the lowest id
        # first, at O(log n) per push/pop instead of the O(n) pop(0)/sort of
        # a plain list.
        idle_workers: List[int] = list(range(self.num_threads))
        heapq.heapify(idle_workers)
        completions: List[tuple] = []
        running: set = set()
        results = InstanceTable()

        while not self.runtime.finished():
            # Dispatch ready instances to idle workers.  Assignments are
            # collected first so every instance dispatched at this simulated
            # instant sees the same active-worker count (they will execute
            # concurrently, so they contend with each other).
            assignments: List[tuple] = []
            while idle_workers:
                worker_id = idle_workers[0]
                instance = self.runtime.next_task(worker_id)
                if instance is None:
                    break
                heapq.heappop(idle_workers)
                assignments.append((worker_id, instance))
            active_workers = len(running) + len(assignments)
            for worker_id, instance in assignments:
                decision = self.controller.choose_mode(
                    instance, worker_id, active_workers, current_cycle
                )
                instance.mark_running(worker_id, current_cycle)
                if decision.mode is SimulationMode.DETAILED:
                    cycles, ipc = self._execute_detailed(
                        worker_id, instance, active_workers
                    )
                else:
                    cycles, ipc = self._execute_burst(instance, decision.ipc)
                self._sequence += 1
                heapq.heappush(
                    completions,
                    (current_cycle + cycles, self._sequence, worker_id, instance,
                     decision, ipc),
                )
                running.add(worker_id)

            if not completions:
                if self.runtime.finished():
                    break
                raise DeadlockError(
                    f"no runnable tasks but {self.runtime.num_instances - self.runtime.num_completed}"
                    " instances remain; the trace's dependency graph cannot progress"
                )

            # Advance to the next completion.
            current_cycle, _, worker_id, instance, decision, completion_ipc = (
                heapq.heappop(completions)
            )
            running.remove(worker_id)
            instance.mark_completed(current_cycle)
            start_cycle = instance.start_cycle
            self.controller.notify_completion(
                CompletionInfo(
                    instance,
                    decision.mode,
                    current_cycle - start_cycle,
                    completion_ipc,
                    decision.is_warmup,
                    start_cycle,
                    current_cycle,
                    worker_id,
                    len(running) + 1,
                )
            )
            self.runtime.notify_completion(instance, worker_id)
            heapq.heappush(idle_workers, worker_id)
            results.append(
                instance.instance_id,
                instance.task_type.name,
                worker_id,
                decision.mode is SimulationMode.DETAILED,
                instance.instructions,
                start_cycle,
                current_cycle,
                completion_ipc,
                decision.is_warmup,
            )

        return SimulationResult(
            benchmark=self.trace.name,
            architecture=self.architecture.name,
            num_threads=self.num_threads,
            total_cycles=current_cycle,
            instances=results,
            cost=self.cost,
            metadata={"scheduler": type(self.runtime.scheduler).__name__},
        )
