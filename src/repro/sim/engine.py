"""Discrete-event simulation engine.

The engine drives the co-simulation of the runtime system and the
architecture model: idle worker threads request ready task instances from the
runtime, the mode controller decides how each instance is simulated, and the
engine advances simulated time from task completion to task completion.

Mode switching happens only at task-instance boundaries, exactly as in the
paper: when the controller switches from sampling to fast-forward, instances
that already started in detailed mode run to completion in detailed mode
while newly dispatched instances start in burst mode, so short mixed phases
occur naturally.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.arch.config import ArchitectureConfig
from repro.arch.core import DetailedCoreModel
from repro.arch.hierarchy import MemorySystem
from repro.arch.rob import RobModel
from repro.runtime.runtime import RuntimeSystem
from repro.runtime.scheduler import Scheduler
from repro.runtime.task import TaskInstance
from repro.sim.cost import SimulationCost
from repro.sim.modes import (
    AlwaysDetailedController,
    CompletionInfo,
    ModeController,
    ModeDecision,
    SimulationMode,
)
from repro.sim.results import InstanceResult, SimulationResult
from repro.trace.trace import ApplicationTrace

#: Type of the optional per-instance noise callback: maps a task instance to a
#: multiplicative factor applied to its detailed-mode cycle count.
NoiseModel = Callable[[TaskInstance], float]


class DeadlockError(RuntimeError):
    """Raised when no task is ready, none is running, but work remains."""


@dataclass(order=True)
class _Completion:
    """Entry of the completion event queue (ordered by time, then sequence)."""

    end_cycle: float
    sequence: int
    worker_id: int
    instance: TaskInstance = None  # type: ignore[assignment]
    decision: ModeDecision = None  # type: ignore[assignment]
    ipc: float = 0.0


class SimulationEngine:
    """Simulates one application trace on one machine configuration.

    Parameters
    ----------
    trace:
        Application trace to replay.
    architecture:
        Architecture configuration (see :mod:`repro.arch.config`).
    num_threads:
        Number of simulated worker threads (one per simulated core).
    scheduler:
        Dynamic task scheduler; defaults to the runtime's FIFO scheduler.
    controller:
        Mode controller; defaults to full detailed simulation.
    noise_model:
        Optional multiplicative noise applied to detailed-mode cycle counts
        (used by the native-execution substitute).
    """

    def __init__(
        self,
        trace: ApplicationTrace,
        architecture: ArchitectureConfig,
        num_threads: int,
        scheduler: Optional[Scheduler] = None,
        controller: Optional[ModeController] = None,
        noise_model: Optional[NoiseModel] = None,
    ) -> None:
        if num_threads < 1:
            raise ValueError("num_threads must be >= 1")
        self.trace = trace
        self.architecture = architecture
        self.num_threads = num_threads
        self.runtime = RuntimeSystem(trace, scheduler)
        self.controller: ModeController = (
            controller if controller is not None else AlwaysDetailedController()
        )
        self.noise_model = noise_model
        self.memory_system = MemorySystem(architecture, num_threads)
        rob = RobModel(architecture.core, l1_latency=architecture.l1.latency_cycles)
        self.cores = [
            DetailedCoreModel(core_id, self.memory_system, rob)
            for core_id in range(num_threads)
        ]
        self.cost = SimulationCost()
        self._sequence = 0

    # ------------------------------------------------------------------
    def _execute_detailed(
        self, worker_id: int, instance: TaskInstance, active_workers: int
    ) -> tuple:
        """Run ``instance`` through the detailed model; return (cycles, ipc)."""
        noise = self.noise_model(instance) if self.noise_model is not None else None
        execution = self.cores[worker_id].execute(
            instance.record, active_cores=active_workers, noise=noise
        )
        self.cost.charge_detailed(
            instructions=instance.instructions,
            memory_events=execution.memory_events,
        )
        return execution.cycles, execution.ipc

    def _execute_burst(self, instance: TaskInstance, ipc: float) -> tuple:
        """Advance ``instance`` in burst mode at ``ipc``; return (cycles, ipc)."""
        cycles = max(1.0, instance.instructions / ipc)
        self.cost.charge_burst()
        return cycles, instance.instructions / cycles

    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Simulate the complete application and return the result."""
        current_cycle = 0.0
        # Min-heap of idle worker ids: dispatch always picks the lowest id
        # first, at O(log n) per push/pop instead of the O(n) pop(0)/sort of
        # a plain list.
        idle_workers: List[int] = list(range(self.num_threads))
        heapq.heapify(idle_workers)
        completions: List[_Completion] = []
        running: Dict[int, _Completion] = {}
        instance_results: List[InstanceResult] = []

        while not self.runtime.finished():
            # Dispatch ready instances to idle workers.  Assignments are
            # collected first so every instance dispatched at this simulated
            # instant sees the same active-worker count (they will execute
            # concurrently, so they contend with each other).
            assignments: List[tuple] = []
            while idle_workers:
                worker_id = idle_workers[0]
                instance = self.runtime.next_task(worker_id)
                if instance is None:
                    break
                heapq.heappop(idle_workers)
                assignments.append((worker_id, instance))
            active_workers = len(running) + len(assignments)
            for worker_id, instance in assignments:
                decision = self.controller.choose_mode(
                    instance, worker_id, active_workers, current_cycle
                )
                instance.mark_running(worker_id, current_cycle)
                if decision.mode is SimulationMode.DETAILED:
                    cycles, ipc = self._execute_detailed(
                        worker_id, instance, active_workers
                    )
                else:
                    cycles, ipc = self._execute_burst(instance, decision.ipc)
                self._sequence += 1
                completion = _Completion(
                    end_cycle=current_cycle + cycles,
                    sequence=self._sequence,
                    worker_id=worker_id,
                    instance=instance,
                    decision=decision,
                    ipc=ipc,
                )
                heapq.heappush(completions, completion)
                running[worker_id] = completion

            if not completions:
                if self.runtime.finished():
                    break
                raise DeadlockError(
                    f"no runnable tasks but {self.runtime.num_instances - self.runtime.num_completed}"
                    " instances remain; the trace's dependency graph cannot progress"
                )

            # Advance to the next completion.
            completion = heapq.heappop(completions)
            current_cycle = completion.end_cycle
            worker_id = completion.worker_id
            instance = completion.instance
            del running[worker_id]
            instance.mark_completed(current_cycle)
            info = CompletionInfo(
                instance=instance,
                mode=completion.decision.mode,
                cycles=current_cycle - instance.start_cycle,
                ipc=completion.ipc,
                is_warmup=completion.decision.is_warmup,
                start_cycle=instance.start_cycle,
                end_cycle=current_cycle,
                worker_id=worker_id,
                active_workers=len(running) + 1,
            )
            self.controller.notify_completion(info)
            self.runtime.notify_completion(instance, worker_id)
            heapq.heappush(idle_workers, worker_id)
            instance_results.append(
                InstanceResult(
                    instance_id=instance.instance_id,
                    task_type=instance.task_type.name,
                    worker_id=worker_id,
                    mode=completion.decision.mode,
                    instructions=instance.instructions,
                    start_cycle=instance.start_cycle,
                    end_cycle=current_cycle,
                    ipc=completion.ipc,
                    is_warmup=completion.decision.is_warmup,
                )
            )

        return SimulationResult(
            benchmark=self.trace.name,
            architecture=self.architecture.name,
            num_threads=self.num_threads,
            total_cycles=current_cycle,
            instances=instance_results,
            cost=self.cost,
            metadata={"scheduler": type(self.runtime.scheduler).__name__},
        )
