"""Discrete-event simulation engine.

The engine drives the co-simulation of the runtime system and the
architecture model: idle worker threads request ready task instances from the
runtime, the mode controller decides how each instance is simulated, and the
engine advances simulated time from task completion to task completion.

Mode switching happens only at task-instance boundaries, exactly as in the
paper: when the controller switches from sampling to fast-forward, instances
that already started in detailed mode run to completion in detailed mode
while newly dispatched instances start in burst mode, so short mixed phases
occur naturally.

Dispatch is index based: detailed execution goes through the
:class:`~repro.arch.batch.BatchedCoreExecutor`, which resolves a task
instance by its record index on the columnar trace backbone, and results
accumulate into a columnar :class:`~repro.sim.results.InstanceTable`.  The
original per-record model (``use_batched=False``) is kept for equivalence
testing and as the baseline of the hot-path microbenchmark; both paths
produce bit-identical results.

Deferred grouped dispatch (``use_vector``)
------------------------------------------
A dispatched instance's cycle count is only *consumed* when that instance
could be the next completion on the heap.  The grouped-dispatch path
therefore defers the detailed evaluation of instances that commute with all
other deferred instances (different cores, no shared-data writes — see
:mod:`repro.arch.vector`; same-set accesses at shared levels are serialised
in-kernel, so set aliasing does not break a group): as long as an
already-known completion provably precedes every deferred instance's
completion (its end time is bounded below by the dispatch cycle plus the
precomputed contention-free dispatch floor), the engine keeps popping known
completions and dispatching further work.  When the bound no longer
separates them, the whole deferred group is evaluated at once — in dispatch
order, so results and statistics are bit-identical to immediate
evaluation — and pushed onto the heap.  In steady state this yields groups
close to ``num_threads`` even though the simulated schedule dispatches one
instance per completion.

Groups execute through one of two backends, chosen by a measured adaptive
policy in :meth:`SimulationEngine._run_grouped`: the scalar grouped
executor (plain :class:`~repro.arch.batch.BatchedCoreExecutor` calls) or
the vectorised walk kernel (:class:`~repro.arch.vector.VectorWalkEngine`).
The engine first measures scalar per-event cost over a warm-up window,
then — if the trace is event-heavy enough for the kernel's fixed overhead
to amortise — trials the kernel over a few groups and keeps whichever
backend is faster, deactivating the kernel when the trial loses (rows the
kernel touched stay plane-resident in the shared tag stores and the scalar
walk materialises them lazily, so abandoning costs nothing beyond the trial
itself).  Both backends are bit-identical, so the choice affects wall time
only; per-run coverage is reported in
:attr:`SimulationEngine.vector_stats`, along with a per-phase wall-time
breakdown when ``$REPRO_PROFILE`` is set.
"""

from __future__ import annotations

import heapq
import os
import time
from typing import Callable, Dict, List, Optional

from repro.arch.batch import BatchedCoreExecutor
from repro.arch.vector import VectorWalkEngine
from repro.arch.config import ArchitectureConfig
from repro.arch.core import DetailedCoreModel
from repro.arch.hierarchy import MemorySystem
from repro.arch.rob import RobModel
from repro.runtime.runtime import RuntimeSystem
from repro.runtime.scheduler import Scheduler
from repro.runtime.task import TaskInstance, TaskState
from repro.sim.cost import SimulationCost
from repro.sim.modes import (
    DETAILED_DECISION,
    AlwaysDetailedController,
    CompletionInfo,
    ModeController,
    ModeDecision,
    SimulationMode,
)
from repro.sim.results import InstanceTable, SimulationResult
from repro.trace.trace import ApplicationTrace

#: Type of the optional per-instance noise callback: maps a task instance to a
#: multiplicative factor applied to its detailed-mode cycle count.
NoiseModel = Callable[[TaskInstance], float]


class DeadlockError(RuntimeError):
    """Raised when no task is ready, none is running, but work remains."""


#: Completion-queue entries are plain tuples
#: ``(end_cycle, sequence, worker_id, instance, decision, ipc)`` — ordered by
#: time then dispatch sequence; the unique sequence number guarantees the
#: comparison never reaches the non-orderable payload fields, and tuple
#: comparison stays in C.


class SimulationEngine:
    """Simulates one application trace on one machine configuration.

    Parameters
    ----------
    trace:
        Application trace to replay.
    architecture:
        Architecture configuration (see :mod:`repro.arch.config`).
    num_threads:
        Number of simulated worker threads (one per simulated core).
    scheduler:
        Dynamic task scheduler; defaults to the runtime's FIFO scheduler.
    controller:
        Mode controller; defaults to full detailed simulation.
    noise_model:
        Optional multiplicative noise applied to detailed-mode cycle counts
        (used by the native-execution substitute).
    use_batched:
        Use the batched columnar executor for detailed mode (default).  The
        per-record ``DetailedCoreModel`` path produces bit-identical results
        and remains available as the microbenchmark baseline.
    use_vector:
        Use the deferred grouped-dispatch path feeding commuting instances
        to the vectorised walk engine (default when ``use_batched``; forced
        off otherwise).  Results are bit-identical either way; the flag
        exists for equivalence testing and benchmarking.
    """

    def __init__(
        self,
        trace: ApplicationTrace,
        architecture: ArchitectureConfig,
        num_threads: int,
        scheduler: Optional[Scheduler] = None,
        controller: Optional[ModeController] = None,
        noise_model: Optional[NoiseModel] = None,
        use_batched: bool = True,
        use_vector: Optional[bool] = None,
    ) -> None:
        if num_threads < 1:
            raise ValueError("num_threads must be >= 1")
        self.trace = trace
        self.architecture = architecture
        self.num_threads = num_threads
        self.runtime = RuntimeSystem(trace, scheduler)
        self.controller: ModeController = (
            controller if controller is not None else AlwaysDetailedController()
        )
        self.noise_model = noise_model
        self.memory_system = MemorySystem(architecture, num_threads)
        rob = RobModel(architecture.core, l1_latency=architecture.l1.latency_cycles)
        self.cores = [
            DetailedCoreModel(core_id, self.memory_system, rob)
            for core_id in range(num_threads)
        ]
        # Per-phase wall-time breakdown (static precompute / scalar walk /
        # kernel / lazy export), recorded when ``$REPRO_PROFILE`` is set and
        # surfaced as ``vector_stats["phase_wall_s"]`` after a grouped run.
        self._phase_wall: Optional[Dict[str, float]] = (
            {"static": 0.0, "scalar_walk": 0.0, "kernel": 0.0, "export": 0.0}
            if os.environ.get("REPRO_PROFILE")
            else None
        )
        static_start = time.perf_counter() if self._phase_wall is not None else 0.0
        self.batched: Optional[BatchedCoreExecutor] = (
            BatchedCoreExecutor(trace.columns, architecture, self.memory_system, rob)
            if use_batched
            else None
        )
        if self._phase_wall is not None:
            self._phase_wall["static"] = time.perf_counter() - static_start
            for store in self.memory_system.stores:
                store.profile = True
        if use_vector is None:
            use_vector = use_batched
        # A single worker never accumulates a group; skip the bookkeeping.
        self.vector: Optional[VectorWalkEngine] = (
            VectorWalkEngine(self.batched)
            if use_vector and self.batched is not None and num_threads > 1
            else None
        )
        #: Coverage counters of the grouped-dispatch path (vector-walked vs
        #: scalar-executed detailed instances, group count and sizes).  Kept
        #: on the engine — never in :class:`SimulationResult` — so stored
        #: experiment payloads stay byte-identical across backends.
        self.vector_stats = {
            "vector_instances": 0,
            "scalar_instances": 0,
            "groups": 0,
            "max_group": 0,
        }
        self.cost = SimulationCost()
        self._sequence = 0

    # ------------------------------------------------------------------
    def _execute_detailed(
        self, worker_id: int, instance: TaskInstance, active_workers: int
    ) -> tuple:
        """Run ``instance`` through the detailed model; return (cycles, ipc)."""
        noise = self.noise_model(instance) if self.noise_model is not None else None
        batched = self.batched
        if batched is not None:
            index = instance.instance_id
            cycles, ipc = batched.execute(
                index, worker_id, active_cores=active_workers, noise=noise
            )
            self.cost.charge_detailed(
                instructions=instance.instructions,
                memory_events=batched.detail_events(index),
            )
            return cycles, ipc
        execution = self.cores[worker_id].execute(
            instance.record, active_cores=active_workers, noise=noise
        )
        self.cost.charge_detailed(
            instructions=instance.instructions,
            memory_events=execution.memory_events,
        )
        return execution.cycles, execution.ipc

    def _execute_burst(self, instance: TaskInstance, ipc: float) -> tuple:
        """Advance ``instance`` in burst mode at ``ipc``; return (cycles, ipc)."""
        cycles = max(1.0, instance.instructions / ipc)
        self.cost.charge_burst()
        return cycles, instance.instructions / cycles

    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Simulate the complete application and return the result."""
        if self.vector is not None:
            return self._run_grouped()
        current_cycle = 0.0
        # Min-heap of idle worker ids: dispatch always picks the lowest id
        # first, at O(log n) per push/pop instead of the O(n) pop(0)/sort of
        # a plain list.
        idle_workers: List[int] = list(range(self.num_threads))
        heapq.heapify(idle_workers)
        completions: List[tuple] = []
        running: set = set()
        results = InstanceTable()
        controller = self.controller
        # The default controller's decision is a singleton constant and its
        # completion callback is a no-op: skip both calls (and the
        # CompletionInfo construction) in the hot loop.
        fast_detailed = type(controller) is AlwaysDetailedController

        while not self.runtime.finished():
            # Dispatch ready instances to idle workers.  Assignments are
            # collected first so every instance dispatched at this simulated
            # instant sees the same active-worker count (they will execute
            # concurrently, so they contend with each other).
            assignments: List[tuple] = []
            while idle_workers:
                worker_id = idle_workers[0]
                instance = self.runtime.next_task(worker_id)
                if instance is None:
                    break
                heapq.heappop(idle_workers)
                assignments.append((worker_id, instance))
            active_workers = len(running) + len(assignments)
            for worker_id, instance in assignments:
                decision = (
                    DETAILED_DECISION
                    if fast_detailed
                    else controller.choose_mode(
                        instance, worker_id, active_workers, current_cycle
                    )
                )
                instance.mark_running(worker_id, current_cycle)
                if decision.mode is SimulationMode.DETAILED:
                    cycles, ipc = self._execute_detailed(
                        worker_id, instance, active_workers
                    )
                else:
                    cycles, ipc = self._execute_burst(instance, decision.ipc)
                self._sequence += 1
                heapq.heappush(
                    completions,
                    (current_cycle + cycles, self._sequence, worker_id, instance,
                     decision, ipc),
                )
                running.add(worker_id)

            if not completions:
                if self.runtime.finished():
                    break
                raise DeadlockError(
                    f"no runnable tasks but {self.runtime.num_instances - self.runtime.num_completed}"
                    " instances remain; the trace's dependency graph cannot progress"
                )

            # Advance to the next completion.
            current_cycle, _, worker_id, instance, decision, completion_ipc = (
                heapq.heappop(completions)
            )
            running.remove(worker_id)
            instance.mark_completed(current_cycle)
            start_cycle = instance.start_cycle
            if not fast_detailed:
                controller.notify_completion(
                    CompletionInfo(
                        instance,
                        decision.mode,
                        current_cycle - start_cycle,
                        completion_ipc,
                        decision.is_warmup,
                        start_cycle,
                        current_cycle,
                        worker_id,
                        len(running) + 1,
                    )
                )
            self.runtime.notify_completion(instance, worker_id)
            heapq.heappush(idle_workers, worker_id)
            results.append(
                instance.instance_id,
                instance.task_type.name,
                worker_id,
                decision.mode is SimulationMode.DETAILED,
                instance.instructions,
                start_cycle,
                current_cycle,
                completion_ipc,
                decision.is_warmup,
            )

        return SimulationResult(
            benchmark=self.trace.name,
            architecture=self.architecture.name,
            num_threads=self.num_threads,
            total_cycles=current_cycle,
            instances=results,
            cost=self.cost,
            metadata={"scheduler": type(self.runtime.scheduler).__name__},
        )

    # ------------------------------------------------------------------
    def _run_grouped(self) -> SimulationResult:
        """The deferred grouped-dispatch variant of :meth:`run`.

        Control flow, float operation order and heap semantics replay
        :meth:`run` exactly; the only difference is *when* commuting
        detailed instances are evaluated (grouped, at the latest point the
        completion order still provably matches) and *how* (vector kernel
        for large groups, scalar executor otherwise).
        """
        current_cycle = 0.0
        idle_workers: List[int] = list(range(self.num_threads))
        heapq.heapify(idle_workers)
        completions: List[tuple] = []
        running: set = set()
        results = InstanceTable()

        vector = self.vector
        batched = self.batched
        noise_model = self.noise_model
        cycles_floor = batched.plan.cycles_floor_list
        detail_events = batched.detail_events
        stats = self.vector_stats
        controller = self.controller
        fast_detailed = type(controller) is AlwaysDetailedController

        # Hot-loop bindings.  This method is the default detailed path and
        # its per-instance engine overhead is directly visible in the
        # hot-path benchmark, so method lookups are hoisted and the
        # checked READY->RUNNING->COMPLETED transitions are inlined (the
        # instances handed out by ``next_task`` are READY by construction;
        # :meth:`run` keeps the checked ``mark_*`` API).
        runtime = self.runtime
        runtime_finished = runtime.finished
        next_task = runtime.next_task
        runtime_notify = runtime.notify_completion
        cost = self.cost
        charge_detailed = cost.charge_detailed
        results_append = results.append
        heappush = heapq.heappush
        heappop = heapq.heappop
        choose_mode = controller.choose_mode
        record_commutes = vector.record_commutes
        running_state = TaskState.RUNNING
        completed_state = TaskState.COMPLETED
        detailed_mode = SimulationMode.DETAILED
        sequence = self._sequence

        # Deferred entries: (dispatch_cycle, sequence, worker_id, instance,
        # decision, active_workers, noise, record_index), in dispatch order.
        deferred: List[tuple] = []
        deferred_bound = float("inf")
        deferred_events = 0

        # Adaptive backend choice: both flush paths are bit-identical, so
        # the pick is purely a throughput matter, and throughput depends on
        # how the trace's group width and event density interact with the
        # host — neither is knowable up front, but both are cheap to
        # *measure*.  Flushes start on the scalar grouped executor (timed).
        # Once groups look structurally wide and event-rich enough for the
        # kernel's per-group fixed cost to plausibly amortise, the kernel
        # runs a timed trial (its first two groups pay plane allocation
        # and the bulk of row adoption and are excluded); the faster
        # backend — by measured per-event wall time — is then committed
        # for the rest of the run, except that a trial measuring hopelessly
        # behind is abandoned after a couple of counted groups.  Abandoning the kernel is nearly free: rows it touched
        # stay plane-resident in the level tag stores and the scalar walk
        # materialises each one lazily on first touch, so ``deactivate``
        # only drains the deferred statistics.
        BACKEND_SCALAR_MEASURE = 0
        BACKEND_KERNEL_TRIAL = 1
        BACKEND_KERNEL = 2
        BACKEND_SCALAR = 3
        backend = BACKEND_SCALAR_MEASURE
        # Width precondition: groups must run near the worker count wide,
        # and wide in absolute terms — the kernel's fixed per-group cost
        # (argsort, masked gathers, statistics scatter) is about as large
        # as an entire 8-wide scalar group, so single-digit widths cannot
        # amortise it regardless of event density and are not worth the
        # trial groups.
        kernel_threshold = max(0.75 * self.num_threads, 12.0)
        # Structural precondition for trialling the kernel: enough events
        # per group that its fixed per-group cost is not hopeless.  With
        # the per-group export round trip gone a lost trial costs only the
        # trial groups themselves, so the floor sits well below the scalar
        # grouped executor's empirical break-even (~250 events/group) —
        # wide-group traces whose density straddles the boundary get to
        # measure instead of being pre-judged.
        kernel_event_threshold = 96.0
        #: Events each timed phase must cover before its mean is trusted.
        measure_min_events = 512
        trial_target_groups = 6
        # Kernel groups excluded from the trial's timing: the first pays
        # plane allocation, the second still adopts the bulk of the rows
        # the scalar measure phase populated — counting either biases the
        # trial against the kernel's steady state (measured: the second
        # group runs ~3x its steady cost, enough to flip a ~2x win into a
        # marginal loss).
        kernel_warmup_groups = 2
        # A trial that is hopeless after a couple of counted groups is
        # abandoned without waiting for the full target, so narrow-group
        # traces pay only a few slow kernel groups for a lost trial.
        trial_bailout_groups = 2
        trial_bailout_ratio = 2.0
        perf_counter = time.perf_counter
        phase_wall = self._phase_wall
        groups_seen = 0
        instances_seen = 0
        events_seen = 0
        scalar_time = 0.0
        scalar_timed_events = 0
        kernel_time = 0.0
        kernel_timed_events = 0
        kernel_trial_groups = 0
        kernel_warmup_remaining = kernel_warmup_groups

        def flush_deferred() -> None:
            nonlocal deferred_bound, deferred_events
            nonlocal backend, groups_seen, instances_seen, events_seen
            nonlocal scalar_time, scalar_timed_events
            nonlocal kernel_time, kernel_timed_events, kernel_trial_groups
            nonlocal kernel_warmup_remaining
            size = len(deferred)
            stats["groups"] += 1
            if size > stats["max_group"]:
                stats["max_group"] = size
            groups_seen += 1
            instances_seen += size
            events_seen += deferred_events
            group = [(e[7], e[2], e[5], e[6]) for e in deferred]
            if backend == BACKEND_KERNEL:
                if phase_wall is None:
                    outcomes = vector.execute_group(group)
                else:
                    start = perf_counter()
                    outcomes = vector.execute_group(group)
                    phase_wall["kernel"] += perf_counter() - start
                stats["vector_instances"] += size
            elif backend == BACKEND_SCALAR:
                if phase_wall is None:
                    outcomes = batched.execute_many(group)
                else:
                    start = perf_counter()
                    outcomes = batched.execute_many(group)
                    phase_wall["scalar_walk"] += perf_counter() - start
                stats["scalar_instances"] += size
            elif backend == BACKEND_SCALAR_MEASURE:
                start = perf_counter()
                outcomes = batched.execute_many(group)
                elapsed = perf_counter() - start
                scalar_time += elapsed
                if phase_wall is not None:
                    phase_wall["scalar_walk"] += elapsed
                scalar_timed_events += deferred_events
                stats["scalar_instances"] += size
                if (
                    groups_seen >= 8
                    and scalar_timed_events >= measure_min_events
                    and instances_seen >= kernel_threshold * groups_seen
                    and events_seen >= kernel_event_threshold * groups_seen
                ):
                    backend = BACKEND_KERNEL_TRIAL
            else:  # BACKEND_KERNEL_TRIAL
                start = perf_counter()
                outcomes = vector.execute_group(group)
                elapsed = perf_counter() - start
                if phase_wall is not None:
                    phase_wall["kernel"] += elapsed
                if kernel_warmup_remaining > 0:
                    # Warm-up groups (allocation + adoption) are excluded;
                    # the trial measures the kernel's steady state.
                    kernel_warmup_remaining -= 1
                else:
                    kernel_time += elapsed
                    kernel_timed_events += deferred_events
                    kernel_trial_groups += 1
                stats["vector_instances"] += size
                if (
                    kernel_trial_groups >= trial_bailout_groups
                    and kernel_timed_events > 0
                    and kernel_time * scalar_timed_events
                    > trial_bailout_ratio * scalar_time * kernel_timed_events
                ):
                    # Hopelessly behind: stop paying for slow kernel groups.
                    vector.deactivate()
                    backend = BACKEND_SCALAR
                elif (
                    kernel_trial_groups >= trial_target_groups
                    and kernel_timed_events >= measure_min_events
                ):
                    # Commit to the lower measured time per event.
                    if (
                        kernel_time * scalar_timed_events
                        <= scalar_time * kernel_timed_events
                    ):
                        backend = BACKEND_KERNEL
                    else:
                        vector.deactivate()
                        backend = BACKEND_SCALAR
            instructions_sum = 0
            for entry, (cycles, ipc) in zip(deferred, outcomes):
                cycle0, seq, worker, instance, decision, _a, _n, _i = entry
                instructions_sum += instance.instructions
                heappush(
                    completions,
                    (cycle0 + cycles, seq, worker, instance, decision, ipc),
                )
            # Batched cost charging: integer sums, so the aggregate update
            # leaves the cost counters exactly as per-instance charging
            # would (``deferred_events`` is the group's event total).
            cost.detailed_instructions += instructions_sum
            cost.detailed_instances += size
            cost.detailed_memory_events += deferred_events
            deferred.clear()
            deferred_bound = float("inf")
            deferred_events = 0

        while not runtime_finished():
            assignments: List[tuple] = []
            while idle_workers:
                worker_id = idle_workers[0]
                instance = next_task(worker_id)
                if instance is None:
                    break
                heappop(idle_workers)
                assignments.append((worker_id, instance))
            active_workers = len(running) + len(assignments)
            for worker_id, instance in assignments:
                decision = (
                    DETAILED_DECISION
                    if fast_detailed
                    else choose_mode(
                        instance, worker_id, active_workers, current_cycle
                    )
                )
                # READY -> RUNNING (inlined mark_running).
                instance.state = running_state
                instance.worker_id = worker_id
                instance.start_cycle = current_cycle
                sequence += 1
                if decision.mode is detailed_mode:
                    noise = (
                        noise_model(instance) if noise_model is not None else None
                    )
                    index = instance.instance_id
                    if record_commutes(index) and (
                        noise is None or noise > 0.0
                    ):
                        deferred.append(
                            (
                                current_cycle,
                                sequence,
                                worker_id,
                                instance,
                                decision,
                                active_workers,
                                noise,
                                index,
                            )
                        )
                        deferred_events += detail_events(index)
                        bound = cycles_floor[index]
                        if noise is not None:
                            bound *= noise
                        bound += current_cycle
                        if bound < deferred_bound:
                            deferred_bound = bound
                        running.add(worker_id)
                        continue
                    # Shared-data writer (or non-positive noise): order
                    # matters against everything — drain the group first.
                    if deferred:
                        flush_deferred()
                    if (noise is None or noise > 0.0) and vector.kernel_active():
                        # Writer on the plane state: its own walk plus the
                        # coherence invalidations, no dict round trip.
                        cycles, ipc = vector.execute_writer(
                            index, worker_id, active_workers, noise
                        )
                        stats["vector_instances"] += 1
                    else:
                        # Kernel inactive (nothing commutes, or it lost its
                        # trial) or pathological noise: scalar path — any
                        # plane-resident rows materialise lazily on touch.
                        cycles, ipc = batched.execute(
                            index,
                            worker_id,
                            active_cores=active_workers,
                            noise=noise,
                        )
                        stats["scalar_instances"] += 1
                    charge_detailed(
                        instructions=instance.instructions,
                        memory_events=detail_events(index),
                    )
                else:
                    cycles, ipc = self._execute_burst(instance, decision.ipc)
                heappush(
                    completions,
                    (current_cycle + cycles, sequence, worker_id, instance,
                     decision, ipc),
                )
                running.add(worker_id)

            # A known completion can be popped only while it strictly
            # precedes every deferred instance's completion (the bound is a
            # lower bound on deferred end times, so ``< bound`` suffices);
            # on ties or overshoot, flush — heap order then decides.
            if deferred and (
                not completions or completions[0][0] >= deferred_bound
            ):
                flush_deferred()
            if not completions:
                if runtime_finished():
                    break
                raise DeadlockError(
                    f"no runnable tasks but {self.runtime.num_instances - self.runtime.num_completed}"
                    " instances remain; the trace's dependency graph cannot progress"
                )

            current_cycle, _, worker_id, instance, decision, completion_ipc = (
                heappop(completions)
            )
            running.remove(worker_id)
            # RUNNING -> COMPLETED (inlined mark_completed).
            instance.state = completed_state
            instance.end_cycle = current_cycle
            start_cycle = instance.start_cycle
            if not fast_detailed:
                controller.notify_completion(
                    CompletionInfo(
                        instance,
                        decision.mode,
                        current_cycle - start_cycle,
                        completion_ipc,
                        decision.is_warmup,
                        start_cycle,
                        current_cycle,
                        worker_id,
                        len(running) + 1,
                    )
                )
            runtime_notify(instance, worker_id)
            heappush(idle_workers, worker_id)
            results_append(
                instance.instance_id,
                instance.task_type.name,
                worker_id,
                decision.mode is detailed_mode,
                instance.instructions,
                start_cycle,
                current_cycle,
                completion_ipc,
                decision.is_warmup,
            )

        self._sequence = sequence
        # Drain the kernel's deferred integer statistics into the cache
        # counters.  Tag-store contents stay plane-resident — nothing in
        # the production path reads the OrderedDicts after a run; callers
        # that do inspect them (the equivalence tests) call
        # ``flush_state()``, and any later scalar reader materialises rows
        # lazily.
        vector.flush_statistics()
        if phase_wall is not None:
            phase_wall["export"] = sum(
                store.export_seconds for store in self.memory_system.stores
            )
            stats["phase_wall_s"] = dict(phase_wall)
        return SimulationResult(
            benchmark=self.trace.name,
            architecture=self.architecture.name,
            num_threads=self.num_threads,
            total_cycles=current_cycle,
            instances=results,
            cost=self.cost,
            metadata={"scheduler": type(self.runtime.scheduler).__name__},
        )
