"""Simulation modes and the mode-controller interface.

TaskPoint requires its host simulator to provide exactly two things (paper
§III-A): a detailed and a fast simulation mode, and the ability to run the
fast mode at a user-specified IPC.  The :class:`ModeController` protocol is
the hook through which a sampling methodology drives those modes: before each
task instance starts, the engine asks the controller which mode to use (and,
for burst mode, at which IPC); after each instance finishes, the engine
reports the measured timing back to the controller.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Protocol, runtime_checkable

from repro.runtime.task import TaskInstance


class SimulationMode(enum.Enum):
    """The two simulation modes of the TaskSim-style simulator."""

    DETAILED = "detailed"
    BURST = "burst"


@dataclass(frozen=True)
class ModeDecision:
    """Decision returned by a mode controller for one task instance.

    Attributes
    ----------
    mode:
        Simulation mode to use for the instance.
    ipc:
        Target IPC for burst mode.  Ignored in detailed mode.
    is_warmup:
        ``True`` if the instance is simulated in detail purely to warm
        micro-architectural state (its IPC is not a valid sample).
    """

    mode: SimulationMode
    ipc: Optional[float] = None
    is_warmup: bool = False

    def __post_init__(self) -> None:
        if self.mode is SimulationMode.BURST:
            if self.ipc is None or self.ipc <= 0:
                raise ValueError("burst mode requires a positive target IPC")


class CompletionInfo:
    """Timing information reported to the controller after an instance ends.

    A ``__slots__`` value class rather than a frozen dataclass: one is built
    per completed task instance on the engine hot path, and frozen-dataclass
    construction (``object.__setattr__`` per field) is measurably slower.
    """

    __slots__ = (
        "instance",
        "mode",
        "cycles",
        "ipc",
        "is_warmup",
        "start_cycle",
        "end_cycle",
        "worker_id",
        "active_workers",
    )

    def __init__(
        self,
        instance: TaskInstance,
        mode: SimulationMode,
        cycles: float,
        ipc: float,
        is_warmup: bool,
        start_cycle: float,
        end_cycle: float,
        worker_id: int,
        active_workers: int,
    ) -> None:
        self.instance = instance
        self.mode = mode
        self.cycles = cycles
        self.ipc = ipc
        self.is_warmup = is_warmup
        self.start_cycle = start_cycle
        self.end_cycle = end_cycle
        self.worker_id = worker_id
        self.active_workers = active_workers

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompletionInfo(instance={self.instance!r}, mode={self.mode},"
            f" cycles={self.cycles}, ipc={self.ipc})"
        )


@runtime_checkable
class ModeController(Protocol):
    """Decides, per task instance, whether to simulate in detail or burst."""

    def choose_mode(
        self,
        instance: TaskInstance,
        worker_id: int,
        active_workers: int,
        current_cycle: float,
    ) -> ModeDecision:
        """Return the mode decision for ``instance`` about to start."""
        ...

    def notify_completion(self, info: CompletionInfo) -> None:
        """Receive the measured timing of a completed instance."""
        ...


#: Shared immutable decisions — ModeDecision is frozen, so controllers on the
#: hot path return these singletons instead of allocating per instance.
DETAILED_DECISION = ModeDecision(mode=SimulationMode.DETAILED)
DETAILED_WARMUP_DECISION = ModeDecision(mode=SimulationMode.DETAILED, is_warmup=True)


def burst_decision(ipc: float) -> ModeDecision:
    """A burst-mode decision at ``ipc`` — the one shape every sampling
    controller (TaskPoint's periodic/lazy, the stratified engine) emits when
    it fast-forwards an instance.  Centralised so the validation in
    :class:`ModeDecision` is the single gatekeeper for fast-forward IPCs."""
    return ModeDecision(mode=SimulationMode.BURST, ipc=ipc)


class AlwaysDetailedController:
    """Baseline controller: every task instance is simulated in detail."""

    def choose_mode(
        self,
        instance: TaskInstance,
        worker_id: int,
        active_workers: int,
        current_cycle: float,
    ) -> ModeDecision:
        """Always choose detailed mode."""
        return DETAILED_DECISION

    def notify_completion(self, info: CompletionInfo) -> None:
        """No state to update."""


class FixedIpcController:
    """Controller that burst-simulates everything at one fixed IPC.

    Useful as a lower bound on simulation cost and for testing the burst
    machinery in isolation (this corresponds to TaskSim's original burst mode
    fed with a constant rather than trace-recorded cycle counts).
    """

    def __init__(self, ipc: float) -> None:
        if ipc <= 0:
            raise ValueError("IPC must be positive")
        self.ipc = ipc
        self._decision = ModeDecision(mode=SimulationMode.BURST, ipc=ipc)

    def choose_mode(
        self,
        instance: TaskInstance,
        worker_id: int,
        active_workers: int,
        current_cycle: float,
    ) -> ModeDecision:
        """Always choose burst mode at the configured IPC."""
        return self._decision

    def notify_completion(self, info: CompletionInfo) -> None:
        """No state to update."""
