"""Simulation results: columnar per-instance storage with record views.

The engine accumulates per-instance outcomes as parallel scalar columns
(:class:`InstanceTable`) instead of allocating one :class:`InstanceResult`
dataclass per completion.  The table is a read-only sequence: indexing and
iteration materialise (and cache) ``InstanceResult`` views, so existing
record-oriented consumers keep working, while aggregate queries
(``total_instructions``, ``ipc_by_type`` ...) run on the columns directly.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Union

from repro.sim.cost import SimulationCost
from repro.sim.modes import SimulationMode


@dataclass(frozen=True)
class InstanceResult:
    """Timing of one simulated task instance."""

    instance_id: int
    task_type: str
    worker_id: int
    mode: SimulationMode
    instructions: int
    start_cycle: float
    end_cycle: float
    ipc: float
    is_warmup: bool = False

    @property
    def cycles(self) -> float:
        """Execution time of the instance in cycles."""
        return self.end_cycle - self.start_cycle


class InstanceTable(Sequence):
    """Columnar storage of per-instance results, in completion order.

    Behaves like an immutable ``Sequence[InstanceResult]``; the dataclass
    views are materialised lazily and cached.  The columns themselves are
    plain Python lists (appends during simulation are O(1) and the values
    are consumed as scalars).
    """

    __slots__ = (
        "instance_id",
        "task_type",
        "worker_id",
        "detailed",
        "instructions",
        "start_cycle",
        "end_cycle",
        "ipc",
        "is_warmup",
        "_views",
    )

    def __init__(self) -> None:
        self.instance_id: List[int] = []
        self.task_type: List[str] = []
        self.worker_id: List[int] = []
        self.detailed: List[bool] = []
        self.instructions: List[int] = []
        self.start_cycle: List[float] = []
        self.end_cycle: List[float] = []
        self.ipc: List[float] = []
        self.is_warmup: List[bool] = []
        self._views: Optional[List[Optional[InstanceResult]]] = None

    # ------------------------------------------------------------------
    def append(
        self,
        instance_id: int,
        task_type: str,
        worker_id: int,
        detailed: bool,
        instructions: int,
        start_cycle: float,
        end_cycle: float,
        ipc: float,
        is_warmup: bool,
    ) -> None:
        """Record one completed instance (engine hot path)."""
        self.instance_id.append(instance_id)
        self.task_type.append(task_type)
        self.worker_id.append(worker_id)
        self.detailed.append(detailed)
        self.instructions.append(instructions)
        self.start_cycle.append(start_cycle)
        self.end_cycle.append(end_cycle)
        self.ipc.append(ipc)
        self.is_warmup.append(is_warmup)
        self._views = None

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.instance_id)

    def _view(self, index: int) -> InstanceResult:
        if self._views is None:
            self._views = [None] * len(self.instance_id)
        view = self._views[index]
        if view is None:
            view = InstanceResult(
                instance_id=self.instance_id[index],
                task_type=self.task_type[index],
                worker_id=self.worker_id[index],
                mode=(
                    SimulationMode.DETAILED
                    if self.detailed[index]
                    else SimulationMode.BURST
                ),
                instructions=self.instructions[index],
                start_cycle=self.start_cycle[index],
                end_cycle=self.end_cycle[index],
                ipc=self.ipc[index],
                is_warmup=self.is_warmup[index],
            )
            self._views[index] = view
        return view

    def __getitem__(self, index: Union[int, slice]):
        if isinstance(index, slice):
            return [self._view(i) for i in range(*index.indices(len(self)))]
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(index)
        return self._view(index)

    def __iter__(self) -> Iterator[InstanceResult]:
        for index in range(len(self.instance_id)):
            yield self._view(index)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"InstanceTable(len={len(self)})"


@dataclass
class SimulationResult:
    """Complete outcome of one simulation run.

    Attributes
    ----------
    benchmark:
        Name of the simulated application.
    architecture:
        Name of the simulated architecture configuration.
    num_threads:
        Number of simulated worker threads.
    total_cycles:
        Simulated execution time of the application (makespan).
    instances:
        Per-instance timing records, in completion order — either a plain
        list of :class:`InstanceResult` or an :class:`InstanceTable`.
    cost:
        Simulation-cost accounting used for deterministic speedup numbers.
    wall_seconds:
        Host wall-clock time of the simulation, if measured.
    """

    benchmark: str
    architecture: str
    num_threads: int
    total_cycles: float
    instances: Sequence[InstanceResult] = field(default_factory=list)
    cost: SimulationCost = field(default_factory=SimulationCost)
    wall_seconds: Optional[float] = None
    metadata: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def num_instances(self) -> int:
        """Number of task instances simulated."""
        return len(self.instances)

    @property
    def total_instructions(self) -> int:
        """Total dynamic instructions across all instances."""
        if isinstance(self.instances, InstanceTable):
            return sum(self.instances.instructions)
        return sum(instance.instructions for instance in self.instances)

    @property
    def detailed_instances(self) -> List[InstanceResult]:
        """Instances simulated in detailed mode."""
        return [i for i in self.instances if i.mode is SimulationMode.DETAILED]

    @property
    def burst_instances(self) -> List[InstanceResult]:
        """Instances simulated in burst (fast-forward) mode."""
        return [i for i in self.instances if i.mode is SimulationMode.BURST]

    def average_ipc(self) -> float:
        """Aggregate IPC of the whole run (instructions / makespan / threads)."""
        if self.total_cycles <= 0:
            return 0.0
        return self.total_instructions / self.total_cycles

    # ------------------------------------------------------------------
    def ipc_by_type(self, detailed_only: bool = True) -> Dict[str, List[float]]:
        """Return the per-instance IPC values grouped by task type.

        By default only detailed-mode, non-warm-up instances are included,
        because burst-mode IPC is an input of the model, not a measurement.
        """
        grouped: Dict[str, List[float]] = defaultdict(list)
        table = self.instances
        if isinstance(table, InstanceTable):
            # Columnar path: no InstanceResult views are materialised.
            task_type = table.task_type
            detailed = table.detailed
            warmup = table.is_warmup
            ipc = table.ipc
            for index in range(len(table)):
                if detailed_only and (not detailed[index] or warmup[index]):
                    continue
                grouped[task_type[index]].append(ipc[index])
            return dict(grouped)
        for instance in table:
            if detailed_only and instance.mode is not SimulationMode.DETAILED:
                continue
            if detailed_only and instance.is_warmup:
                continue
            grouped[instance.task_type].append(instance.ipc)
        return dict(grouped)

    def instances_of(self, task_type: str) -> List[InstanceResult]:
        """Return the results of all instances of ``task_type``."""
        return [i for i in self.instances if i.task_type == task_type]

    def error_versus(self, reference: "SimulationResult") -> float:
        """Absolute relative execution-time error versus ``reference``.

        This is the paper's accuracy metric: ``|T_sampled - T_detailed| /
        T_detailed``, returned as a fraction (multiply by 100 for percent).
        """
        if reference.total_cycles <= 0:
            raise ValueError("reference simulation has non-positive execution time")
        return abs(self.total_cycles - reference.total_cycles) / reference.total_cycles

    def speedup_versus(self, reference: "SimulationResult") -> float:
        """Deterministic (cost-model) simulation speedup versus ``reference``."""
        return self.cost.speedup_over(reference.cost)

    def wall_speedup_versus(self, reference: "SimulationResult") -> Optional[float]:
        """Wall-clock speedup versus ``reference``; ``None`` if unmeasured."""
        if not self.wall_seconds or not reference.wall_seconds:
            return None
        if self.wall_seconds <= 0:
            return None
        return reference.wall_seconds / self.wall_seconds

    def summary(self) -> Dict[str, object]:
        """Return a flat summary dictionary for reporting."""
        if isinstance(self.instances, InstanceTable):
            num_detailed = sum(1 for flag in self.instances.detailed if flag)
            num_burst = len(self.instances) - num_detailed
        else:
            num_detailed = len(self.detailed_instances)
            num_burst = len(self.burst_instances)
        return {
            "benchmark": self.benchmark,
            "architecture": self.architecture,
            "threads": self.num_threads,
            "total_cycles": self.total_cycles,
            "instances": self.num_instances,
            "detailed_instances": num_detailed,
            "burst_instances": num_burst,
            "detailed_fraction": self.cost.detailed_fraction,
            "average_ipc": self.average_ipc(),
            "cost_units": self.cost.total_units,
            "wall_seconds": self.wall_seconds,
        }
