"""Simulation results and per-instance records."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.sim.cost import SimulationCost
from repro.sim.modes import SimulationMode


@dataclass(frozen=True)
class InstanceResult:
    """Timing of one simulated task instance."""

    instance_id: int
    task_type: str
    worker_id: int
    mode: SimulationMode
    instructions: int
    start_cycle: float
    end_cycle: float
    ipc: float
    is_warmup: bool = False

    @property
    def cycles(self) -> float:
        """Execution time of the instance in cycles."""
        return self.end_cycle - self.start_cycle


@dataclass
class SimulationResult:
    """Complete outcome of one simulation run.

    Attributes
    ----------
    benchmark:
        Name of the simulated application.
    architecture:
        Name of the simulated architecture configuration.
    num_threads:
        Number of simulated worker threads.
    total_cycles:
        Simulated execution time of the application (makespan).
    instances:
        Per-instance timing records, in completion order.
    cost:
        Simulation-cost accounting used for deterministic speedup numbers.
    wall_seconds:
        Host wall-clock time of the simulation, if measured.
    """

    benchmark: str
    architecture: str
    num_threads: int
    total_cycles: float
    instances: List[InstanceResult] = field(default_factory=list)
    cost: SimulationCost = field(default_factory=SimulationCost)
    wall_seconds: Optional[float] = None
    metadata: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def num_instances(self) -> int:
        """Number of task instances simulated."""
        return len(self.instances)

    @property
    def total_instructions(self) -> int:
        """Total dynamic instructions across all instances."""
        return sum(instance.instructions for instance in self.instances)

    @property
    def detailed_instances(self) -> List[InstanceResult]:
        """Instances simulated in detailed mode."""
        return [i for i in self.instances if i.mode is SimulationMode.DETAILED]

    @property
    def burst_instances(self) -> List[InstanceResult]:
        """Instances simulated in burst (fast-forward) mode."""
        return [i for i in self.instances if i.mode is SimulationMode.BURST]

    def average_ipc(self) -> float:
        """Aggregate IPC of the whole run (instructions / makespan / threads)."""
        if self.total_cycles <= 0:
            return 0.0
        return self.total_instructions / self.total_cycles

    # ------------------------------------------------------------------
    def ipc_by_type(self, detailed_only: bool = True) -> Dict[str, List[float]]:
        """Return the per-instance IPC values grouped by task type.

        By default only detailed-mode, non-warm-up instances are included,
        because burst-mode IPC is an input of the model, not a measurement.
        """
        grouped: Dict[str, List[float]] = defaultdict(list)
        for instance in self.instances:
            if detailed_only and instance.mode is not SimulationMode.DETAILED:
                continue
            if detailed_only and instance.is_warmup:
                continue
            grouped[instance.task_type].append(instance.ipc)
        return dict(grouped)

    def instances_of(self, task_type: str) -> List[InstanceResult]:
        """Return the results of all instances of ``task_type``."""
        return [i for i in self.instances if i.task_type == task_type]

    def error_versus(self, reference: "SimulationResult") -> float:
        """Absolute relative execution-time error versus ``reference``.

        This is the paper's accuracy metric: ``|T_sampled - T_detailed| /
        T_detailed``, returned as a fraction (multiply by 100 for percent).
        """
        if reference.total_cycles <= 0:
            raise ValueError("reference simulation has non-positive execution time")
        return abs(self.total_cycles - reference.total_cycles) / reference.total_cycles

    def speedup_versus(self, reference: "SimulationResult") -> float:
        """Deterministic (cost-model) simulation speedup versus ``reference``."""
        return self.cost.speedup_over(reference.cost)

    def wall_speedup_versus(self, reference: "SimulationResult") -> Optional[float]:
        """Wall-clock speedup versus ``reference``; ``None`` if unmeasured."""
        if not self.wall_seconds or not reference.wall_seconds:
            return None
        if self.wall_seconds <= 0:
            return None
        return reference.wall_seconds / self.wall_seconds

    def summary(self) -> Dict[str, object]:
        """Return a flat summary dictionary for reporting."""
        return {
            "benchmark": self.benchmark,
            "architecture": self.architecture,
            "threads": self.num_threads,
            "total_cycles": self.total_cycles,
            "instances": self.num_instances,
            "detailed_instances": len(self.detailed_instances),
            "burst_instances": len(self.burst_instances),
            "detailed_fraction": self.cost.detailed_fraction,
            "average_ipc": self.average_ipc(),
            "cost_units": self.cost.total_units,
            "wall_seconds": self.wall_seconds,
        }
