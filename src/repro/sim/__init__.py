"""TaskSim-style trace-driven multi-core simulator.

The simulator replays an :class:`~repro.trace.trace.ApplicationTrace` on a
configurable multi-core architecture.  Worker threads obtain ready task
instances from the runtime system and execute them either in **detailed mode**
(ROB-occupancy core model plus cache hierarchy, see :mod:`repro.arch`) or in
**burst/fast mode** (a user-specified IPC applied to the instance's dynamic
instruction count), the two simulation modes the TaskPoint methodology
requires from its host simulator.

Which mode a given task instance uses is decided by a pluggable
:class:`~repro.sim.modes.ModeController`; the default controller simulates
everything in detail, and :class:`repro.core.TaskPointController` implements
the paper's sampling methodology.
"""

from repro.sim.modes import (
    AlwaysDetailedController,
    FixedIpcController,
    ModeController,
    ModeDecision,
    SimulationMode,
)
from repro.sim.cost import SimulationCost
from repro.sim.results import InstanceResult, SimulationResult
from repro.sim.engine import SimulationEngine
from repro.sim.simulator import TaskSimSimulator, simulate

__all__ = [
    "SimulationMode",
    "ModeDecision",
    "ModeController",
    "AlwaysDetailedController",
    "FixedIpcController",
    "SimulationCost",
    "InstanceResult",
    "SimulationResult",
    "SimulationEngine",
    "TaskSimSimulator",
    "simulate",
]
