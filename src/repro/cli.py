"""Command-line interface for the TaskPoint reproduction.

The CLI exposes the most common workflows without writing any Python:

* ``python -m repro list`` — list the 19 benchmarks of Table I,
* ``python -m repro simulate <benchmark>`` — run a full detailed or
  TaskPoint-sampled simulation of one benchmark,
* ``python -m repro compare <benchmark>`` — run both and report the
  execution-time error and the simulation speedup,
* ``python -m repro grid`` — a whole accuracy grid (benchmarks × thread
  counts) through the experiment orchestrator,
* ``python -m repro sweep {W,H,P}`` — a Figure 6 parameter sensitivity sweep,
* ``python -m repro variation <benchmark>`` — per-task-type IPC variation
  (the Figure 1 / Figure 5 analysis) of one benchmark.

The experiment-driven commands (``compare``, ``grid``, ``sweep``) accept
``--jobs N`` to shard their experiments over an N-process pool,
``--backend {auto,serial,pool,async,multihost} --workers N`` to pick the
execution backend explicitly (``async`` is the distributed asyncio
supervisor over ``repro.exp.worker`` subprocesses, with heartbeats and
retry on worker death; ``multihost`` fans workers out across machines),
``--hosts host1:4,host2:8 [--listen PORT]`` to shard a grid over a cluster
of connect-back workers (local subprocesses or SSH),
``--batch {N,adaptive[:N]}`` to pack several specs into one dispatch frame
(amortising per-spec round-trips for sub-second experiments), and
``--cache-dir DIR`` to persist every result on disk, keyed by experiment
content hash — re-running an unchanged grid is then a pure cache hit.
``$REPRO_CACHE_DIR`` provides a default cache directory.

``compare``, ``grid`` and ``sweep`` also accept ``--profile FILE`` (or the
``$REPRO_PROFILE`` environment variable) to run the simulation phase under
:mod:`cProfile` and dump the binary stats to ``FILE`` for inspection with
``python -m pstats FILE`` — table rendering and argument parsing stay
outside the profile, so the dump shows where simulation time actually goes.
"""

from __future__ import annotations

import argparse
import contextlib
import cProfile
import os
import sys
from typing import List, Optional, Sequence

from repro.analysis.accuracy import evaluate_grid
from repro.analysis.reporting import format_table, render_accuracy_table
from repro.analysis.sweep import history_sweep, period_sweep, warmup_sweep
from repro.analysis.variation import ipc_variation
from repro.arch.config import high_performance_config, low_power_config
from repro.core.api import fidelity_simulation, sampled_simulation, stratified_simulation
from repro.core.config import TaskPointConfig
from repro.core.fidelity import FidelityConfig
from repro.core.stratified import StratifiedConfig
from repro.exp import (
    BACKEND_NAMES,
    ExperimentExecutionError,
    ExperimentSpec,
    ResultStore,
    default_store,
    make_named_backend,
    run_experiments,
)
from repro.sim.simulator import simulate
from repro.workloads.registry import SENSITIVITY_SUBSET, get_workload, list_workloads


def _architecture(name: str):
    if name == "high-performance":
        return high_performance_config()
    if name == "low-power":
        return low_power_config()
    raise ValueError(f"unknown architecture {name!r}")


def _taskpoint_config(args: argparse.Namespace) -> TaskPointConfig:
    period = None if args.policy == "lazy" else args.period
    return TaskPointConfig(
        warmup_instances=args.warmup,
        history_size=args.history,
        sampling_period=period,
    )


def _sampling_config(args: argparse.Namespace):
    """Sampling config selected by ``--policy``/``--mode``."""
    policy = getattr(args, "policy", None)
    if policy == "stratified":
        return StratifiedConfig(budget=args.budget)
    if policy == "fidelity":
        return FidelityConfig(
            error_budget=args.error_budget, warmup_instances=args.warmup
        )
    return _taskpoint_config(args)


def _fraction(flag: str, *, max_inclusive: bool):
    """An argparse ``type=`` callable enforcing a fraction range.

    ``max_inclusive=True`` accepts ``0 < value <= 1`` (detail budgets — 1
    means "simulate everything in detail"); ``max_inclusive=False`` accepts
    ``0 < value < 1`` (error budgets — a 100% error budget is meaningless).
    """

    def parse(raw: str) -> float:
        try:
            value = float(raw)
        except ValueError:
            raise argparse.ArgumentTypeError(f"{flag} must be a number, got {raw!r}")
        in_range = 0 < value <= 1 if max_inclusive else 0 < value < 1
        if not in_range:
            bound = "(0, 1]" if max_inclusive else "(0, 1)"
            raise argparse.ArgumentTypeError(
                f"{flag} must be a fraction in {bound}, got {raw}"
            )
        return value

    return parse


def _bounded_int(flag: str, minimum: int):
    """An argparse ``type=`` callable enforcing an integer lower bound."""

    def parse(raw: str) -> int:
        try:
            value = int(raw)
        except ValueError:
            raise argparse.ArgumentTypeError(f"{flag} must be an integer, got {raw!r}")
        if value < minimum:
            raise argparse.ArgumentTypeError(
                f"{flag} must be >= {minimum}, got {value}"
            )
        return value

    return parse


#: Defaults of the sampling flags, applied only after the applicability
#: check below — the parser-level defaults are ``None`` so "user passed the
#: flag" is distinguishable from "flag left at its default".
_SAMPLING_DEFAULTS = {
    "policy": "periodic",
    "period": 250,
    "warmup": 2,
    "history": 4,
    "budget": 0.02,
    "error_budget": 0.02,
}

#: Which sampling flags each engine actually consumes.  Passing any other
#: sampling flag is an error (satellite: flags were previously ignored
#: silently, e.g. ``--budget`` under a periodic policy).
_FLAG_APPLICABILITY = {
    "periodic": {"period", "warmup", "history"},
    "lazy": {"warmup", "history"},
    "stratified": {"budget"},
    "fidelity": {"error_budget", "warmup"},
}

_FLAG_SPELLING = {
    "period": "--period",
    "warmup": "--warmup",
    "history": "--history",
    "budget": "--budget",
    "error_budget": "--error-budget",
}


def _resolve_sampling_args(
    parser: argparse.ArgumentParser, args: argparse.Namespace
) -> None:
    """Validate sampling-flag applicability and fill in defaults.

    Resolves the effective sampling engine from ``--mode``/``--policy``,
    rejects (via ``parser.error``, exit code 2) any sampling flag the
    selected engine does not consume, then replaces the ``None`` sentinels
    with the real defaults so the command implementations never see a
    partially-populated namespace.
    """
    mode = getattr(args, "mode", None)
    if mode == "detailed":
        engine = None
        if args.policy is not None:
            parser.error("--policy does not apply to --mode detailed")
    elif mode in (None, "sampled"):
        engine = args.policy if args.policy is not None else "periodic"
    else:  # an explicit engine mode: stratified / fidelity
        engine = mode
        if args.policy is not None and args.policy != engine:
            parser.error(
                f"--policy {args.policy} conflicts with --mode {engine}"
            )
    allowed = _FLAG_APPLICABILITY.get(engine, set())
    for flag in ("period", "warmup", "history", "budget", "error_budget"):
        if getattr(args, flag, None) is not None and flag not in allowed:
            target = f"--mode {mode}" if engine is None else f"the {engine} engine"
            parser.error(
                f"{_FLAG_SPELLING[flag]} does not apply to {target}"
            )
    args.policy = engine
    for flag, default in _SAMPLING_DEFAULTS.items():
        if flag != "policy" and getattr(args, flag, None) is None:
            setattr(args, flag, default)


def _int_list(raw: str) -> List[int]:
    return [int(part) for part in raw.split(",") if part]


def _benchmark_list(raw: str) -> List[str]:
    if raw == "all":
        return list_workloads()
    return [part for part in raw.split(",") if part]


def _backend_and_store(args: argparse.Namespace):
    store = ResultStore(args.cache_dir) if args.cache_dir else default_store()
    if args.workers is not None and args.backend not in ("pool", "async"):
        raise ValueError(
            "--workers requires --backend pool or async "
            "(parallelism under --backend auto is controlled by --jobs; "
            "multihost budgets live in --hosts)"
        )
    if args.hosts and args.backend not in ("auto", "multihost"):
        raise ValueError("--hosts requires --backend multihost (or auto)")
    if args.listen and not (args.hosts or args.backend == "multihost"):
        raise ValueError(
            "--listen only applies to the multihost backend (pass --hosts)"
        )
    workers = args.workers if args.workers is not None else args.jobs
    backend = make_named_backend(
        args.backend, workers=workers, store=store,
        hosts=args.hosts, listen=args.listen, connect_host=args.connect_host,
        batch=args.batch,
    )
    return backend, store


def _add_common_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("benchmark", help="benchmark name (see 'repro list')")
    parser.add_argument("--threads", type=int, default=8, help="simulated threads")
    parser.add_argument("--scale", type=float, default=0.05,
                        help="workload scale relative to Table I (default 0.05)")
    parser.add_argument("--seed", type=int, default=1, help="trace-generation seed")
    parser.add_argument("--architecture", choices=["high-performance", "low-power"],
                        default="high-performance")


_POLICY_CHOICES = ["periodic", "lazy", "stratified", "fidelity"]


def _add_taskpoint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--policy", choices=_POLICY_CHOICES,
                        default=None,
                        help="sampling engine: TaskPoint periodic/lazy, "
                             "two-phase stratified sampling with confidence "
                             "intervals, or the online error-budget fidelity "
                             "controller (default: periodic)")
    parser.add_argument("--period", type=_bounded_int("--period", 1),
                        default=None,
                        help="periodic policy only: sampling period P "
                             "(default 250)")
    parser.add_argument("--warmup", type=_bounded_int("--warmup", 0),
                        default=None,
                        help="periodic/lazy/fidelity: warm-up instances W "
                             "(default 2)")
    parser.add_argument("--history", type=_bounded_int("--history", 1),
                        default=None,
                        help="periodic/lazy: history size H (default 4)")
    parser.add_argument("--budget", type=_fraction("--budget", max_inclusive=True),
                        default=None,
                        help="stratified mode only: target fraction of task "
                             "instances simulated in detail, in (0, 1] "
                             "(default 0.02)")
    parser.add_argument("--error-budget", dest="error_budget",
                        type=_fraction("--error-budget", max_inclusive=False),
                        default=None,
                        help="fidelity mode only: relative execution-time "
                             "error budget, in (0, 1) (default 0.02)")


def _add_mode_alias(parser: argparse.ArgumentParser) -> None:
    """Add ``--mode`` as an alias of ``--policy`` (for compare/grid).

    ``simulate`` has its own ``--mode`` (which also offers ``detailed``);
    the experiment commands take the engine name through either spelling —
    the acceptance workflows use ``--mode fidelity``.
    """
    parser.add_argument("--mode", dest="policy", choices=_POLICY_CHOICES,
                        default=None, help="alias for --policy")


def _add_orchestrator_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=1,
                        help="parallel worker processes (default 1 = serial)")
    parser.add_argument("--backend", choices=list(BACKEND_NAMES), default="auto",
                        help="execution backend (default: auto — a process "
                             "pool when --jobs > 1, serial otherwise; 'async' "
                             "is the distributed asyncio worker backend)")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker count, only valid with --backend "
                             "pool/async (default: --jobs)")
    parser.add_argument("--cache-dir", default=None,
                        help="persistent experiment result store "
                             "(default: $REPRO_CACHE_DIR if set)")
    parser.add_argument("--hosts", default=None,
                        help="multi-host worker budgets, e.g. "
                             "'host1:4,host2:8' (names starting with "
                             "'local' run subprocesses, others SSH; "
                             "implies --backend multihost)")
    parser.add_argument("--listen", default=None,
                        help="bind address of the multihost connect-back "
                             "listener: PORT or HOST:PORT (default: an "
                             "ephemeral loopback port)")
    parser.add_argument("--connect-host", default=None,
                        help="address remote workers dial back to (default: "
                             "127.0.0.1 for local hosts, this machine's "
                             "hostname for SSH hosts)")
    parser.add_argument("--batch", default=None,
                        help="specs per dispatch: N, 'adaptive' or "
                             "'adaptive:N' (async/multihost send protocol-v3 "
                             "run_batch frames, amortising per-spec "
                             "round-trips; pool maps it onto chunksize; "
                             "default: one spec at a time)")
    parser.add_argument("--profile", default=None, metavar="FILE",
                        help="run the simulation phase under cProfile and "
                             "dump binary stats to FILE (default: "
                             "$REPRO_PROFILE if set; inspect with "
                             "'python -m pstats FILE')")


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TaskPoint: sampled simulation of task-based programs (reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the available benchmarks")

    sim = subparsers.add_parser("simulate", help="simulate one benchmark")
    _add_common_arguments(sim)
    sim.add_argument("--mode",
                     choices=["detailed", "sampled", "stratified", "fidelity"],
                     default="sampled",
                     help="detailed baseline, TaskPoint sampling, two-phase "
                          "stratified sampling, or the online error-budget "
                          "fidelity controller (stratified/fidelity are "
                          "equivalent to --mode sampled --policy <engine>)")
    _add_taskpoint_arguments(sim)

    cmp = subparsers.add_parser("compare", help="sampled versus detailed simulation")
    _add_common_arguments(cmp)
    _add_taskpoint_arguments(cmp)
    _add_mode_alias(cmp)
    _add_orchestrator_arguments(cmp)

    grid = subparsers.add_parser(
        "grid", help="accuracy grid (benchmarks x thread counts) via the orchestrator"
    )
    grid.add_argument("--benchmarks", default="all",
                      help="comma-separated benchmark names, or 'all' (default)")
    grid.add_argument("--threads", default="8,16,32,64",
                      help="comma-separated simulated thread counts")
    grid.add_argument("--scale", type=float, default=0.05,
                      help="workload scale relative to Table I (default 0.05)")
    grid.add_argument("--seed", type=int, default=1, help="trace-generation seed")
    grid.add_argument("--architecture", choices=["high-performance", "low-power"],
                      default="high-performance")
    _add_taskpoint_arguments(grid)
    _add_mode_alias(grid)
    _add_orchestrator_arguments(grid)

    sweep = subparsers.add_parser(
        "sweep", help="parameter sensitivity sweep (Figure 6) via the orchestrator"
    )
    sweep.add_argument("parameter", choices=["W", "H", "P"],
                       help="swept parameter: warm-up, history size or period")
    sweep.add_argument("--values", default=None,
                       help="comma-separated parameter values (paper defaults if omitted)")
    sweep.add_argument("--benchmarks", default=",".join(SENSITIVITY_SUBSET),
                       help="comma-separated benchmark names, or 'all'")
    sweep.add_argument("--threads", default="32,64",
                       help="comma-separated simulated thread counts")
    sweep.add_argument("--scale", type=float, default=0.05,
                       help="workload scale relative to Table I (default 0.05)")
    sweep.add_argument("--seed", type=int, default=1, help="trace-generation seed")
    sweep.add_argument("--architecture", choices=["high-performance", "low-power"],
                       default="high-performance")
    _add_orchestrator_arguments(sweep)

    var = subparsers.add_parser("variation", help="per-task-type IPC variation")
    _add_common_arguments(var)
    return parser


def _command_list() -> int:
    rows = []
    for name in list_workloads():
        info = get_workload(name).info()
        rows.append([name, info.category, info.paper_task_types,
                     info.paper_task_instances, info.properties])
    print(format_table(
        ["benchmark", "category", "task types", "task instances", "properties"], rows
    ))
    return 0


def _command_simulate(args: argparse.Namespace) -> int:
    trace = get_workload(args.benchmark).generate(scale=args.scale, seed=args.seed)
    architecture = _architecture(args.architecture)
    if args.policy is None:  # --mode detailed
        result = simulate(trace, num_threads=args.threads, architecture=architecture)
    elif args.policy == "stratified":
        result = stratified_simulation(
            trace, num_threads=args.threads, architecture=architecture,
            config=StratifiedConfig(budget=args.budget),
        )
    elif args.policy == "fidelity":
        result = fidelity_simulation(
            trace, num_threads=args.threads, architecture=architecture,
            config=FidelityConfig(
                error_budget=args.error_budget, warmup_instances=args.warmup
            ),
        )
    else:
        result = sampled_simulation(
            trace, num_threads=args.threads, architecture=architecture,
            config=_taskpoint_config(args),
        )
    summary = result.summary()
    for key, value in summary.items():
        print(f"{key:20s}: {value}")
    confidence = result.metadata.get("confidence")
    if confidence:
        print(f"{'ci95 halfwidth':20s}: {confidence['half_width_percent']:.2f} %")
        print(f"{'ci95 cycles':20s}: [{confidence['lower_cycles']:,.0f}, "
              f"{confidence['upper_cycles']:,.0f}]")
    stats = result.metadata.get("taskpoint")
    fidelity = getattr(stats, "fidelity_summary", None)
    if callable(fidelity):
        info = fidelity()
        print(f"{'error budget':20s}: {info['error_budget'] * 100:.1f} %")
        print(f"{'committed types':20s}: {info['committed_types']}/{info['num_types']}"
              f" (commits {info['commits']}, reopens {info['reopens']},"
              f" probes {info['probes']})")
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    spec = ExperimentSpec(
        benchmark=args.benchmark,
        num_threads=args.threads,
        scale=args.scale,
        trace_seed=args.seed,
        architecture=_architecture(args.architecture),
        config=_sampling_config(args),
    )
    backend, store = _backend_and_store(args)
    with _maybe_profile(args):
        sampled, detailed = run_experiments(
            [spec, spec.baseline()], backend=backend, store=store
        )
    print(f"benchmark            : {sampled.benchmark}")
    print(f"architecture         : {sampled.architecture}")
    print(f"threads              : {sampled.num_threads}")
    print(f"detailed cycles      : {detailed.total_cycles:,.0f}")
    print(f"sampled cycles       : {sampled.total_cycles:,.0f}")
    print(f"execution-time error : {sampled.error_versus(detailed) * 100.0:.2f} %")
    print(f"simulation speedup   : {sampled.speedup_versus(detailed):.1f}x")
    stats = sampled.taskpoint or {}
    print(f"warm-up / valid / fast-forwarded: "
          f"{stats.get('warmup_instances', 0)} / {stats.get('valid_samples', 0)}"
          f" / {stats.get('fast_forwarded', 0)}")
    print(f"resamples            : {stats.get('resamples', 0)}")
    confidence = stats.get("confidence")
    if confidence:
        covered = (confidence["lower_cycles"] <= detailed.total_cycles
                   <= confidence["upper_cycles"])
        print(f"ci95                 : +/-{confidence['half_width_percent']:.2f} %"
              f" [{confidence['lower_cycles']:,.0f}, "
              f"{confidence['upper_cycles']:,.0f}]"
              f" ({'covers' if covered else 'misses'} detailed)")
    return 0


@contextlib.contextmanager
def _maybe_profile(args: argparse.Namespace):
    """Profile the wrapped simulation phase when requested.

    ``--profile FILE`` wins over ``$REPRO_PROFILE``; with neither set this
    is a no-op.  The binary :mod:`cProfile` stats land in ``FILE`` on exit
    (including on error), ready for ``python -m pstats FILE`` or any
    pstats-compatible viewer.
    """
    path = getattr(args, "profile", None) or os.environ.get("REPRO_PROFILE")
    if not path:
        yield
        return
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield
    finally:
        profiler.disable()
        profiler.dump_stats(path)
        print(f"profile: simulation-phase cProfile stats written to {path}",
              file=sys.stderr)


def _command_grid(args: argparse.Namespace) -> int:
    backend, store = _backend_and_store(args)
    with _maybe_profile(args):
        results = evaluate_grid(
            _benchmark_list(args.benchmarks),
            _int_list(args.threads),
            architecture=_architecture(args.architecture),
            config=_sampling_config(args),
            scale=args.scale,
            seed=args.seed,
            backend=backend,
            store=store,
        )
    if args.policy == "lazy":
        policy = "lazy"
    elif args.policy == "stratified":
        policy = f"stratified budget={args.budget}"
    elif args.policy == "fidelity":
        policy = f"fidelity error-budget={args.error_budget}"
    else:
        policy = f"periodic P={args.period}"
    print(render_accuracy_table(
        results,
        title=(f"Accuracy grid: {policy}, W={args.warmup}, H={args.history}, "
               f"{args.architecture} architecture, scale={args.scale}"),
    ))
    return 0


def _command_sweep(args: argparse.Namespace) -> int:
    backend, store = _backend_and_store(args)
    kwargs = dict(
        benchmarks=_benchmark_list(args.benchmarks),
        thread_counts=_int_list(args.threads),
        architecture=_architecture(args.architecture),
        scale=args.scale,
        seed=args.seed,
        backend=backend,
        store=store,
    )
    if args.parameter == "W":
        sweep, values_key = warmup_sweep, "warmup_values"
    elif args.parameter == "H":
        sweep, values_key = history_sweep, "history_values"
    else:
        sweep, values_key = period_sweep, "period_values"
    if args.values:
        kwargs[values_key] = tuple(_int_list(args.values))
    with _maybe_profile(args):
        points = sweep(**kwargs)
    rows = [
        [point.value, point.average_error_percent, point.average_speedup,
         point.experiments]
        for point in points
    ]
    print(f"sensitivity sweep over {args.parameter} "
          f"({args.architecture} architecture, scale={args.scale})")
    print(format_table([args.parameter, "avg error [%]", "avg speedup", "experiments"],
                       rows))
    return 0


def _command_variation(args: argparse.Namespace) -> int:
    trace = get_workload(args.benchmark).generate(scale=args.scale, seed=args.seed)
    result = simulate(trace, num_threads=args.threads,
                      architecture=_architecture(args.architecture))
    report = ipc_variation(result)
    box = report.box
    print(f"benchmark     : {report.benchmark} ({args.threads} threads)")
    print(f"instances     : {box.count}")
    print(f"p5 / q1 / median / q3 / p95 [%]: "
          f"{box.percentile_5:.2f} / {box.quartile_1:.2f} / {box.median:.2f} / "
          f"{box.quartile_3:.2f} / {box.percentile_95:.2f}")
    print(f"within +/-5%  : {'yes' if report.within_5_percent else 'no'}")
    rows = [[tv.task_type, tv.count, f"{tv.mean_ipc:.3f}",
             f"{tv.coefficient_of_variation * 100:.2f}"] for tv in report.per_type]
    print(format_table(["task type", "instances", "mean IPC", "CV [%]"], rows))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command in ("simulate", "compare", "grid"):
        _resolve_sampling_args(parser, args)
    try:
        if args.command == "list":
            return _command_list()
        if args.command == "simulate":
            return _command_simulate(args)
        if args.command == "compare":
            return _command_compare(args)
        if args.command == "grid":
            return _command_grid(args)
        if args.command == "sweep":
            return _command_sweep(args)
        if args.command == "variation":
            return _command_variation(args)
    except (KeyError, ValueError, ExperimentExecutionError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        # The async backend shuts its workers down gracefully on ^C, and a
        # cache-dir store already holds every completed experiment.
        print("interrupted", file=sys.stderr)
        return 130
    return 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
