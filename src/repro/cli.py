"""Command-line interface for the TaskPoint reproduction.

The CLI exposes the most common workflows without writing any Python:

* ``python -m repro list`` — list the 19 benchmarks of Table I,
* ``python -m repro simulate <benchmark>`` — run a full detailed or
  TaskPoint-sampled simulation of one benchmark,
* ``python -m repro compare <benchmark>`` — run both and report the
  execution-time error and the simulation speedup,
* ``python -m repro variation <benchmark>`` — per-task-type IPC variation
  (the Figure 1 / Figure 5 analysis) of one benchmark.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis.reporting import format_table
from repro.analysis.variation import ipc_variation
from repro.arch.config import high_performance_config, low_power_config
from repro.core.api import compare_with_detailed, sampled_simulation
from repro.core.config import TaskPointConfig
from repro.sim.simulator import simulate
from repro.workloads.registry import get_workload, list_workloads


def _architecture(name: str):
    if name == "high-performance":
        return high_performance_config()
    if name == "low-power":
        return low_power_config()
    raise ValueError(f"unknown architecture {name!r}")


def _taskpoint_config(args: argparse.Namespace) -> TaskPointConfig:
    period = None if args.policy == "lazy" else args.period
    return TaskPointConfig(
        warmup_instances=args.warmup,
        history_size=args.history,
        sampling_period=period,
    )


def _add_common_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("benchmark", help="benchmark name (see 'repro list')")
    parser.add_argument("--threads", type=int, default=8, help="simulated threads")
    parser.add_argument("--scale", type=float, default=0.05,
                        help="workload scale relative to Table I (default 0.05)")
    parser.add_argument("--seed", type=int, default=1, help="trace-generation seed")
    parser.add_argument("--architecture", choices=["high-performance", "low-power"],
                        default="high-performance")


def _add_taskpoint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--policy", choices=["periodic", "lazy"], default="periodic")
    parser.add_argument("--period", type=int, default=250, help="sampling period P")
    parser.add_argument("--warmup", type=int, default=2, help="warm-up instances W")
    parser.add_argument("--history", type=int, default=4, help="history size H")


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TaskPoint: sampled simulation of task-based programs (reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the available benchmarks")

    sim = subparsers.add_parser("simulate", help="simulate one benchmark")
    _add_common_arguments(sim)
    sim.add_argument("--mode", choices=["detailed", "sampled"], default="sampled")
    _add_taskpoint_arguments(sim)

    cmp = subparsers.add_parser("compare", help="sampled versus detailed simulation")
    _add_common_arguments(cmp)
    _add_taskpoint_arguments(cmp)

    var = subparsers.add_parser("variation", help="per-task-type IPC variation")
    _add_common_arguments(var)
    return parser


def _command_list() -> int:
    rows = []
    for name in list_workloads():
        info = get_workload(name).info()
        rows.append([name, info.category, info.paper_task_types,
                     info.paper_task_instances, info.properties])
    print(format_table(
        ["benchmark", "category", "task types", "task instances", "properties"], rows
    ))
    return 0


def _command_simulate(args: argparse.Namespace) -> int:
    trace = get_workload(args.benchmark).generate(scale=args.scale, seed=args.seed)
    architecture = _architecture(args.architecture)
    if args.mode == "detailed":
        result = simulate(trace, num_threads=args.threads, architecture=architecture)
    else:
        result = sampled_simulation(
            trace, num_threads=args.threads, architecture=architecture,
            config=_taskpoint_config(args),
        )
    summary = result.summary()
    for key, value in summary.items():
        print(f"{key:20s}: {value}")
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    trace = get_workload(args.benchmark).generate(scale=args.scale, seed=args.seed)
    comparison = compare_with_detailed(
        trace,
        num_threads=args.threads,
        architecture=_architecture(args.architecture),
        config=_taskpoint_config(args),
    )
    print(f"benchmark            : {comparison.benchmark}")
    print(f"architecture         : {comparison.architecture}")
    print(f"threads              : {comparison.num_threads}")
    print(f"detailed cycles      : {comparison.detailed.total_cycles:,.0f}")
    print(f"sampled cycles       : {comparison.sampled.total_cycles:,.0f}")
    print(f"execution-time error : {comparison.error_percent:.2f} %")
    print(f"simulation speedup   : {comparison.speedup:.1f}x")
    stats = comparison.taskpoint_stats
    print(f"warm-up / valid / fast-forwarded: "
          f"{stats.warmup_instances} / {stats.valid_samples} / {stats.fast_forwarded}")
    print(f"resamples            : {stats.resamples}")
    return 0


def _command_variation(args: argparse.Namespace) -> int:
    trace = get_workload(args.benchmark).generate(scale=args.scale, seed=args.seed)
    result = simulate(trace, num_threads=args.threads,
                      architecture=_architecture(args.architecture))
    report = ipc_variation(result)
    box = report.box
    print(f"benchmark     : {report.benchmark} ({args.threads} threads)")
    print(f"instances     : {box.count}")
    print(f"p5 / q1 / median / q3 / p95 [%]: "
          f"{box.percentile_5:.2f} / {box.quartile_1:.2f} / {box.median:.2f} / "
          f"{box.quartile_3:.2f} / {box.percentile_95:.2f}")
    print(f"within +/-5%  : {'yes' if report.within_5_percent else 'no'}")
    rows = [[tv.task_type, tv.count, f"{tv.mean_ipc:.3f}",
             f"{tv.coefficient_of_variation * 100:.2f}"] for tv in report.per_type]
    print(format_table(["task type", "instances", "mean IPC", "CV [%]"], rows))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _command_list()
        if args.command == "simulate":
            return _command_simulate(args)
        if args.command == "compare":
            return _command_compare(args)
        if args.command == "variation":
            return _command_variation(args)
    except KeyError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
