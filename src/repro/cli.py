"""Command-line interface for the TaskPoint reproduction.

The CLI exposes the most common workflows without writing any Python:

* ``python -m repro list`` — list the 19 benchmarks of Table I,
* ``python -m repro simulate <benchmark>`` — run a full detailed or
  TaskPoint-sampled simulation of one benchmark,
* ``python -m repro compare <benchmark>`` — run both and report the
  execution-time error and the simulation speedup,
* ``python -m repro grid`` — a whole accuracy grid (benchmarks × thread
  counts) through the experiment orchestrator,
* ``python -m repro sweep {W,H,P}`` — a Figure 6 parameter sensitivity sweep,
* ``python -m repro variation <benchmark>`` — per-task-type IPC variation
  (the Figure 1 / Figure 5 analysis) of one benchmark,
* ``python -m repro serve --listen HOST:PORT`` — the persistent simulation
  service daemon (:mod:`repro.serve`): a long-lived worker pool behind a
  submit/poll/watch API with multi-tenant fair-share queues, a journalled
  restart-recovery path and a serving-grade result store,
* ``python -m repro submit/status/watch/cancel --connect HOST:PORT`` — the
  matching client commands (``submit`` builds the same spec grids as
  ``repro grid``, so a served run's store stays byte-identical to a serial
  one).

The experiment-driven commands (``compare``, ``grid``, ``sweep``) accept
``--jobs N`` to shard their experiments over an N-process pool,
``--backend {auto,serial,pool,async,multihost} --workers N`` to pick the
execution backend explicitly (``async`` is the distributed asyncio
supervisor over ``repro.exp.worker`` subprocesses, with heartbeats and
retry on worker death; ``multihost`` fans workers out across machines),
``--hosts host1:4,host2:8 [--listen PORT]`` to shard a grid over a cluster
of connect-back workers (local subprocesses or SSH),
``--batch {N,adaptive[:N]}`` to pack several specs into one dispatch frame
(amortising per-spec round-trips for sub-second experiments), and
``--cache-dir DIR`` to persist every result on disk, keyed by experiment
content hash — re-running an unchanged grid is then a pure cache hit.
``$REPRO_CACHE_DIR`` provides a default cache directory.

``compare``, ``grid`` and ``sweep`` also accept ``--profile FILE`` (or the
``$REPRO_PROFILE`` environment variable) to run the simulation phase under
:mod:`cProfile` and dump the binary stats to ``FILE`` for inspection with
``python -m pstats FILE`` — table rendering and argument parsing stay
outside the profile, so the dump shows where simulation time actually goes.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import cProfile
import json
import os
import signal
import sys
from typing import List, Optional, Sequence

from repro.analysis.accuracy import evaluate_grid, grid_specs
from repro.analysis.reporting import format_table, render_accuracy_table
from repro.analysis.sweep import history_sweep, period_sweep, warmup_sweep
from repro.analysis.variation import ipc_variation
from repro.arch.config import high_performance_config, low_power_config
from repro.core.api import fidelity_simulation, sampled_simulation, stratified_simulation
from repro.core.config import TaskPointConfig
from repro.core.fidelity import FidelityConfig
from repro.core.stratified import StratifiedConfig
from repro.exp import (
    BACKEND_NAMES,
    CACHE_DIR_ENV,
    LAYOUT_NAMES,
    ExperimentExecutionError,
    ExperimentSpec,
    ResultStore,
    default_store,
    make_named_backend,
    run_experiments,
)
from repro.exp.hosts import parse_listen
from repro.serve import ServiceClient, ServiceError, SimulationService
from repro.sim.simulator import simulate
from repro.workloads.registry import SENSITIVITY_SUBSET, get_workload, list_workloads


def _architecture(name: str):
    if name == "high-performance":
        return high_performance_config()
    if name == "low-power":
        return low_power_config()
    raise ValueError(f"unknown architecture {name!r}")


def _taskpoint_config(args: argparse.Namespace) -> TaskPointConfig:
    period = None if args.policy == "lazy" else args.period
    return TaskPointConfig(
        warmup_instances=args.warmup,
        history_size=args.history,
        sampling_period=period,
    )


def _sampling_config(args: argparse.Namespace):
    """Sampling config selected by ``--policy``/``--mode``."""
    policy = getattr(args, "policy", None)
    if policy == "stratified":
        return StratifiedConfig(budget=args.budget)
    if policy == "fidelity":
        return FidelityConfig(
            error_budget=args.error_budget, warmup_instances=args.warmup
        )
    return _taskpoint_config(args)


def _fraction(flag: str, *, max_inclusive: bool):
    """An argparse ``type=`` callable enforcing a fraction range.

    ``max_inclusive=True`` accepts ``0 < value <= 1`` (detail budgets — 1
    means "simulate everything in detail"); ``max_inclusive=False`` accepts
    ``0 < value < 1`` (error budgets — a 100% error budget is meaningless).
    """

    def parse(raw: str) -> float:
        try:
            value = float(raw)
        except ValueError:
            raise argparse.ArgumentTypeError(f"{flag} must be a number, got {raw!r}")
        in_range = 0 < value <= 1 if max_inclusive else 0 < value < 1
        if not in_range:
            bound = "(0, 1]" if max_inclusive else "(0, 1)"
            raise argparse.ArgumentTypeError(
                f"{flag} must be a fraction in {bound}, got {raw}"
            )
        return value

    return parse


def _bounded_int(flag: str, minimum: int):
    """An argparse ``type=`` callable enforcing an integer lower bound."""

    def parse(raw: str) -> int:
        try:
            value = int(raw)
        except ValueError:
            raise argparse.ArgumentTypeError(f"{flag} must be an integer, got {raw!r}")
        if value < minimum:
            raise argparse.ArgumentTypeError(
                f"{flag} must be >= {minimum}, got {value}"
            )
        return value

    return parse


#: Defaults of the sampling flags, applied only after the applicability
#: check below — the parser-level defaults are ``None`` so "user passed the
#: flag" is distinguishable from "flag left at its default".
_SAMPLING_DEFAULTS = {
    "policy": "periodic",
    "period": 250,
    "warmup": 2,
    "history": 4,
    "budget": 0.02,
    "error_budget": 0.02,
}

#: Which sampling flags each engine actually consumes.  Passing any other
#: sampling flag is an error (satellite: flags were previously ignored
#: silently, e.g. ``--budget`` under a periodic policy).
_FLAG_APPLICABILITY = {
    "periodic": {"period", "warmup", "history"},
    "lazy": {"warmup", "history"},
    "stratified": {"budget"},
    "fidelity": {"error_budget", "warmup"},
}

_FLAG_SPELLING = {
    "period": "--period",
    "warmup": "--warmup",
    "history": "--history",
    "budget": "--budget",
    "error_budget": "--error-budget",
}


def _resolve_sampling_args(
    parser: argparse.ArgumentParser, args: argparse.Namespace
) -> None:
    """Validate sampling-flag applicability and fill in defaults.

    Resolves the effective sampling engine from ``--mode``/``--policy``,
    rejects (via ``parser.error``, exit code 2) any sampling flag the
    selected engine does not consume, then replaces the ``None`` sentinels
    with the real defaults so the command implementations never see a
    partially-populated namespace.
    """
    mode = getattr(args, "mode", None)
    if mode == "detailed":
        engine = None
        if args.policy is not None:
            parser.error("--policy does not apply to --mode detailed")
    elif mode in (None, "sampled"):
        engine = args.policy if args.policy is not None else "periodic"
    else:  # an explicit engine mode: stratified / fidelity
        engine = mode
        if args.policy is not None and args.policy != engine:
            parser.error(
                f"--policy {args.policy} conflicts with --mode {engine}"
            )
    allowed = _FLAG_APPLICABILITY.get(engine, set())
    for flag in ("period", "warmup", "history", "budget", "error_budget"):
        if getattr(args, flag, None) is not None and flag not in allowed:
            target = f"--mode {mode}" if engine is None else f"the {engine} engine"
            parser.error(
                f"{_FLAG_SPELLING[flag]} does not apply to {target}"
            )
    args.policy = engine
    for flag, default in _SAMPLING_DEFAULTS.items():
        if flag != "policy" and getattr(args, flag, None) is None:
            setattr(args, flag, default)


def _int_list(raw: str) -> List[int]:
    return [int(part) for part in raw.split(",") if part]


def _benchmark_list(raw: str) -> List[str]:
    if raw == "all":
        return list_workloads()
    return [part for part in raw.split(",") if part]


def _backend_and_store(args: argparse.Namespace):
    store = ResultStore(args.cache_dir) if args.cache_dir else default_store()
    if args.workers is not None and args.backend not in ("pool", "async"):
        raise ValueError(
            "--workers requires --backend pool or async "
            "(parallelism under --backend auto is controlled by --jobs; "
            "multihost budgets live in --hosts)"
        )
    if args.hosts and args.backend not in ("auto", "multihost"):
        raise ValueError("--hosts requires --backend multihost (or auto)")
    if args.listen and not (args.hosts or args.backend == "multihost"):
        raise ValueError(
            "--listen only applies to the multihost backend (pass --hosts)"
        )
    workers = args.workers if args.workers is not None else args.jobs
    backend = make_named_backend(
        args.backend, workers=workers, store=store,
        hosts=args.hosts, listen=args.listen, connect_host=args.connect_host,
        batch=args.batch,
    )
    return backend, store


def _add_common_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("benchmark", help="benchmark name (see 'repro list')")
    parser.add_argument("--threads", type=int, default=8, help="simulated threads")
    parser.add_argument("--scale", type=float, default=0.05,
                        help="workload scale relative to Table I (default 0.05)")
    parser.add_argument("--seed", type=int, default=1, help="trace-generation seed")
    parser.add_argument("--architecture", choices=["high-performance", "low-power"],
                        default="high-performance")


_POLICY_CHOICES = ["periodic", "lazy", "stratified", "fidelity"]


def _add_taskpoint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--policy", choices=_POLICY_CHOICES,
                        default=None,
                        help="sampling engine: TaskPoint periodic/lazy, "
                             "two-phase stratified sampling with confidence "
                             "intervals, or the online error-budget fidelity "
                             "controller (default: periodic)")
    parser.add_argument("--period", type=_bounded_int("--period", 1),
                        default=None,
                        help="periodic policy only: sampling period P "
                             "(default 250)")
    parser.add_argument("--warmup", type=_bounded_int("--warmup", 0),
                        default=None,
                        help="periodic/lazy/fidelity: warm-up instances W "
                             "(default 2)")
    parser.add_argument("--history", type=_bounded_int("--history", 1),
                        default=None,
                        help="periodic/lazy: history size H (default 4)")
    parser.add_argument("--budget", type=_fraction("--budget", max_inclusive=True),
                        default=None,
                        help="stratified mode only: target fraction of task "
                             "instances simulated in detail, in (0, 1] "
                             "(default 0.02)")
    parser.add_argument("--error-budget", dest="error_budget",
                        type=_fraction("--error-budget", max_inclusive=False),
                        default=None,
                        help="fidelity mode only: relative execution-time "
                             "error budget, in (0, 1) (default 0.02)")


def _add_mode_alias(parser: argparse.ArgumentParser) -> None:
    """Add ``--mode`` as an alias of ``--policy`` (for compare/grid).

    ``simulate`` has its own ``--mode`` (which also offers ``detailed``);
    the experiment commands take the engine name through either spelling —
    the acceptance workflows use ``--mode fidelity``.
    """
    parser.add_argument("--mode", dest="policy", choices=_POLICY_CHOICES,
                        default=None, help="alias for --policy")


def _add_orchestrator_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=1,
                        help="parallel worker processes (default 1 = serial)")
    parser.add_argument("--backend", choices=list(BACKEND_NAMES), default="auto",
                        help="execution backend (default: auto — a process "
                             "pool when --jobs > 1, serial otherwise; 'async' "
                             "is the distributed asyncio worker backend)")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker count, only valid with --backend "
                             "pool/async (default: --jobs)")
    parser.add_argument("--cache-dir", default=None,
                        help="persistent experiment result store "
                             "(default: $REPRO_CACHE_DIR if set)")
    parser.add_argument("--hosts", default=None,
                        help="multi-host worker budgets, e.g. "
                             "'host1:4,host2:8' (names starting with "
                             "'local' run subprocesses, others SSH; "
                             "implies --backend multihost)")
    parser.add_argument("--listen", default=None,
                        help="bind address of the multihost connect-back "
                             "listener: PORT or HOST:PORT (default: an "
                             "ephemeral loopback port)")
    parser.add_argument("--connect-host", default=None,
                        help="address remote workers dial back to (default: "
                             "127.0.0.1 for local hosts, this machine's "
                             "hostname for SSH hosts)")
    parser.add_argument("--batch", default=None,
                        help="specs per dispatch: N, 'adaptive' or "
                             "'adaptive:N' (async/multihost send protocol-v3 "
                             "run_batch frames, amortising per-spec "
                             "round-trips; pool maps it onto chunksize; "
                             "default: one spec at a time)")
    parser.add_argument("--profile", default=None, metavar="FILE",
                        help="run the simulation phase under cProfile and "
                             "dump binary stats to FILE (default: "
                             "$REPRO_PROFILE if set; inspect with "
                             "'python -m pstats FILE')")


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TaskPoint: sampled simulation of task-based programs (reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the available benchmarks")

    sim = subparsers.add_parser("simulate", help="simulate one benchmark")
    _add_common_arguments(sim)
    sim.add_argument("--mode",
                     choices=["detailed", "sampled", "stratified", "fidelity"],
                     default="sampled",
                     help="detailed baseline, TaskPoint sampling, two-phase "
                          "stratified sampling, or the online error-budget "
                          "fidelity controller (stratified/fidelity are "
                          "equivalent to --mode sampled --policy <engine>)")
    _add_taskpoint_arguments(sim)

    cmp = subparsers.add_parser("compare", help="sampled versus detailed simulation")
    _add_common_arguments(cmp)
    _add_taskpoint_arguments(cmp)
    _add_mode_alias(cmp)
    _add_orchestrator_arguments(cmp)

    grid = subparsers.add_parser(
        "grid", help="accuracy grid (benchmarks x thread counts) via the orchestrator"
    )
    grid.add_argument("--benchmarks", default="all",
                      help="comma-separated benchmark names, or 'all' (default)")
    grid.add_argument("--threads", default="8,16,32,64",
                      help="comma-separated simulated thread counts")
    grid.add_argument("--scale", type=float, default=0.05,
                      help="workload scale relative to Table I (default 0.05)")
    grid.add_argument("--seed", type=int, default=1, help="trace-generation seed")
    grid.add_argument("--architecture", choices=["high-performance", "low-power"],
                      default="high-performance")
    _add_taskpoint_arguments(grid)
    _add_mode_alias(grid)
    _add_orchestrator_arguments(grid)

    sweep = subparsers.add_parser(
        "sweep", help="parameter sensitivity sweep (Figure 6) via the orchestrator"
    )
    sweep.add_argument("parameter", choices=["W", "H", "P"],
                       help="swept parameter: warm-up, history size or period")
    sweep.add_argument("--values", default=None,
                       help="comma-separated parameter values (paper defaults if omitted)")
    sweep.add_argument("--benchmarks", default=",".join(SENSITIVITY_SUBSET),
                       help="comma-separated benchmark names, or 'all'")
    sweep.add_argument("--threads", default="32,64",
                       help="comma-separated simulated thread counts")
    sweep.add_argument("--scale", type=float, default=0.05,
                       help="workload scale relative to Table I (default 0.05)")
    sweep.add_argument("--seed", type=int, default=1, help="trace-generation seed")
    sweep.add_argument("--architecture", choices=["high-performance", "low-power"],
                       default="high-performance")
    _add_orchestrator_arguments(sweep)

    var = subparsers.add_parser("variation", help="per-task-type IPC variation")
    _add_common_arguments(var)

    serve = subparsers.add_parser(
        "serve", help="persistent simulation service daemon (submit/poll/watch API)"
    )
    serve.add_argument("--listen", default="127.0.0.1:0",
                       help="client API bind address, PORT or HOST:PORT "
                            "(default: an ephemeral loopback port, printed "
                            "on startup)")
    serve.add_argument("--workers", type=_bounded_int("--workers", 1), default=2,
                       help="local worker subprocesses (ignored with --hosts; "
                            "default 2)")
    serve.add_argument("--hosts", default=None,
                       help="multi-host worker budgets, e.g. 'host1:4,host2:8' "
                            "(switches the pool to the multihost backend)")
    serve.add_argument("--worker-listen", default=None,
                       help="bind address of the multihost connect-back "
                            "worker listener, PORT or HOST:PORT (distinct "
                            "from --listen, which serves clients)")
    serve.add_argument("--connect-host", default=None,
                       help="address remote workers dial back to")
    serve.add_argument("--batch", default=None,
                       help="specs per dispatch frame: N, 'adaptive' or "
                            "'adaptive:N'")
    serve.add_argument("--cache-dir", default=None,
                       help="result store directory — enables warm serving, "
                            "write-ahead durability and restart recovery "
                            "(default: $REPRO_CACHE_DIR if set)")
    serve.add_argument("--store-layout", choices=list(LAYOUT_NAMES),
                       default="directory",
                       help="store on-disk layout: sharded 'directory' "
                            "(default) or lock-free 'object' (object-store "
                            "keyspace)")
    serve.add_argument("--store-max-bytes",
                       type=_bounded_int("--store-max-bytes", 1), default=None,
                       help="LRU byte budget of the store; compaction evicts "
                            "cold entries past it (in-flight and failure "
                            "entries are never evicted)")
    serve.add_argument("--fair-cap", type=_bounded_int("--fair-cap", 1),
                       default=None,
                       help="default per-tenant in-flight cap (default: "
                            "uncapped)")
    serve.add_argument("--tenant", action="append", default=None,
                       metavar="NAME:WEIGHT[:CAP]",
                       help="configure one tenant's fair-share weight and "
                            "optional in-flight cap (repeatable)")
    serve.add_argument("--no-journal", action="store_true",
                       help="disable the job journal (no restart recovery)")

    submit = subparsers.add_parser(
        "submit", help="submit a spec grid to a running 'repro serve' daemon"
    )
    submit.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="daemon address (the --listen of 'repro serve')")
    submit.add_argument("--benchmarks", default="all",
                        help="comma-separated benchmark names, or 'all' (default)")
    submit.add_argument("--threads", default="8,16,32,64",
                        help="comma-separated simulated thread counts")
    submit.add_argument("--scale", type=float, default=0.05,
                        help="workload scale relative to Table I (default 0.05)")
    submit.add_argument("--seed", type=int, default=1, help="trace-generation seed")
    submit.add_argument("--architecture",
                        choices=["high-performance", "low-power"],
                        default="high-performance")
    _add_taskpoint_arguments(submit)
    _add_mode_alias(submit)
    submit.add_argument("--tenant", default="default",
                        help="tenant id for fair-share scheduling "
                             "(default: 'default')")
    submit.add_argument("--priority", type=int, default=0,
                        help="within-tenant priority (higher runs sooner, "
                             "aged so lower priorities are never starved)")
    submit.add_argument("--no-baselines", action="store_true",
                        help="submit only the sampled specs, without their "
                             "detailed baselines (the default matches "
                             "'repro grid', which runs both)")
    submit.add_argument("--watch", action="store_true",
                        help="stay attached and stream progress until the "
                             "job finishes")
    submit.add_argument("--timeout", type=float, default=600.0,
                        help="socket timeout per connection/frame in seconds")

    status = subparsers.add_parser(
        "status", help="query a job (or the whole daemon) by id"
    )
    status.add_argument("job", nargs="?", default=None,
                        help="job id (omit to list every job)")
    status.add_argument("--connect", required=True, metavar="HOST:PORT")
    status.add_argument("--stats", action="store_true",
                        help="print the daemon's stats_report (queue depths, "
                             "store hit/miss/eviction counters, dispatch "
                             "stats) as JSON")
    status.add_argument("--timeout", type=float, default=60.0,
                        help="socket timeout in seconds")

    watch = subparsers.add_parser(
        "watch", help="stream a job's progress until it finishes"
    )
    watch.add_argument("job", help="job id (from 'repro submit')")
    watch.add_argument("--connect", required=True, metavar="HOST:PORT")
    watch.add_argument("--timeout", type=float, default=600.0,
                       help="socket timeout per frame in seconds")

    cancel = subparsers.add_parser(
        "cancel", help="cancel a job's pending specs (running specs finish)"
    )
    cancel.add_argument("job", help="job id")
    cancel.add_argument("--connect", required=True, metavar="HOST:PORT")
    cancel.add_argument("--timeout", type=float, default=60.0,
                        help="socket timeout in seconds")
    return parser


def _command_list() -> int:
    rows = []
    for name in list_workloads():
        info = get_workload(name).info()
        rows.append([name, info.category, info.paper_task_types,
                     info.paper_task_instances, info.properties])
    print(format_table(
        ["benchmark", "category", "task types", "task instances", "properties"], rows
    ))
    return 0


def _command_simulate(args: argparse.Namespace) -> int:
    trace = get_workload(args.benchmark).generate(scale=args.scale, seed=args.seed)
    architecture = _architecture(args.architecture)
    if args.policy is None:  # --mode detailed
        result = simulate(trace, num_threads=args.threads, architecture=architecture)
    elif args.policy == "stratified":
        result = stratified_simulation(
            trace, num_threads=args.threads, architecture=architecture,
            config=StratifiedConfig(budget=args.budget),
        )
    elif args.policy == "fidelity":
        result = fidelity_simulation(
            trace, num_threads=args.threads, architecture=architecture,
            config=FidelityConfig(
                error_budget=args.error_budget, warmup_instances=args.warmup
            ),
        )
    else:
        result = sampled_simulation(
            trace, num_threads=args.threads, architecture=architecture,
            config=_taskpoint_config(args),
        )
    summary = result.summary()
    for key, value in summary.items():
        print(f"{key:20s}: {value}")
    confidence = result.metadata.get("confidence")
    if confidence:
        print(f"{'ci95 halfwidth':20s}: {confidence['half_width_percent']:.2f} %")
        print(f"{'ci95 cycles':20s}: [{confidence['lower_cycles']:,.0f}, "
              f"{confidence['upper_cycles']:,.0f}]")
    stats = result.metadata.get("taskpoint")
    fidelity = getattr(stats, "fidelity_summary", None)
    if callable(fidelity):
        info = fidelity()
        print(f"{'error budget':20s}: {info['error_budget'] * 100:.1f} %")
        print(f"{'committed types':20s}: {info['committed_types']}/{info['num_types']}"
              f" (commits {info['commits']}, reopens {info['reopens']},"
              f" probes {info['probes']})")
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    spec = ExperimentSpec(
        benchmark=args.benchmark,
        num_threads=args.threads,
        scale=args.scale,
        trace_seed=args.seed,
        architecture=_architecture(args.architecture),
        config=_sampling_config(args),
    )
    backend, store = _backend_and_store(args)
    with _maybe_profile(args):
        sampled, detailed = run_experiments(
            [spec, spec.baseline()], backend=backend, store=store
        )
    print(f"benchmark            : {sampled.benchmark}")
    print(f"architecture         : {sampled.architecture}")
    print(f"threads              : {sampled.num_threads}")
    print(f"detailed cycles      : {detailed.total_cycles:,.0f}")
    print(f"sampled cycles       : {sampled.total_cycles:,.0f}")
    print(f"execution-time error : {sampled.error_versus(detailed) * 100.0:.2f} %")
    print(f"simulation speedup   : {sampled.speedup_versus(detailed):.1f}x")
    stats = sampled.taskpoint or {}
    print(f"warm-up / valid / fast-forwarded: "
          f"{stats.get('warmup_instances', 0)} / {stats.get('valid_samples', 0)}"
          f" / {stats.get('fast_forwarded', 0)}")
    print(f"resamples            : {stats.get('resamples', 0)}")
    confidence = stats.get("confidence")
    if confidence:
        covered = (confidence["lower_cycles"] <= detailed.total_cycles
                   <= confidence["upper_cycles"])
        print(f"ci95                 : +/-{confidence['half_width_percent']:.2f} %"
              f" [{confidence['lower_cycles']:,.0f}, "
              f"{confidence['upper_cycles']:,.0f}]"
              f" ({'covers' if covered else 'misses'} detailed)")
    return 0


@contextlib.contextmanager
def _maybe_profile(args: argparse.Namespace):
    """Profile the wrapped simulation phase when requested.

    ``--profile FILE`` wins over ``$REPRO_PROFILE``; with neither set this
    is a no-op.  The binary :mod:`cProfile` stats land in ``FILE`` on exit
    (including on error), ready for ``python -m pstats FILE`` or any
    pstats-compatible viewer.
    """
    path = getattr(args, "profile", None) or os.environ.get("REPRO_PROFILE")
    if not path:
        yield
        return
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield
    finally:
        profiler.disable()
        profiler.dump_stats(path)
        print(f"profile: simulation-phase cProfile stats written to {path}",
              file=sys.stderr)


def _command_grid(args: argparse.Namespace) -> int:
    backend, store = _backend_and_store(args)
    with _maybe_profile(args):
        results = evaluate_grid(
            _benchmark_list(args.benchmarks),
            _int_list(args.threads),
            architecture=_architecture(args.architecture),
            config=_sampling_config(args),
            scale=args.scale,
            seed=args.seed,
            backend=backend,
            store=store,
        )
    if args.policy == "lazy":
        policy = "lazy"
    elif args.policy == "stratified":
        policy = f"stratified budget={args.budget}"
    elif args.policy == "fidelity":
        policy = f"fidelity error-budget={args.error_budget}"
    else:
        policy = f"periodic P={args.period}"
    print(render_accuracy_table(
        results,
        title=(f"Accuracy grid: {policy}, W={args.warmup}, H={args.history}, "
               f"{args.architecture} architecture, scale={args.scale}"),
    ))
    return 0


def _command_sweep(args: argparse.Namespace) -> int:
    backend, store = _backend_and_store(args)
    kwargs = dict(
        benchmarks=_benchmark_list(args.benchmarks),
        thread_counts=_int_list(args.threads),
        architecture=_architecture(args.architecture),
        scale=args.scale,
        seed=args.seed,
        backend=backend,
        store=store,
    )
    if args.parameter == "W":
        sweep, values_key = warmup_sweep, "warmup_values"
    elif args.parameter == "H":
        sweep, values_key = history_sweep, "history_values"
    else:
        sweep, values_key = period_sweep, "period_values"
    if args.values:
        kwargs[values_key] = tuple(_int_list(args.values))
    with _maybe_profile(args):
        points = sweep(**kwargs)
    rows = [
        [point.value, point.average_error_percent, point.average_speedup,
         point.experiments]
        for point in points
    ]
    print(f"sensitivity sweep over {args.parameter} "
          f"({args.architecture} architecture, scale={args.scale})")
    print(format_table([args.parameter, "avg error [%]", "avg speedup", "experiments"],
                       rows))
    return 0


def _command_variation(args: argparse.Namespace) -> int:
    trace = get_workload(args.benchmark).generate(scale=args.scale, seed=args.seed)
    result = simulate(trace, num_threads=args.threads,
                      architecture=_architecture(args.architecture))
    report = ipc_variation(result)
    box = report.box
    print(f"benchmark     : {report.benchmark} ({args.threads} threads)")
    print(f"instances     : {box.count}")
    print(f"p5 / q1 / median / q3 / p95 [%]: "
          f"{box.percentile_5:.2f} / {box.quartile_1:.2f} / {box.median:.2f} / "
          f"{box.quartile_3:.2f} / {box.percentile_95:.2f}")
    print(f"within +/-5%  : {'yes' if report.within_5_percent else 'no'}")
    rows = [[tv.task_type, tv.count, f"{tv.mean_ipc:.3f}",
             f"{tv.coefficient_of_variation * 100:.2f}"] for tv in report.per_type]
    print(format_table(["task type", "instances", "mean IPC", "CV [%]"], rows))
    return 0


def _parse_connect(raw: str) -> "tuple[str, int]":
    host, sep, port = raw.rpartition(":")
    if not sep or not host:
        raise ValueError(f"--connect expects HOST:PORT, got {raw!r}")
    return host, int(port)


def _parse_tenant_configs(raw_list: Optional[List[str]]):
    tenants = {}
    for raw in raw_list or []:
        parts = raw.split(":")
        if len(parts) not in (2, 3):
            raise ValueError(
                f"invalid --tenant {raw!r} (expected NAME:WEIGHT[:CAP])"
            )
        weight = float(parts[1])
        cap = int(parts[2]) if len(parts) == 3 else None
        tenants[parts[0]] = (weight, cap)
    return tenants


async def _serve_async(args: argparse.Namespace) -> int:
    host, port = parse_listen(args.listen)
    tenants = _parse_tenant_configs(args.tenant)
    cache_dir = args.cache_dir or os.environ.get(CACHE_DIR_ENV)
    store = (
        ResultStore(
            cache_dir, layout=args.store_layout, max_bytes=args.store_max_bytes
        )
        if cache_dir
        else None
    )
    backend = make_named_backend(
        "multihost" if args.hosts else "async",
        workers=args.workers, store=None,
        hosts=args.hosts, listen=args.worker_listen,
        connect_host=args.connect_host, batch=args.batch,
    )
    service = SimulationService(
        backend,
        store=store,
        default_cap=args.fair_cap,
        journal=not args.no_journal,
    )
    for name, (weight, cap) in tenants.items():
        service.configure_tenant(name, weight=weight, cap=cap)
    # Handlers go in before the "listening" banner: anyone who has seen the
    # banner may signal us, and the default SIGTERM action would skip the
    # graceful (journal-preserving) shutdown path.
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(ValueError, NotImplementedError, RuntimeError):
            loop.add_signal_handler(signum, service.request_stop)
    await service.start(host, port)
    pool = args.hosts if args.hosts else f"{args.workers} local workers"
    print(
        f"repro serve: listening on {service.host}:{service.port} "
        f"({pool}, store={cache_dir or 'none'})",
        flush=True,
    )
    await service.serve_until_stopped()
    print("repro serve: stopped", flush=True)
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    return asyncio.run(_serve_async(args))


def _submit_specs(args: argparse.Namespace) -> List[ExperimentSpec]:
    """The same specs a ``repro grid`` with these flags would execute."""
    specs = grid_specs(
        _benchmark_list(args.benchmarks),
        _int_list(args.threads),
        architecture=_architecture(args.architecture),
        config=_sampling_config(args),
        scale=args.scale,
        seed=args.seed,
    )
    if not args.no_baselines:
        specs = [s for spec in specs for s in (spec, spec.baseline())]
    return specs


def _watch_to_completion(client: ServiceClient, job_id: str) -> int:
    def on_update(frame) -> None:
        if frame.get("type") == "job_update":
            cached = " (cached)" if frame.get("cached") else ""
            print(
                f"  [{frame['seq']}] unit {frame['unit']} "
                f"{frame['state']}{cached}",
                flush=True,
            )

    done = client.watch(job_id, on_update=on_update)
    print(f"status : {done['status']}")
    print(f"digest : {done['digest']}")
    for failure in done.get("failures", []):
        error = failure.get("error") or {}
        print(
            f"failed : {failure['key']} "
            f"{error.get('error_type')}: {error.get('message')}",
            file=sys.stderr,
        )
    return 0 if done["status"] == "done" else 2


def _command_submit(args: argparse.Namespace) -> int:
    host, port = _parse_connect(args.connect)
    client = ServiceClient(host, port, timeout=args.timeout)
    reply = client.submit(
        _submit_specs(args), tenant=args.tenant, priority=args.priority
    )
    print(f"job    : {reply['job']}")
    print(f"specs  : {reply['total']} ({reply['cached']} cached)")
    if reply.get("attached"):
        print("attached to an already-submitted identical job")
    if args.watch:
        return _watch_to_completion(client, reply["job"])
    return 0


def _command_status(args: argparse.Namespace) -> int:
    host, port = _parse_connect(args.connect)
    client = ServiceClient(host, port, timeout=args.timeout)
    if args.stats:
        print(json.dumps(client.stats(), indent=2, sort_keys=True))
        return 0
    if args.job is None:
        reply = client.status()
        rows = [
            [job["job"], job["tenant"], job["status"],
             f"{job['counts']['done']}/{job['total']}", job["cached"]]
            for job in reply["jobs"]
        ]
        print(format_table(["job", "tenant", "status", "done", "cached"], rows))
        return 0
    job = client.status(args.job)
    for key in ("job", "tenant", "priority", "status", "total", "cached"):
        print(f"{key:8s}: {job[key]}")
    counts = job["counts"]
    print(f"{'units':8s}: " + ", ".join(
        f"{state}={counts[state]}" for state in sorted(counts)
    ))
    return 0


def _command_watch(args: argparse.Namespace) -> int:
    host, port = _parse_connect(args.connect)
    client = ServiceClient(host, port, timeout=args.timeout)
    return _watch_to_completion(client, args.job)


def _command_cancel(args: argparse.Namespace) -> int:
    host, port = _parse_connect(args.connect)
    client = ServiceClient(host, port, timeout=args.timeout)
    reply = client.cancel(args.job)
    print(f"cancelled {reply['cancelled']} pending spec(s) of job {args.job}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command in ("simulate", "compare", "grid", "submit"):
        _resolve_sampling_args(parser, args)
    try:
        if args.command == "list":
            return _command_list()
        if args.command == "simulate":
            return _command_simulate(args)
        if args.command == "compare":
            return _command_compare(args)
        if args.command == "grid":
            return _command_grid(args)
        if args.command == "sweep":
            return _command_sweep(args)
        if args.command == "variation":
            return _command_variation(args)
        if args.command == "serve":
            return _command_serve(args)
        if args.command == "submit":
            return _command_submit(args)
        if args.command == "status":
            return _command_status(args)
        if args.command == "watch":
            return _command_watch(args)
        if args.command == "cancel":
            return _command_cancel(args)
    except (KeyError, ValueError, ExperimentExecutionError, ServiceError,
            ConnectionError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        # The async backend shuts its workers down gracefully on ^C, and a
        # cache-dir store already holds every completed experiment.
        print("interrupted", file=sys.stderr)
        return 130
    return 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
