"""Task-based runtime system (OmpSs-style substrate).

The paper's experimental stack runs task-based OmpSs programs whose task
instances are scheduled dynamically by the Nanos++ runtime.  This package is
the reproduction's equivalent runtime: it tracks task instances and their
dependencies, maintains the ready queue and assigns ready instances to
simulated worker threads through a pluggable scheduling policy.

The runtime is deliberately independent of the simulator: it only reasons
about task readiness and assignment, while the simulator decides how long
each assigned instance takes.
"""

from repro.runtime.task import TaskInstance, TaskState, TaskType
from repro.runtime.dependencies import DependencyTracker, TaskGraphBuilder
from repro.runtime.scheduler import (
    FifoScheduler,
    LocalityScheduler,
    RandomScheduler,
    Scheduler,
    make_scheduler,
)
from repro.runtime.runtime import RuntimeSystem

__all__ = [
    "TaskType",
    "TaskInstance",
    "TaskState",
    "DependencyTracker",
    "TaskGraphBuilder",
    "Scheduler",
    "FifoScheduler",
    "LocalityScheduler",
    "RandomScheduler",
    "make_scheduler",
    "RuntimeSystem",
]
