"""The runtime system: dependency tracking plus dynamic scheduling.

The :class:`RuntimeSystem` is the piece of the stack that the simulator
interfaces with, mirroring how TaskSim interfaces with an unmodified Nanos++
runtime: the simulator asks the runtime for the next ready task instance for
an idle worker and notifies it when an instance completes.
"""

from __future__ import annotations

from typing import List, Optional

from repro.runtime.dependencies import DependencyTracker
from repro.runtime.scheduler import FifoScheduler, Scheduler
from repro.runtime.task import TaskInstance, TaskType
from repro.trace.trace import ApplicationTrace


class RuntimeSystem:
    """Schedules the task instances of one application onto worker threads.

    Parameters
    ----------
    trace:
        The application trace to execute.
    scheduler:
        Dynamic scheduling policy; defaults to a global FIFO queue.
    """

    def __init__(self, trace: ApplicationTrace, scheduler: Optional[Scheduler] = None) -> None:
        self.trace = trace
        self.tracker = DependencyTracker(trace)
        self.scheduler = scheduler if scheduler is not None else FifoScheduler()
        for instance in self.tracker.initially_ready():
            self.scheduler.enqueue(instance)

    # ------------------------------------------------------------------
    @property
    def task_types(self) -> List[TaskType]:
        """All task types of the application."""
        return self.tracker.task_types

    @property
    def num_instances(self) -> int:
        """Total number of task instances."""
        return self.tracker.num_instances

    @property
    def num_completed(self) -> int:
        """Number of instances that have completed."""
        return self.tracker.num_completed

    def pending_ready(self) -> int:
        """Number of instances ready and waiting for a worker."""
        return self.scheduler.pending()

    def finished(self) -> bool:
        """``True`` when every instance of the application has completed."""
        return self.tracker.all_completed()

    # ------------------------------------------------------------------
    def next_task(self, worker_id: int) -> Optional[TaskInstance]:
        """Return the next ready instance for ``worker_id``, or ``None``."""
        return self.scheduler.dequeue(worker_id)

    def notify_completion(self, instance: TaskInstance, worker_id: int) -> List[TaskInstance]:
        """Handle completion of ``instance``: release and enqueue dependents.

        Returns the list of instances that became ready as a result.
        """
        self.scheduler.on_complete(worker_id, instance)
        released = self.tracker.complete(instance.instance_id)
        for ready in released:
            self.scheduler.enqueue(ready)
        return released
