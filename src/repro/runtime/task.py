"""Task types and task instances.

Terminology follows the paper: every execution of a task declaration creates
a *task instance*; all instances created from the same declaration share a
*task type*.  The number of task types is small (1-11 for the evaluated
benchmarks) while the number of instances is in the thousands.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Set

from repro.trace.records import TaskTraceRecord


class TaskState(enum.Enum):
    """Lifecycle of a task instance inside the runtime."""

    CREATED = "created"        # dependencies not yet satisfied
    READY = "ready"            # all dependencies satisfied, waiting for a thread
    RUNNING = "running"        # assigned to a worker thread
    COMPLETED = "completed"    # finished execution


@dataclass(frozen=True)
class TaskType:
    """A task declaration in the (synthetic) program source."""

    name: str
    type_id: int

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


@dataclass
class TaskInstance:
    """A single dynamically created task instance.

    The instance wraps its trace record (dynamic instruction count, memory
    behaviour) and adds the runtime-side state: dependency counters, the
    worker it ran on and its measured timing once completed.
    """

    record: TaskTraceRecord
    task_type: TaskType
    state: TaskState = TaskState.CREATED
    remaining_dependencies: int = 0
    dependents: Set[int] = field(default_factory=set)
    worker_id: Optional[int] = None
    start_cycle: Optional[float] = None
    end_cycle: Optional[float] = None

    @property
    def instance_id(self) -> int:
        """Identifier of the instance (same as its trace record's id)."""
        return self.record.instance_id

    @property
    def instructions(self) -> int:
        """Dynamic instruction count of the instance."""
        return self.record.instructions

    @property
    def cycles(self) -> Optional[float]:
        """Execution time in cycles, or ``None`` if not completed."""
        if self.start_cycle is None or self.end_cycle is None:
            return None
        return self.end_cycle - self.start_cycle

    @property
    def ipc(self) -> Optional[float]:
        """Measured IPC of the instance, or ``None`` if not completed."""
        cycles = self.cycles
        if cycles is None or cycles <= 0:
            return None
        return self.instructions / cycles

    def mark_ready(self) -> None:
        """Transition CREATED -> READY (all dependencies satisfied)."""
        if self.state is not TaskState.CREATED:
            raise ValueError(f"cannot mark {self.state} instance ready")
        if self.remaining_dependencies != 0:
            raise ValueError("instance still has unsatisfied dependencies")
        self.state = TaskState.READY

    def mark_running(self, worker_id: int, start_cycle: float) -> None:
        """Transition READY -> RUNNING on ``worker_id`` at ``start_cycle``."""
        if self.state is not TaskState.READY:
            raise ValueError(f"cannot start {self.state} instance")
        self.state = TaskState.RUNNING
        self.worker_id = worker_id
        self.start_cycle = start_cycle

    def mark_completed(self, end_cycle: float) -> None:
        """Transition RUNNING -> COMPLETED at ``end_cycle``."""
        if self.state is not TaskState.RUNNING:
            raise ValueError(f"cannot complete {self.state} instance")
        if self.start_cycle is not None and end_cycle < self.start_cycle:
            raise ValueError("end cycle precedes start cycle")
        self.state = TaskState.COMPLETED
        self.end_cycle = end_cycle
