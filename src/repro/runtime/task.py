"""Task types and task instances.

Terminology follows the paper: every execution of a task declaration creates
a *task instance*; all instances created from the same declaration share a
*task type*.  The number of task types is small (1-11 for the evaluated
benchmarks) while the number of instances is in the thousands.

Instances created by the runtime from a columnar trace are lightweight: they
carry only the scalar state the scheduler and the mode controller need
(instance id, instruction count, task type, lifecycle state); the full
:class:`~repro.trace.records.TaskTraceRecord` view is materialised from the
trace columns on first access to :attr:`TaskInstance.record`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Set, TYPE_CHECKING

from repro.trace.records import TaskTraceRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.trace.trace import ApplicationTrace


class TaskState(enum.Enum):
    """Lifecycle of a task instance inside the runtime."""

    CREATED = "created"        # dependencies not yet satisfied
    READY = "ready"            # all dependencies satisfied, waiting for a thread
    RUNNING = "running"        # assigned to a worker thread
    COMPLETED = "completed"    # finished execution


@dataclass(frozen=True)
class TaskType:
    """A task declaration in the (synthetic) program source."""

    name: str
    type_id: int

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


class TaskInstance:
    """A single dynamically created task instance.

    The instance adds the runtime-side state to its trace record: dependency
    counters, the worker it ran on and its measured timing once completed.
    Construct it either from a materialised ``record`` (compatibility path,
    used by tests) or from ``(trace, instance_id)``, in which case the record
    view is materialised lazily from the trace columns.
    """

    __slots__ = (
        "task_type",
        "state",
        "remaining_dependencies",
        "dependents",
        "worker_id",
        "start_cycle",
        "end_cycle",
        "_record",
        "_trace",
        "_instance_id",
        "_instructions",
    )

    def __init__(
        self,
        record: Optional[TaskTraceRecord] = None,
        task_type: Optional[TaskType] = None,
        state: TaskState = TaskState.CREATED,
        remaining_dependencies: int = 0,
        dependents: Optional[Set[int]] = None,
        worker_id: Optional[int] = None,
        start_cycle: Optional[float] = None,
        end_cycle: Optional[float] = None,
        *,
        trace: Optional["ApplicationTrace"] = None,
        instance_id: Optional[int] = None,
        instructions: Optional[int] = None,
    ) -> None:
        if record is None and (trace is None or instance_id is None):
            raise ValueError("pass either a record or (trace, instance_id)")
        self._record = record
        self._trace = trace
        self._instance_id = (
            record.instance_id if record is not None else int(instance_id)  # type: ignore[arg-type]
        )
        if instructions is not None:
            self._instructions = instructions
        elif record is not None:
            self._instructions = record.instructions
        else:
            self._instructions = int(trace.columns.instructions[instance_id])  # type: ignore[union-attr]
        self.task_type = task_type
        self.state = state
        self.remaining_dependencies = remaining_dependencies
        self.dependents: Set[int] = dependents if dependents is not None else set()
        self.worker_id = worker_id
        self.start_cycle = start_cycle
        self.end_cycle = end_cycle

    # ------------------------------------------------------------------
    @property
    def record(self) -> TaskTraceRecord:
        """Trace record of the instance (materialised lazily from columns).

        Goes through the trace so an already-materialised record list is
        reused instead of rebuilding the view from the columns.
        """
        if self._record is None:
            self._record = self._trace[self._instance_id]  # type: ignore[index]
        return self._record

    @property
    def instance_id(self) -> int:
        """Identifier of the instance (same as its trace record's id)."""
        return self._instance_id

    @property
    def instructions(self) -> int:
        """Dynamic instruction count of the instance."""
        return self._instructions

    @property
    def cycles(self) -> Optional[float]:
        """Execution time in cycles, or ``None`` if not completed."""
        if self.start_cycle is None or self.end_cycle is None:
            return None
        return self.end_cycle - self.start_cycle

    @property
    def ipc(self) -> Optional[float]:
        """Measured IPC of the instance, or ``None`` if not completed."""
        cycles = self.cycles
        if cycles is None or cycles <= 0:
            return None
        return self._instructions / cycles

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = self.task_type.name if self.task_type is not None else "?"
        return (
            f"TaskInstance(id={self._instance_id}, type={name},"
            f" state={self.state.value})"
        )

    def mark_ready(self) -> None:
        """Transition CREATED -> READY (all dependencies satisfied)."""
        if self.state is not TaskState.CREATED:
            raise ValueError(f"cannot mark {self.state} instance ready")
        if self.remaining_dependencies != 0:
            raise ValueError("instance still has unsatisfied dependencies")
        self.state = TaskState.READY

    def mark_running(self, worker_id: int, start_cycle: float) -> None:
        """Transition READY -> RUNNING on ``worker_id`` at ``start_cycle``."""
        if self.state is not TaskState.READY:
            raise ValueError(f"cannot start {self.state} instance")
        self.state = TaskState.RUNNING
        self.worker_id = worker_id
        self.start_cycle = start_cycle

    def mark_completed(self, end_cycle: float) -> None:
        """Transition RUNNING -> COMPLETED at ``end_cycle``."""
        if self.state is not TaskState.RUNNING:
            raise ValueError(f"cannot complete {self.state} instance")
        if self.start_cycle is not None and end_cycle < self.start_cycle:
            raise ValueError("end cycle precedes start cycle")
        self.state = TaskState.COMPLETED
        self.end_cycle = end_cycle
