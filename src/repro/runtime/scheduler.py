"""Dynamic task schedulers.

A scheduler decides which ready task instance an idle worker thread picks up
next.  Because the schedulers are deliberately simple and deterministic for a
fixed seed, the same trace simulated twice with the same scheduler produces
the same assignment of instances to threads — but *different* schedulers (or
different thread counts) produce different per-thread instruction streams,
which is exactly the property of dynamically scheduled task-based programs
that breaks conventional multi-threaded sampling techniques.
"""

from __future__ import annotations

import abc
import random
from collections import deque
from typing import Deque, Dict, List, Optional

from repro.runtime.task import TaskInstance


class Scheduler(abc.ABC):
    """Interface of a dynamic task scheduler."""

    @abc.abstractmethod
    def enqueue(self, instance: TaskInstance) -> None:
        """Add a ready task instance to the scheduler's pool."""

    @abc.abstractmethod
    def dequeue(self, worker_id: int) -> Optional[TaskInstance]:
        """Return the next instance for ``worker_id``, or ``None`` if empty."""

    @abc.abstractmethod
    def pending(self) -> int:
        """Number of ready instances currently queued."""

    def on_complete(self, worker_id: int, instance: TaskInstance) -> None:
        """Hook called when ``worker_id`` finishes ``instance`` (optional)."""


class FifoScheduler(Scheduler):
    """A single global FIFO ready queue (the default OmpSs breadth-first)."""

    def __init__(self) -> None:
        self._queue: Deque[TaskInstance] = deque()

    def enqueue(self, instance: TaskInstance) -> None:
        self._queue.append(instance)

    def dequeue(self, worker_id: int) -> Optional[TaskInstance]:
        if not self._queue:
            return None
        return self._queue.popleft()

    def pending(self) -> int:
        return len(self._queue)


class LocalityScheduler(Scheduler):
    """Prefers giving a worker instances of the task type it last executed.

    This approximates locality-aware scheduling: consecutive instances of the
    same type on the same core reuse warmed private-cache state, which lowers
    their execution time.  Falls back to global FIFO order when no matching
    instance is queued.
    """

    def __init__(self) -> None:
        self._queue: Deque[TaskInstance] = deque()
        self._last_type: Dict[int, str] = {}

    def enqueue(self, instance: TaskInstance) -> None:
        self._queue.append(instance)

    def dequeue(self, worker_id: int) -> Optional[TaskInstance]:
        if not self._queue:
            return None
        preferred = self._last_type.get(worker_id)
        if preferred is not None:
            for index, instance in enumerate(self._queue):
                if instance.task_type.name == preferred:
                    del self._queue[index]
                    return instance
        return self._queue.popleft()

    def pending(self) -> int:
        return len(self._queue)

    def on_complete(self, worker_id: int, instance: TaskInstance) -> None:
        self._last_type[worker_id] = instance.task_type.name


class RandomScheduler(Scheduler):
    """Picks a random ready instance; models work-stealing-like randomness.

    Deterministic for a fixed seed, but the assignment of instances to
    workers differs from run to run when the seed changes — a convenient way
    to emulate the run-to-run scheduling variability of real task runtimes.
    """

    def __init__(self, seed: int = 0) -> None:
        self._pool: List[TaskInstance] = []
        self._rng = random.Random(seed)

    def enqueue(self, instance: TaskInstance) -> None:
        self._pool.append(instance)

    def dequeue(self, worker_id: int) -> Optional[TaskInstance]:
        if not self._pool:
            return None
        index = self._rng.randrange(len(self._pool))
        self._pool[index], self._pool[-1] = self._pool[-1], self._pool[index]
        return self._pool.pop()

    def pending(self) -> int:
        return len(self._pool)


_SCHEDULERS = {
    "fifo": FifoScheduler,
    "locality": LocalityScheduler,
    "random": RandomScheduler,
}


def make_scheduler(name: str, seed: int = 0) -> Scheduler:
    """Create a scheduler by name (``"fifo"``, ``"locality"`` or ``"random"``)."""
    try:
        factory = _SCHEDULERS[name]
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r}; available: {sorted(_SCHEDULERS)}"
        ) from None
    if factory is RandomScheduler:
        return RandomScheduler(seed=seed)
    return factory()
