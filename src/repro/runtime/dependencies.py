"""Dependency tracking for dynamically created task instances.

OmpSs programs annotate tasks with ``in``/``out``/``inout`` data clauses; the
runtime derives inter-task dependencies from them.  In this reproduction the
workload generators already encode the resulting dependency edges in the
trace, so the tracker's job is the runtime-side bookkeeping: counting
unsatisfied dependencies per instance, releasing dependents on completion and
exposing the ready set.

The tracker is built directly from the trace's dependency CSR arrays — no
record views are materialised and the forward (dependent) edges are derived
with one vectorised pass instead of per-record set insertions.

The :class:`TaskGraphBuilder` additionally offers the data-clause style API
(``submit(task, inputs=..., outputs=...)``) used by the examples, computing
dependency edges the same way a data-flow runtime would (last-writer for
reads, writers serialised after readers).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Hashable, Iterable, List, Sequence, Set

from repro.runtime.task import TaskInstance, TaskState, TaskType
from repro.trace.trace import ApplicationTrace


class DependencyTracker:
    """Tracks dependency state for the task instances of one application."""

    def __init__(self, trace: ApplicationTrace) -> None:
        self.trace = trace
        columns = trace.columns
        self._types: Dict[str, TaskType] = {
            name: TaskType(name=name, type_id=type_id)
            for type_id, name in enumerate(columns.types.names)
        }
        types_by_id = [self._types[name] for name in columns.types.names]

        # The per-record list views and the forward CSR are static
        # properties of the trace; memoise them on the columns (alongside
        # the execution plans) so re-simulating the same trace — the hot
        # pattern in sweeps and benchmarks — skips the array conversions.
        cached = columns.plan_cache.get("runtime-lists")
        if cached is None:
            offsets, targets = columns.dependents_csr()
            cached = (
                columns.dependency_counts().tolist(),
                columns.instructions.tolist(),
                columns.task_type_id.tolist(),
                offsets.tolist(),
                targets.tolist(),
            )
            columns.plan_cache["runtime-lists"] = cached
        (
            dependency_counts,
            instruction_counts,
            type_ids,
            dependent_offsets,
            dependent_targets,
        ) = cached
        self.instances: List[TaskInstance] = [
            TaskInstance(
                task_type=types_by_id[type_ids[index]],
                remaining_dependencies=dependency_counts[index],
                trace=trace,
                instance_id=index,
                instructions=instruction_counts[index],
            )
            for index in range(columns.num_records)
        ]
        # Forward edges: dependents of instance i, ascending.  The CSR lists
        # are the tracker's only forward-edge state; the per-instance
        # ``dependents`` sets stay empty (use :meth:`dependents_of`).
        self._dependent_offsets = dependent_offsets
        self._dependent_targets = dependent_targets
        self._completed = 0

    # ------------------------------------------------------------------
    @property
    def task_types(self) -> List[TaskType]:
        """All task types, in order of first appearance."""
        return list(self._types.values())

    @property
    def num_instances(self) -> int:
        """Total number of task instances."""
        return len(self.instances)

    @property
    def num_completed(self) -> int:
        """Number of completed instances."""
        return self._completed

    def all_completed(self) -> bool:
        """``True`` when every instance has completed."""
        return self._completed == len(self.instances)

    def instance(self, instance_id: int) -> TaskInstance:
        """Return the instance with the given id."""
        return self.instances[instance_id]

    def dependents_of(self, instance_id: int) -> List[int]:
        """Ids of the instances that depend on ``instance_id``, ascending."""
        start = self._dependent_offsets[instance_id]
        stop = self._dependent_offsets[instance_id + 1]
        return self._dependent_targets[start:stop]

    # ------------------------------------------------------------------
    def initially_ready(self) -> List[TaskInstance]:
        """Return (and mark) all instances with no dependencies as ready."""
        ready = []
        for instance in self.instances:
            if instance.state is TaskState.CREATED and instance.remaining_dependencies == 0:
                instance.mark_ready()
                ready.append(instance)
        return ready

    def complete(self, instance_id: int) -> List[TaskInstance]:
        """Record completion of ``instance_id`` and return newly ready instances.

        The caller (the simulator) is responsible for having already called
        :meth:`TaskInstance.mark_completed` on the instance.
        """
        instance = self.instances[instance_id]
        if instance.state is not TaskState.COMPLETED:
            raise ValueError(
                f"instance {instance_id} must be completed before notifying the tracker"
            )
        self._completed += 1
        released: List[TaskInstance] = []
        instances = self.instances
        start = self._dependent_offsets[instance_id]
        stop = self._dependent_offsets[instance_id + 1]
        for position in range(start, stop):
            dependent = instances[self._dependent_targets[position]]
            dependent.remaining_dependencies -= 1
            if dependent.remaining_dependencies < 0:
                raise RuntimeError(
                    f"dependency counter of instance {dependent.instance_id} became negative"
                )
            if dependent.remaining_dependencies == 0 and dependent.state is TaskState.CREATED:
                dependent.mark_ready()
                released.append(dependent)
        return released


class TaskGraphBuilder:
    """Derives dependency edges from data clauses, OmpSs style.

    The builder keeps, per datum, the id of the last task that wrote it and
    the ids of the tasks that read it since: a new reader depends on the last
    writer (read-after-write), and a new writer depends on the last writer and
    all readers since (write-after-write, write-after-read).
    """

    def __init__(self) -> None:
        self._last_writer: Dict[Hashable, int] = {}
        self._readers_since_write: Dict[Hashable, Set[int]] = defaultdict(set)
        self.edges: Dict[int, Set[int]] = defaultdict(set)

    def submit(
        self,
        task_id: int,
        inputs: Iterable[Hashable] = (),
        outputs: Iterable[Hashable] = (),
        inouts: Iterable[Hashable] = (),
    ) -> List[int]:
        """Register a task and return the ids of the tasks it depends on."""
        inputs = list(inputs)
        outputs = list(outputs)
        inouts = list(inouts)
        dependencies: Set[int] = set()
        for datum in list(inputs) + list(inouts):
            writer = self._last_writer.get(datum)
            if writer is not None and writer != task_id:
                dependencies.add(writer)
        for datum in list(outputs) + list(inouts):
            writer = self._last_writer.get(datum)
            if writer is not None and writer != task_id:
                dependencies.add(writer)
            for reader in self._readers_since_write[datum]:
                if reader != task_id:
                    dependencies.add(reader)
        for datum in inputs:
            self._readers_since_write[datum].add(task_id)
        for datum in list(outputs) + list(inouts):
            self._last_writer[datum] = task_id
            self._readers_since_write[datum] = set()
        for datum in inouts:
            self._readers_since_write[datum].add(task_id)
        self.edges[task_id] = dependencies
        return sorted(dependencies)

    def dependencies_of(self, task_id: int) -> List[int]:
        """Return the recorded dependencies of ``task_id``."""
        return sorted(self.edges.get(task_id, set()))
