#!/usr/bin/env python3
"""Gate CI on the hot-path speedup trajectory.

Compares the geometric-mean detailed-mode speedup of the *fresh* hot-path
measurement (``benchmarks/results/perf_hotpath.json``, written by
``benchmarks/bench_perf_hotpath.py`` on every run, including smoke runs)
against the *last committed* entry of the ``BENCH_hotpath.json`` trajectory,
and fails when the fresh number falls below ``slack * committed``.

The slack is deliberately generous (default 0.4): CI runners are shared,
single-core and noisy, and the smoke measurement runs at a smaller scale
with one repeat — so absolute throughput is not comparable run-to-run.  The
*ratio* (batched engine over the per-record baseline on the same host, in
the same process, interleaved) is far more stable, and a catastrophic
regression — grouped dispatch silently disabled, plan memoisation broken —
drags it toward 1x, far through any reasonable slack.  Tightening beyond
~0.6 trades signal for flakes.

Usage::

    python scripts/check_hotpath_regression.py [--slack 0.4] \
        [--measurement benchmarks/results/perf_hotpath.json] \
        [--trajectory BENCH_hotpath.json]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--measurement",
        type=Path,
        default=REPO_ROOT / "benchmarks" / "results" / "perf_hotpath.json",
        help="fresh measurement JSON written by bench_perf_hotpath.py",
    )
    parser.add_argument(
        "--trajectory",
        type=Path,
        default=REPO_ROOT / "BENCH_hotpath.json",
        help="committed trajectory file (last entry is the reference)",
    )
    parser.add_argument(
        "--slack",
        type=float,
        default=0.4,
        help="fail when fresh geomean < slack * committed geomean",
    )
    args = parser.parse_args(argv)

    measurement = json.loads(args.measurement.read_text(encoding="utf-8"))
    trajectory = json.loads(args.trajectory.read_text(encoding="utf-8"))
    entries = trajectory.get("entries", [])
    if not entries:
        print("trajectory has no entries; nothing to gate against")
        return 0
    if measurement.get("workload_subset"):
        print("measurement is a --workloads subset run; not comparable, skipping")
        return 0

    committed = entries[-1]["detailed_speedup_geomean"]
    fresh = measurement["detailed_speedup_geomean"]
    floor = args.slack * committed
    verdict = "OK" if fresh >= floor else "REGRESSION"
    print(
        f"hot-path detailed-speedup geomean: fresh {fresh:.2f}x vs committed "
        f"{committed:.2f}x ({entries[-1].get('date', '?')}); floor "
        f"{floor:.2f}x (slack {args.slack}) -> {verdict}"
    )
    for config in measurement.get("configs", ()):
        print(
            f"  {config['workload']}/{config['architecture']}: "
            f"{config['detailed_speedup']:.2f}x, vector coverage "
            f"{config['vector_coverage']:.0%}"
        )
    if fresh < floor:
        print(
            "the grouped/vectorised detailed path regressed far beyond runner "
            "noise; profile with `repro grid ... --profile out.prof` and see "
            "EXPERIMENTS.md for the trajectory",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
